//! Databases, sessions, and statement execution.
//!
//! A [`Database`] owns the catalog and storage behind reader-writer
//! locks; a [`Session`] executes SQL statements against it. Each
//! statement freezes one transaction time (the interpretation of `NOW`),
//! and a session may override it — the hook the TIP Browser's what-if
//! analysis uses (paper §4).

use crate::builtin;
use crate::cache::{self, CacheLookup, CachedPlan, PlanCache};
use crate::catalog::{Blade, Catalog, ExecCtx};
use crate::error::{DbError, DbResult};
use crate::exec;
use crate::obs::{OpProfile, QueryMetrics, SlowQuery, SlowQueryLogger, StatementKind};
use crate::pin::{FrozenTables, PinnedTables, TableSet, TableSource};
use crate::plan::Planner;
use crate::sql::ast::{AsOf, Expr, InsertSource, SelectItem, SelectStmt, Statement};
use crate::sql::parse_statement;
use crate::storage::{self, Column, SharedTable, Storage, Table, TableSchema};
use crate::types::DataType;
use crate::value::{Row, Value};
use crate::wal::{
    self,
    file::{StdWalFile, WalFile},
    record::TxnBuilder,
    DurabilityConfig, RecoveryReport, Wal, WalStatsSnapshot,
};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Bucket stride of interval indexes created by `CREATE INDEX` on
/// interval-capable columns: 30 days of chronon seconds.
const DEFAULT_INTERVAL_STRIDE: i64 = 30 * 86_400;

/// How many versions a table's MVCC chain keeps beyond the oldest
/// pinned snapshot. Bounds memory on write-heavy tables while leaving a
/// window of recent history for `AS OF` queries (history collected past
/// the window reports NotFound).
const DEFAULT_VERSION_RETENTION: u64 = 64;

/// Result rows plus output column metadata.
#[derive(Debug)]
pub struct QueryResult {
    pub columns: Vec<(String, DataType)>,
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Index of an output column by case-insensitive name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|(n, _)| n.eq_ignore_ascii_case(name))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// What a statement produced.
#[derive(Debug)]
pub enum StatementOutcome {
    /// A SELECT's result set.
    Rows(QueryResult),
    /// Row count of an INSERT/UPDATE/DELETE.
    Affected(usize),
    /// A DDL statement completed.
    Done,
}

/// An in-process database: the catalog and the table registry, each
/// under its own reader-writer lock.
///
/// The registry lock is *short-held*: statements take a read lock only
/// to resolve their [`TableSet`], release it, then block (if at all) on
/// the individual table locks, acquired in sorted-name order. DDL and
/// snapshot restore are the only registry writers. No statement waits
/// on the registry while holding a table lock (except snapshot save,
/// which holds a registry *read* that table-lock holders never oppose),
/// so the two lock levels cannot deadlock against each other.
pub struct Database {
    catalog: RwLock<Catalog>,
    registry: RwLock<Storage>,
    /// Monotonic DDL generation: bumped by every registry write
    /// (CREATE/DROP table/index/view), blade install, and snapshot
    /// restore. Cached plans carry the generation they were built
    /// against and are lazily evicted when it moves on.
    generation: AtomicU64,
    /// The database-wide parameterized plan cache (see [`crate::cache`]).
    plan_cache: Mutex<PlanCache>,
    /// MVCC commit state: the global commit counter and the snapshot
    /// pins that hold back version garbage collection.
    mvcc: MvccState,
    /// MVCC retention window (commits of version history kept beyond
    /// the oldest pin). Defaults to [`DEFAULT_VERSION_RETENTION`];
    /// configurable via [`DurabilityConfig::mvcc_retention`] or
    /// [`Database::set_mvcc_retention`].
    mvcc_retention: AtomicU64,
    /// When `Some(primary)`, this database is a read-only replica:
    /// every write statement is rejected with [`DbError::ReadOnly`]
    /// naming the primary. Cleared by promotion.
    read_only: RwLock<Option<String>>,
    /// Replication counters (chunks/bytes shipped, apply lag,
    /// reconnects) — all zero on nodes that neither ship nor apply.
    repl: crate::repl::ReplStats,
    /// Durability state, present only on databases opened from a data
    /// directory ([`Database::open`]). In-memory databases pay nothing.
    durability: OnceLock<Arc<Durability>>,
    /// The paged cold-row store (`pages.db` behind the evicting buffer
    /// pool), present only on databases opened from a data directory.
    paged: OnceLock<Arc<storage::pages::PagedStore>>,
}

/// Database-wide MVCC commit state: the global commit counter, the
/// monotone commit-instant clock, and the registry of pinned snapshots.
struct MvccState {
    /// Serializes version publication so commit sequences are dense and
    /// every table's chain appends in global commit order.
    commit_lock: Mutex<()>,
    /// The last published commit sequence; 0 = nothing committed yet.
    commit_seq: AtomicU64,
    /// The last commit instant (unix seconds), clamped monotone so
    /// `AS OF <instant>` cuts stay consistent across tables even if the
    /// wall clock steps backwards.
    last_instant: AtomicI64,
    /// `commit sequence -> pin count` for every live snapshot.
    pinned: Mutex<BTreeMap<u64, usize>>,
}

impl MvccState {
    fn new() -> MvccState {
        MvccState {
            commit_lock: Mutex::new(()),
            commit_seq: AtomicU64::new(0),
            last_instant: AtomicI64::new(i64::MIN),
            pinned: Mutex::new(BTreeMap::new()),
        }
    }

    /// The wall-clock instant for a commit, never earlier than any
    /// previous commit's. Always the real clock — a session's NOW
    /// override changes query semantics, not when commits happened.
    /// Callers hold `commit_lock`, so load-max-store does not race.
    fn next_instant(&self) -> i64 {
        let now = Self::wall_instant();
        let t = now.max(self.last_instant.load(Ordering::Acquire));
        self.last_instant.store(t, Ordering::Release);
        t
    }

    /// The raw wall clock (unix seconds), without the monotone clamp.
    fn wall_instant() -> i64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs() as i64)
            .unwrap_or(0)
    }
}

/// An RAII registration of one reader's snapshot: while alive, the
/// versions visible at `seq` cannot be garbage-collected. From
/// [`Database::pin_snapshot`].
pub struct SnapshotPin {
    db: Arc<Database>,
    seq: u64,
}

impl SnapshotPin {
    /// The commit sequence this pin reads at.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl Drop for SnapshotPin {
    fn drop(&mut self) {
        let mut pinned = self.db.mvcc.pinned.lock();
        if let Some(n) = pinned.get_mut(&self.seq) {
            *n -= 1;
            if *n == 0 {
                pinned.remove(&self.seq);
            }
        }
    }
}

/// Durable-mode state of a database: the data directory, the running
/// WAL, and checkpoint coordination.
struct Durability {
    dir: PathBuf,
    wal: Arc<Wal>,
    cfg: DurabilityConfig,
    /// Generation of the on-disk checkpoint; the fresh log created by
    /// each checkpoint is stamped with the same number.
    generation: AtomicU64,
    /// The [`wal::WalProgress::rotations`] count that corresponds to
    /// `generation`. When a progress snapshot reports a higher count the
    /// writer has already swapped to the next generation's log but the
    /// checkpoint hasn't published it yet — replication log reads must
    /// not serve (or stamp watermarks) across that window.
    log_rotations: AtomicU64,
    /// Serializes checkpoints (manual, threshold, and close).
    checkpoint_lock: Mutex<()>,
    /// Collapses concurrent threshold triggers into one checkpoint.
    checkpoint_pending: AtomicBool,
    closed: AtomicBool,
    /// Transaction-id allocator for WAL chunks.
    txn_ids: AtomicU64,
}

impl Database {
    /// Creates a database with all built-ins installed.
    pub fn new() -> Arc<Database> {
        let mut catalog = Catalog::new();
        builtin::install(&mut catalog);
        Arc::new(Database {
            catalog: RwLock::new(catalog),
            registry: RwLock::new(Storage::new()),
            generation: AtomicU64::new(0),
            plan_cache: Mutex::new(PlanCache::new(PlanCache::DEFAULT_CAP)),
            mvcc: MvccState::new(),
            mvcc_retention: AtomicU64::new(DEFAULT_VERSION_RETENTION),
            read_only: RwLock::new(None),
            repl: crate::repl::ReplStats::default(),
            durability: OnceLock::new(),
            paged: OnceLock::new(),
        })
    }

    /// Opens (or creates) a durable database at `dir` with all built-ins
    /// installed: loads the latest checkpoint, replays the WAL, writes a
    /// fresh checkpoint, and starts the group-commit writer. Returns the
    /// database and a report of what recovery found.
    pub fn open(
        dir: impl AsRef<Path>,
        cfg: DurabilityConfig,
    ) -> DbResult<(Arc<Database>, RecoveryReport)> {
        Database::open_with(dir, cfg, |_| Ok(()))
    }

    /// [`Database::open`] with an install hook that runs *before*
    /// recovery — the place to install blades, so the snapshot and log
    /// can reference their UDTs (just like reconnecting to a
    /// blade-enabled Informix instance).
    pub fn open_with(
        dir: impl AsRef<Path>,
        cfg: DurabilityConfig,
        install: impl FnOnce(&Arc<Database>) -> DbResult<()>,
    ) -> DbResult<(Arc<Database>, RecoveryReport)> {
        Database::open_internal(dir.as_ref(), cfg, install, |path, header| {
            StdWalFile::create(path, header).map(|f| Box::new(f) as Box<dyn WalFile>)
        })
    }

    /// [`Database::open_with`] where the live WAL file comes from `make`
    /// instead of the filesystem — the seam fault-injection tests use to
    /// substitute a [`FailpointFile`](crate::wal::file::FailpointFile).
    /// Not part of the stable API surface.
    #[doc(hidden)]
    pub fn open_with_wal_file(
        dir: impl AsRef<Path>,
        cfg: DurabilityConfig,
        make: impl FnOnce(&Path, &[u8]) -> std::io::Result<Box<dyn WalFile>>,
    ) -> DbResult<(Arc<Database>, RecoveryReport)> {
        Database::open_internal(dir.as_ref(), cfg, |_| Ok(()), make)
    }

    fn open_internal(
        dir: &Path,
        cfg: DurabilityConfig,
        install: impl FnOnce(&Arc<Database>) -> DbResult<()>,
        make: impl FnOnce(&Path, &[u8]) -> std::io::Result<Box<dyn WalFile>>,
    ) -> DbResult<(Arc<Database>, RecoveryReport)> {
        let dir = dir.to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| DbError::Persist {
            message: format!("create data dir {}: {e}", dir.display()),
        })?;
        let started = Instant::now();
        let db = Database::new();
        install(&db)?;
        // The page store must exist before recovery: a paged (v3)
        // snapshot holds references into `pages.db` rather than row
        // bytes, and loading it faults those pages back in.
        let store = storage::pages::PagedStore::open(&dir, cfg.page_size, cfg.pool_pages)?;
        let _ = db.paged.set(store);
        let (mut report, next_gen) = wal::recover::recover(&db, &dir)?;
        // Recovery applied records to the live tables directly,
        // bypassing version publication; publish the recovered state as
        // one fresh commit so snapshot reads and AS OF line up with it.
        db.republish_all();
        // Checkpoint-at-open: persist the recovered state under the next
        // generation and start a fresh log, so no old log replays twice.
        let w = db.attach_durability_with(&dir, cfg, next_gen, make)?;
        report.elapsed = started.elapsed();
        w.stats()
            .replayed
            .store(report.records_replayed, Ordering::Relaxed);
        w.stats()
            .recovery_micros
            .store(report.elapsed.as_micros() as u64, Ordering::Relaxed);
        Ok((db, report))
    }

    /// Attaches durability to a database that has none yet: writes a
    /// checkpoint snapshot of the *current* in-memory state under
    /// `generation`, starts a fresh WAL, and begins logging subsequent
    /// statements. This is the tail of [`Database::open`] — and the
    /// machinery a promoted replica uses to become a durable primary
    /// without restarting.
    pub fn attach_durability(&self, dir: impl AsRef<Path>, cfg: DurabilityConfig) -> DbResult<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| DbError::Persist {
            message: format!("create data dir {}: {e}", dir.display()),
        })?;
        self.attach_durability_with(dir, cfg, 1, |path, header| {
            StdWalFile::create(path, header).map(|f| Box::new(f) as Box<dyn WalFile>)
        })?;
        Ok(())
    }

    fn attach_durability_with(
        &self,
        dir: &Path,
        cfg: DurabilityConfig,
        generation: u64,
        make: impl FnOnce(&Path, &[u8]) -> std::io::Result<Box<dyn WalFile>>,
    ) -> DbResult<Arc<Wal>> {
        if self.durability.get().is_some() {
            return Err(DbError::Persist {
                message: "durability is already attached".into(),
            });
        }
        // The WAL-before-page rule: pages must be durable before the
        // snapshot that references them hits disk (recovery faults
        // snapshot cold refs straight out of `pages.db`).
        if let Some(store) = self.paged.get() {
            store.flush()?;
        }
        let snap = self.save_snapshot()?;
        wal::recover::write_snapshot_file(dir, generation, &snap)?;
        let _ = std::fs::remove_file(dir.join(wal::recover::WAL_FILE_NEW));
        let log = make(
            &dir.join(wal::recover::WAL_FILE),
            &wal::record::encode_header(generation),
        )
        .map_err(|e| DbError::Persist {
            message: format!("create wal.log: {e}"),
        })?;
        let w = Wal::start(log, cfg.sync_mode);
        if let Some(store) = self.paged.get() {
            // Dirty-page writeback must not overtake the log: the pool
            // forces the WAL through a page's LSN before writing it.
            let wb = Arc::clone(&w);
            store.set_flush_barrier(Arc::new(move |lsn| wb.flush_through(lsn)));
            store.publish_epoch(
                &self
                    .with_storage(storage::cold_page_refs)
                    .into_keys()
                    .collect(),
                self.commit_seq(),
                0,
            );
        }
        w.stats().checkpoints.fetch_add(1, Ordering::Relaxed);
        self.mvcc_retention
            .store(cfg.mvcc_retention, Ordering::Relaxed);
        let _ = self.durability.set(Arc::new(Durability {
            dir: dir.to_path_buf(),
            wal: Arc::clone(&w),
            cfg,
            generation: AtomicU64::new(generation),
            log_rotations: AtomicU64::new(0),
            checkpoint_lock: Mutex::new(()),
            checkpoint_pending: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            txn_ids: AtomicU64::new(0),
        }));
        Ok(w)
    }

    /// `true` when this database persists to a data directory.
    pub fn is_durable(&self) -> bool {
        self.durability.get().is_some()
    }

    /// WAL counters (all zero on an in-memory database).
    pub fn wal_stats(&self) -> WalStatsSnapshot {
        self.durability
            .get()
            .map(|d| d.wal.stats().snapshot())
            .unwrap_or_default()
    }

    /// Writes a checkpoint: rotates the log, pages historical rows out
    /// to `pages.db`, snapshots all tables, and atomically replaces
    /// `snapshot.db`. A no-op on an in-memory or closed database.
    ///
    /// Protocol (order matters — see `wal::recover` for the crash
    /// matrix): the log rotates *first*, then the snapshot is taken.
    /// The snapshot is therefore a consistent cut containing every
    /// old-log record plus possibly a prefix of the new log; replaying
    /// the new log over it is idempotent (inserts address explicit
    /// rowids), so every crash window recovers to committed state.
    ///
    /// The paged store makes this incremental: row bytes already on a
    /// cold page are *referenced* by the snapshot, not rewritten, so
    /// checkpoint I/O is O(current + newly-spilled), not O(database).
    /// Pages are flushed durable *before* the snapshot that references
    /// them (the page half of the WAL rule), and the epoch publish
    /// afterwards retires the fill page and reclaims pages no pin can
    /// still reach.
    pub fn checkpoint(&self) -> DbResult<()> {
        let Some(d) = self.durability.get() else {
            return Ok(());
        };
        if d.closed.load(Ordering::Acquire) {
            return Ok(());
        }
        let _serial = d.checkpoint_lock.lock();
        let next = d.generation.load(Ordering::Acquire) + 1;
        let new_path = d.dir.join(wal::recover::WAL_FILE_NEW);
        let new_log =
            StdWalFile::create(&new_path, &wal::record::encode_header(next)).map_err(|e| {
                DbError::Persist {
                    message: format!("create wal.log.new: {e}"),
                }
            })?;
        d.wal.rotate(Box::new(new_log))?;
        if d.cfg.spill_cold {
            self.spill_cold(MvccState::wall_instant())?;
        }
        if let Some(store) = self.paged.get() {
            store.flush()?;
        }
        let snap = self.save_snapshot()?;
        wal::recover::write_snapshot_file(&d.dir, next, &snap)?;
        std::fs::rename(&new_path, d.dir.join(wal::recover::WAL_FILE)).map_err(|e| {
            DbError::Persist {
                message: format!("promote wal.log.new: {e}"),
            }
        })?;
        d.generation.store(next, Ordering::Release);
        d.log_rotations.fetch_add(1, Ordering::Release);
        d.wal.stats().checkpoints.fetch_add(1, Ordering::Relaxed);
        self.publish_page_epoch();
        Ok(())
    }

    /// Moves every closed-validity row of every table onto cold pages.
    /// `now` is the instant that decides hot vs cold (a row whose
    /// valid-time interval ended before `now` is historical). Returns
    /// the number of rows spilled. A representation change only — the
    /// row values are untouched, so nothing is WAL-logged; the pages
    /// carry the current WAL sequence as their LSN so dirty writeback
    /// cannot overtake the log. A no-op without a page store.
    pub fn spill_cold(&self, now: i64) -> DbResult<usize> {
        let Some(store) = self.paged.get() else {
            return Ok(0);
        };
        let lsn = self
            .durability
            .get()
            .map(|d| d.wal.progress().seq)
            .unwrap_or(0);
        let cat = self.catalog.read();
        let cells = self.registry.read().shared_tables_sorted();
        // Write-lock in sorted-name order — the same order statements
        // use — and hold all guards through publication so no statement
        // can publish a version that loses the spill.
        let mut guards: Vec<_> = cells.iter().map(|(_, cell)| cell.write()).collect();
        let mut published = Vec::new();
        let mut spilled = 0;
        for (guard, (_, cell)) in guards.iter_mut().zip(&cells) {
            if guard.cold_attach().is_none() {
                let att = storage::cold_attach_for(&cat, &guard.schema, store)?;
                guard.attach_cold(att);
            }
            let n = guard.spill_cold(now, lsn)?;
            if n > 0 {
                spilled += n;
                published.push((Arc::clone(cell), Arc::new((**guard).clone())));
            }
        }
        self.publish_prepared(published);
        drop(guards);
        Ok(spilled)
    }

    /// Publishes the page-store epoch after a checkpoint: sweeps every
    /// table's version chain down to the GC floor (so dropped versions
    /// release their cold references), then hands the store the set of
    /// pages the durable snapshot references together with the floor,
    /// letting it reclaim pages no recovery and no live pin can reach.
    fn publish_page_epoch(&self) {
        let Some(store) = self.paged.get() else {
            return;
        };
        let seq = self.commit_seq();
        let retention = self.mvcc_retention.load(Ordering::Relaxed);
        let floor = {
            let pinned = self.mvcc.pinned.lock();
            let oldest_pin = pinned.keys().next().copied().unwrap_or(u64::MAX);
            oldest_pin.min(seq.saturating_sub(retention))
        };
        // Sweep quiet tables too: a version published long ago still
        // pins its pages until some commit gc's the chain, which for an
        // idle table would otherwise never happen.
        for (_, cell) in self.registry.read().shared_tables_sorted() {
            cell.gc(floor);
        }
        let refs = self
            .with_storage(storage::cold_page_refs)
            .into_keys()
            .collect();
        store.publish_epoch(&refs, seq, floor);
    }

    /// Threshold checkpoint: fires when the live log outgrows the
    /// configured byte budget. Called by committing statements; the one
    /// that wins the flag pays the checkpoint inline.
    fn maybe_checkpoint(&self) {
        let Some(d) = self.durability.get() else {
            return;
        };
        if d.cfg.checkpoint_bytes == 0
            || d.wal.log_bytes() < d.cfg.checkpoint_bytes
            || d.checkpoint_pending.swap(true, Ordering::AcqRel)
        {
            return;
        }
        // Errors surface through the WAL's sticky-error state on the
        // next commit; don't fail the statement that tripped the
        // threshold.
        let _ = self.checkpoint();
        d.checkpoint_pending.store(false, Ordering::Release);
    }

    /// Cleanly shuts down a durable database: final checkpoint, then
    /// stops the group-commit writer. Idempotent; a no-op on in-memory
    /// databases. Statements executed after `close` fail with a
    /// `Persist` error instead of silently losing durability.
    pub fn close(&self) -> DbResult<()> {
        let Some(d) = self.durability.get() else {
            return Ok(());
        };
        if d.closed.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        let result = {
            let _serial = d.checkpoint_lock.lock();
            let next = d.generation.load(Ordering::Acquire) + 1;
            if d.cfg.spill_cold {
                self.spill_cold(MvccState::wall_instant())?;
            }
            if let Some(store) = self.paged.get() {
                store.flush()?;
            }
            let snap = self.save_snapshot()?;
            wal::recover::write_snapshot_file(&d.dir, next, &snap)?;
            d.generation.store(next, Ordering::Release);
            Ok(())
        };
        d.wal.close();
        result
    }

    /// Appends one statement's WAL chunk while the caller still holds
    /// the statement's table guards (so log order equals lock
    /// serialization order). Returns the commit sequence to pass to
    /// [`Database::wal_wait`] after the guards drop, or `None` when the
    /// database is in-memory or the statement logged no operations.
    pub(crate) fn wal_append(
        &self,
        cat: &Catalog,
        build: impl FnOnce(&mut TxnBuilder<'_>) -> DbResult<()>,
    ) -> DbResult<Option<u64>> {
        let Some(d) = self.durability.get() else {
            return Ok(None);
        };
        let txn = d.txn_ids.fetch_add(1, Ordering::Relaxed) + 1;
        let mut b = TxnBuilder::new(cat, txn);
        build(&mut b)?;
        if b.records() <= 1 {
            return Ok(None); // only BEGIN — nothing worth logging
        }
        let (chunk, n) = b.finish();
        Ok(Some(d.wal.append_chunk(chunk, n)?))
    }

    /// Blocks until the given commit is durable (per the sync mode) and
    /// runs the checkpoint threshold check. Call with the statement's
    /// guards already released.
    pub(crate) fn wal_wait(&self, seq: Option<u64>) -> DbResult<()> {
        let (Some(d), Some(seq)) = (self.durability.get(), seq) else {
            return Ok(());
        };
        d.wal.wait_durable(seq)?;
        self.maybe_checkpoint();
        Ok(())
    }

    // ----- MVCC ------------------------------------------------------

    /// The newest committed sequence number — what `AS OF COMMIT n`
    /// addresses.
    pub fn commit_seq(&self) -> u64 {
        self.mvcc.commit_seq.load(Ordering::Acquire)
    }

    /// Pins the current committed snapshot. Reading the sequence and
    /// registering the pin happen under one lock, so a concurrent
    /// commit can never garbage-collect the versions this pin is about
    /// to read between the two steps.
    pub fn pin_snapshot(self: &Arc<Self>) -> SnapshotPin {
        let mut pinned = self.mvcc.pinned.lock();
        let seq = self.mvcc.commit_seq.load(Ordering::Acquire);
        *pinned.entry(seq).or_insert(0) += 1;
        drop(pinned);
        SnapshotPin {
            db: Arc::clone(self),
            seq,
        }
    }

    /// Pins an explicit (historical) sequence — the `AS OF` path. The
    /// pin blocks garbage collection at or above `seq` for the query's
    /// duration; versions already collected stay collected.
    pub fn pin_snapshot_at(self: &Arc<Self>, seq: u64) -> SnapshotPin {
        *self.mvcc.pinned.lock().entry(seq).or_insert(0) += 1;
        SnapshotPin {
            db: Arc::clone(self),
            seq,
        }
    }

    /// Publishes pre-cloned `(cell, snapshot)` pairs as one atomic
    /// commit: every table gets the same fresh sequence and instant,
    /// then each chain is garbage-collected down to what live pins and
    /// the retention window still need. Callers must still hold the
    /// write guards the snapshots were cloned under (or otherwise have
    /// exclusive access), so chains append in commit order.
    pub(crate) fn publish_prepared(&self, items: Vec<(SharedTable, Arc<Table>)>) {
        if items.is_empty() {
            return;
        }
        let _serial = self.mvcc.commit_lock.lock();
        let seq = self.mvcc.commit_seq.load(Ordering::Acquire) + 1;
        let instant = self.mvcc.next_instant();
        for (cell, snap) in &items {
            cell.publish(seq, instant, Arc::clone(snap));
        }
        self.mvcc.commit_seq.store(seq, Ordering::Release);
        let retention = self.mvcc_retention.load(Ordering::Relaxed);
        let floor = {
            let pinned = self.mvcc.pinned.lock();
            let oldest_pin = pinned.keys().next().copied().unwrap_or(u64::MAX);
            oldest_pin.min(seq.saturating_sub(retention))
        };
        for (cell, _) in &items {
            cell.gc(floor);
        }
    }

    /// Publishes every write-pinned table of a statement's pin set as
    /// one commit (a no-op for read-only pins). Call with the pin still
    /// held.
    pub(crate) fn publish_pinned(&self, pinned: &PinnedTables<'_>) {
        if pinned.has_writes() {
            self.publish_prepared(pinned.prepared_publishes());
        }
    }

    /// Stamps a just-created table's initial version with a fresh commit
    /// point, so `AS OF` a time before creation reports NotFound instead
    /// of an empty table. Call under the registry write lock, before any
    /// statement can have pinned the new table.
    pub(crate) fn stamp_creation(&self, cell: &SharedTable) {
        let _serial = self.mvcc.commit_lock.lock();
        let seq = self.mvcc.commit_seq.load(Ordering::Acquire) + 1;
        let instant = self.mvcc.next_instant();
        cell.rebase_creation(seq, instant);
        self.mvcc.commit_seq.store(seq, Ordering::Release);
    }

    /// Re-publishes every table at one fresh commit sequence. Recovery
    /// mutates live tables directly (bypassing version publication);
    /// this brings the chains back in line. Only called while the
    /// database is still single-threaded (open), so no write guards are
    /// needed.
    pub(crate) fn republish_all(&self) {
        let items: Vec<(SharedTable, Arc<Table>)> = self
            .registry
            .read()
            .shared_tables_sorted()
            .into_iter()
            .map(|(_, cell)| {
                let snap = Arc::new(cell.read().clone());
                (cell, snap)
            })
            .collect();
        self.publish_prepared(items);
    }

    /// Total retained versions across every table — the `mvcc.versions`
    /// gauge.
    pub fn mvcc_versions(&self) -> u64 {
        self.registry
            .read()
            .shared_tables_sorted()
            .iter()
            .map(|(_, c)| c.version_count() as u64)
            .sum()
    }

    /// Snapshot pins currently registered — the `mvcc.snapshots_pinned`
    /// gauge.
    pub fn snapshots_pinned(&self) -> u64 {
        self.mvcc.pinned.lock().values().map(|&n| n as u64).sum()
    }

    /// The configured MVCC retention window, in commits.
    pub fn mvcc_retention(&self) -> u64 {
        self.mvcc_retention.load(Ordering::Relaxed)
    }

    /// Reconfigures the MVCC retention window at runtime. Takes effect
    /// at the next commit's garbage-collection pass; shrinking the
    /// window never collects versions a live pin still needs.
    pub fn set_mvcc_retention(&self, commits: u64) {
        self.mvcc_retention.store(commits, Ordering::Relaxed);
    }

    /// The MVCC gauges as `SHOW STATS` rows.
    pub(crate) fn mvcc_rows(&self) -> Vec<(String, u64)> {
        vec![
            ("mvcc.versions".to_owned(), self.mvcc_versions()),
            ("mvcc.snapshots_pinned".to_owned(), self.snapshots_pinned()),
            ("mvcc.retention".to_owned(), self.mvcc_retention()),
        ]
    }

    // ----- Buffer pool ------------------------------------------------

    /// The paged cold-row store, when this database has one (durable
    /// databases only).
    pub fn paged_store(&self) -> Option<&Arc<storage::pages::PagedStore>> {
        self.paged.get()
    }

    /// Buffer-pool counters (all zero on an in-memory database).
    pub fn bufpool_stats(&self) -> storage::pages::PoolStatsSnapshot {
        self.paged.get().map(|s| s.stats()).unwrap_or_default()
    }

    /// The buffer-pool counters as `SHOW STATS` rows.
    pub(crate) fn bufpool_rows(&self) -> Vec<(String, u64)> {
        let s = self.bufpool_stats();
        vec![
            ("bufpool.hits".to_owned(), s.hits),
            ("bufpool.misses".to_owned(), s.misses),
            ("bufpool.evictions".to_owned(), s.evictions),
            ("bufpool.writebacks".to_owned(), s.writebacks),
            ("bufpool.pages".to_owned(), s.pages),
        ]
    }

    // ----- Replication ------------------------------------------------

    /// Replication counters (shipping side on a primary, applying side
    /// on a replica).
    pub fn repl_stats(&self) -> &crate::repl::ReplStats {
        &self.repl
    }

    /// Marks this database a read-only replica of `primary`: every
    /// write statement is rejected with [`DbError::ReadOnly`] naming
    /// that address until [`Database::clear_read_only`] (promotion).
    pub fn set_read_only(&self, primary: impl Into<String>) {
        *self.read_only.write() = Some(primary.into());
    }

    /// Lifts the read-only restriction (replica promotion).
    pub fn clear_read_only(&self) {
        *self.read_only.write() = None;
    }

    /// The primary's address when this database is a read-only replica.
    pub fn read_only_primary(&self) -> Option<String> {
        self.read_only.read().clone()
    }

    /// The generation of the current checkpoint/log pair, or `None` on
    /// an in-memory database.
    pub fn wal_generation(&self) -> Option<u64> {
        self.durability
            .get()
            .map(|d| d.generation.load(Ordering::Acquire))
    }

    /// Reads the latest checkpoint snapshot for replica catch-up:
    /// `(generation, snapshot bytes)`. Serialized against checkpoints so
    /// the snapshot and its generation can never be torn.
    pub fn repl_snapshot(&self) -> DbResult<(u64, Vec<u8>)> {
        let d = self.durability.get().ok_or_else(|| DbError::Persist {
            message: "replication requires a durable database".into(),
        })?;
        let _serial = d.checkpoint_lock.lock();
        match wal::recover::read_snapshot_file(&d.dir)? {
            Some((generation, bytes)) => {
                if storage::snapshot_is_paged(&bytes) {
                    // A paged (v3) snapshot references our local
                    // `pages.db`, which the replica does not have.
                    // Materialize the cold rows inline (v2) at the same
                    // generation — self-contained bytes ship over the
                    // wire.
                    let store = self.paged.get().ok_or_else(|| DbError::Persist {
                        message: "paged snapshot without a page store".into(),
                    })?;
                    let cat = self.catalog.read();
                    let temp = storage::load_snapshot_with(&cat, &bytes, Some(store))?;
                    let inline = storage::save_snapshot_with(&cat, &temp, true)?;
                    Ok((generation, inline))
                } else {
                    Ok((generation, bytes))
                }
            }
            None => Err(DbError::Persist {
                message: "no checkpoint snapshot on disk".into(),
            }),
        }
    }

    /// Reads committed WAL bytes for a subscriber positioned at
    /// `(generation, offset)`. Returns at most `max_len` bytes ending on
    /// a framed-chunk boundary (the writer's flush watermark), plus the
    /// commit sequence those bytes reach. `Restart` means the requested
    /// generation has been checkpointed away and the replica must
    /// re-seed from the current snapshot.
    pub fn repl_log_read(
        &self,
        generation: u64,
        offset: u64,
        max_len: usize,
    ) -> DbResult<crate::repl::LogRead> {
        use std::io::{Read as _, Seek as _};
        let d = self.durability.get().ok_or_else(|| DbError::Persist {
            message: "replication requires a durable database".into(),
        })?;
        let p = d.wal.progress();
        if generation != d.generation.load(Ordering::Acquire) {
            return Ok(crate::repl::LogRead::Restart);
        }
        if p.rotations != d.log_rotations.load(Ordering::Acquire) {
            // Mid-checkpoint: the writer already swapped to the next
            // generation's log but the checkpoint hasn't published it.
            // `p.flushed`/`p.seq` describe the *new* file, so neither
            // bytes nor a watermark can be served for this generation;
            // report "nothing yet" and let the next poll restart.
            return Ok(crate::repl::LogRead::Chunk {
                bytes: Vec::new(),
                watermark: 0,
            });
        }
        if offset >= p.flushed {
            // Caught up (or the log rotated under us — the generation
            // check above re-runs next poll and restarts if so).
            return Ok(crate::repl::LogRead::Chunk {
                bytes: Vec::new(),
                watermark: p.seq,
            });
        }
        let path = d.dir.join(wal::recover::WAL_FILE);
        let mut f = std::fs::File::open(&path).map_err(|e| DbError::Persist {
            message: format!("open {}: {e}", path.display()),
        })?;
        // Verify the file on disk is still the generation the subscriber
        // is positioned in: a checkpoint may have renamed a fresh log
        // over it between the progress read and this open.
        let mut header = [0u8; wal::record::LOG_HEADER_LEN];
        f.read_exact(&mut header).map_err(|e| DbError::Persist {
            message: format!("read wal.log header: {e}"),
        })?;
        match wal::record::decode_header(&header) {
            Ok(g) if g == generation => {}
            _ => return Ok(crate::repl::LogRead::Restart),
        }
        let len = (p.flushed - offset).min(max_len as u64) as usize;
        f.seek(std::io::SeekFrom::Start(offset))
            .map_err(|e| DbError::Persist {
                message: format!("seek wal.log: {e}"),
            })?;
        let mut bytes = vec![0u8; len];
        f.read_exact(&mut bytes).map_err(|e| DbError::Persist {
            message: format!("read wal.log: {e}"),
        })?;
        // A partial read below the flush watermark still ends on a chunk
        // boundary only if max_len cut nowhere — trim to whole frames so
        // the replica's applier never buffers across a poll cycle
        // unnecessarily. (Frames are self-describing: len, crc, payload.)
        let whole = wal::record::whole_frames_len(&bytes);
        bytes.truncate(whole);
        Ok(crate::repl::LogRead::Chunk {
            bytes,
            watermark: if offset + whole as u64 >= p.flushed {
                p.seq
            } else {
                // Mid-log chunk: the watermark is unknown at this cut;
                // report the previous commit bound conservatively as 0
                // so the replica only acks real watermarks.
                0
            },
        })
    }

    /// Blocks until WAL progress advances past `last` or `timeout`
    /// elapses (see [`wal::WalProgress`]); returns the current progress.
    /// `None` on in-memory databases.
    pub fn wal_progress_wait(
        &self,
        last: &wal::WalProgress,
        timeout: Duration,
    ) -> Option<wal::WalProgress> {
        self.durability
            .get()
            .map(|d| d.wal.wait_progress(last, timeout))
    }

    /// Current WAL progress, `None` on in-memory databases.
    pub fn wal_progress(&self) -> Option<wal::WalProgress> {
        self.durability.get().map(|d| d.wal.progress())
    }

    /// Installs an extension blade (types, routines, casts, aggregates).
    pub fn install_blade(&self, blade: &dyn Blade) -> DbResult<()> {
        self.catalog.write().install_blade(blade)?;
        self.bump_generation();
        Ok(())
    }

    /// The current DDL generation (see the field docs).
    pub fn ddl_generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Number of plans currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.lock().len()
    }

    pub(crate) fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn plan_cache_lookup(
        &self,
        key: &str,
        generation: u64,
        param_sig: &[(String, DataType)],
    ) -> CacheLookup {
        self.plan_cache.lock().lookup(key, generation, param_sig)
    }

    pub(crate) fn plan_cache_insert(&self, key: String, entry: CachedPlan) {
        self.plan_cache.lock().insert(key, entry);
    }

    /// Runs a closure with read access to the catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.catalog.read())
    }

    /// Runs a closure with read access to the table registry (names,
    /// existence, view definitions). Table *data* is behind per-table
    /// locks — use [`Database::with_tables`] for that.
    pub fn with_storage<R>(&self, f: impl FnOnce(&Storage) -> R) -> R {
        f(&self.registry.read())
    }

    /// Runs a closure against a read pin of every table: a consistent
    /// whole-database view (the registry lock itself is already
    /// released by the time the closure runs).
    pub fn with_tables<R>(&self, f: impl FnOnce(&PinnedTables) -> R) -> R {
        let set = TableSet::read_all(&self.registry.read());
        let pinned = set.pin();
        f(&pinned)
    }

    /// Runs a closure holding one table's *write* lock. Used by bulk
    /// loaders and by tests that need to observe blocking behavior.
    pub fn with_table_write<R>(&self, name: &str, f: impl FnOnce(&mut Table) -> R) -> DbResult<R> {
        let shared = self.registry.read().shared_table(name)?;
        let mut guard = shared.write();
        let r = f(&mut guard);
        // Publish the (possibly) mutated state while the guard is still
        // held, so snapshot readers observe the bulk change as one
        // commit.
        let snap = Arc::new((*guard).clone());
        self.publish_prepared(vec![(Arc::clone(&shared), snap)]);
        drop(guard);
        Ok(r)
    }

    /// Opens a session.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            db: Arc::clone(self),
            now_override: None,
            metrics: QueryMetrics::new(),
            slow_query: None,
            repl_apply: false,
            vectorized: true,
            txn: Mutex::new(None),
        }
    }

    /// Opens the internal session replication replay applies through:
    /// identical to [`Database::session`] except the read-only replica
    /// guard is bypassed, so shipped DDL can execute on a replica.
    pub(crate) fn repl_session(self: &Arc<Self>) -> Session {
        let mut s = self.session();
        s.repl_apply = true;
        s
    }

    /// Serializes all tables to a snapshot. Every table's read guard is
    /// held while serializing, so the snapshot is one consistent
    /// cross-table cut.
    pub fn save_snapshot(&self) -> DbResult<Vec<u8>> {
        storage::save_snapshot(&self.catalog.read(), &self.registry.read())
    }

    /// Replaces all tables with the contents of a snapshot. The same
    /// blades must already be installed. Statements already running
    /// against pre-swap tables finish on the data they pinned.
    pub fn load_snapshot(&self, bytes: &[u8]) -> DbResult<()> {
        let store = self.paged.get();
        let new_storage = storage::load_snapshot_with(&self.catalog.read(), bytes, store)?;
        if let Some(store) = store {
            // The loaded snapshot *is* the durable epoch: rebuild the
            // page allocation state from its references.
            store.adopt_refs(storage::cold_page_refs(&new_storage));
        }
        *self.registry.write() = new_storage;
        // A wholesale world swap: clear the plan cache outright rather
        // than leaving pre-load plans (possibly against dropped tables)
        // to be discovered stale one lookup at a time.
        self.plan_cache.lock().clear();
        self.bump_generation();
        Ok(())
    }

    /// Renders a result set as an ASCII table (uses UDT display
    /// functions). Same output as [`Session::format_result`], without
    /// needing a session.
    pub fn format_result(&self, result: &QueryResult) -> String {
        format_result_with(&self.catalog.read(), result)
    }
}

/// Renders a result set as an ASCII table through a catalog's display
/// functions.
fn format_result_with(catalog: &Catalog, result: &QueryResult) -> String {
    let mut widths: Vec<usize> = result
        .columns
        .iter()
        .map(|(n, _)| n.chars().count())
        .collect();
    let rendered: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|row| row.iter().map(|v| catalog.display_value(v)).collect())
        .collect();
    // Zip, not index: a malformed row wider than the header list must
    // not panic — extra cells are simply not measured (and the render
    // loop below drops them the same way).
    for row in &rendered {
        for (cell, w) in row.iter().zip(widths.iter_mut()) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    sep(&mut out);
    out.push('|');
    for ((name, _), w) in result.columns.iter().zip(&widths) {
        out.push_str(&format!(" {name:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in &rendered {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// A connection-like handle executing statements against a database.
pub struct Session {
    db: Arc<Database>,
    now_override: Option<i64>,
    metrics: Arc<QueryMetrics>,
    slow_query: Option<(Duration, SlowQueryLogger)>,
    /// Set on the internal session replication replay runs through: WAL
    /// records from the primary must apply (including DDL) even though
    /// the node rejects client writes.
    repl_apply: bool,
    /// Whether batch-capable plans run on the vectorized executor
    /// (default) or are forced through the row fallback — the switch the
    /// parity tests and benchmarks flip to compare both paths.
    vectorized: bool,
    /// The open multi-statement transaction, if any (`BEGIN` …
    /// `COMMIT`/`ROLLBACK`). Behind a mutex so `Session` stays `Sync`.
    txn: Mutex<Option<TxnState>>,
}

/// A session's open multi-statement transaction.
struct TxnState {
    /// The snapshot everything in the transaction reads; pinning it
    /// also holds back version garbage collection.
    pin: SnapshotPin,
    /// Workspace copies of every touched table, keyed by lowercase
    /// name. The transaction's statements read and write these; nobody
    /// else sees them until COMMIT.
    tables: HashMap<String, TxnTable>,
    /// Every applied operation in order — COMMIT replays them into one
    /// WAL chunk.
    ops: Vec<PendingOp>,
}

/// One table's private workspace inside a transaction.
struct TxnTable {
    cell: SharedTable,
    /// Version sequence the workspace was cloned from. COMMIT refuses
    /// (write-write conflict) if the chain moved past it.
    base_seq: u64,
    /// The private copy all in-transaction statements operate on.
    work: Table,
    /// Canonical table name, for WAL records.
    name: String,
}

/// A buffered DML operation awaiting COMMIT.
enum PendingOp {
    Insert { table: String, rowid: u64, row: Row },
    Update { table: String, rowid: u64, row: Row },
    Delete { table: String, rowid: u64 },
}

impl Session {
    /// Handle to this session's query-metrics registry (also readable in
    /// SQL via `SHOW STATS`). The `Arc` can outlive the session.
    pub fn metrics(&self) -> Arc<QueryMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Installs a slow-query log hook: `logger` runs for every statement
    /// whose plan-and-execute time reaches `threshold`. Replaces any
    /// previous hook.
    pub fn set_slow_query_log(
        &mut self,
        threshold: Duration,
        logger: impl Fn(&SlowQuery) + Send + Sync + 'static,
    ) {
        self.slow_query = Some((threshold, Arc::new(logger)));
    }

    /// Removes the slow-query log hook.
    pub fn clear_slow_query_log(&mut self) {
        self.slow_query = None;
    }

    /// Enables or disables the vectorized batch executor for this
    /// session. Off forces every query through the row fallback; results
    /// are identical either way (the parity tests depend on it).
    pub fn set_vectorized(&mut self, on: bool) {
        self.vectorized = on;
    }

    /// Whether the vectorized executor is enabled for this session.
    pub fn vectorized(&self) -> bool {
        self.vectorized
    }

    /// Routes one SELECT execution: the vectorized engine when the
    /// session allows it and the plan qualifies (`batch` — resolved at
    /// plan time, cached alongside the plan), the row engine otherwise.
    fn run_plan(
        &self,
        plan: &crate::plan::Plan,
        batch: bool,
        src: &dyn crate::pin::TableSource,
        ctx: &crate::catalog::ExecCtx,
        prof: Option<&crate::obs::OpProfile>,
    ) -> DbResult<Vec<Row>> {
        if self.vectorized && batch {
            exec::execute_with(plan, src, ctx, prof)
        } else {
            exec::execute_rows(plan, src, ctx, prof)
        }
    }

    /// The `[exec: …]` trailer tag for a plan routed with `batch`.
    fn exec_label(&self, batch: bool) -> &'static str {
        if self.vectorized && batch {
            "batch"
        } else {
            "row"
        }
    }

    /// Slow-query hook shared by every statement kind; `plan` renders
    /// the plan description only when the hook actually fires.
    fn observe_slow(&self, sql: &str, rows: u64, elapsed: Duration, plan: impl FnOnce() -> String) {
        if let Some((threshold, logger)) = &self.slow_query {
            if elapsed >= *threshold {
                self.metrics.record_slow_query();
                logger(&SlowQuery {
                    sql: sql.to_owned(),
                    elapsed,
                    rows,
                    plan: plan(),
                });
            }
        }
    }

    fn observe_select(&self, sql: &str, plan: &crate::plan::Plan, rows: u64, elapsed: Duration) {
        self.metrics.record_select(rows, elapsed);
        self.observe_slow(sql, rows, elapsed, || plan.describe());
    }

    /// DML observation: affected-row count, latency histogram, and the
    /// slow-query hook — INSERT/UPDATE/DELETE are first-class citizens
    /// of the slow-query log, not just SELECT.
    fn observe_dml(
        &self,
        sql: &str,
        desc: &str,
        outcome: &DbResult<StatementOutcome>,
        elapsed: Duration,
    ) {
        let Ok(StatementOutcome::Affected(n)) = outcome else {
            return;
        };
        let rows = *n as u64;
        self.metrics.record_dml(rows, elapsed);
        self.observe_slow(sql, rows, elapsed, || desc.to_owned());
    }

    /// Folds one pinned guard set into the lock-wait counters.
    fn record_pin(&self, pinned: &PinnedTables) {
        self.metrics
            .record_lock_wait(pinned.tables_pinned() as u64, pinned.lock_wait());
    }
    /// Overrides the interpretation of `NOW` (Unix seconds) for every
    /// subsequent statement; `None` restores the wall clock. This is the
    /// TIP Browser's what-if knob.
    pub fn set_now_unix(&mut self, now: Option<i64>) {
        self.now_override = now;
    }

    /// The current override, if any.
    pub fn now_override(&self) -> Option<i64> {
        self.now_override
    }

    /// The database this session talks to.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    fn statement_ctx(&self, params: Option<&Arc<HashMap<String, Value>>>) -> ExecCtx {
        let txn_time_unix = self.now_override.unwrap_or_else(|| {
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs() as i64)
                .unwrap_or(0)
        });
        match params {
            Some(p) => ExecCtx::with_params(txn_time_unix, Arc::clone(p)),
            None => ExecCtx::new(txn_time_unix),
        }
    }

    /// Executes one statement with no parameters.
    pub fn execute(&self, sql: &str) -> DbResult<StatementOutcome> {
        self.execute_with_params(sql, &[])
    }

    /// Validates `sql` and returns a handle for repeat execution. The
    /// statement text is parsed once here for early error reporting;
    /// repeat [`Prepared::execute`] calls hit the database-wide plan
    /// cache, skipping the whole SQL front end.
    pub fn prepare(&self, sql: &str) -> DbResult<Prepared<'_>> {
        parse_statement(sql)?;
        Ok(Prepared {
            session: self,
            sql: sql.to_owned(),
        })
    }

    /// Executes one statement with named parameters (the paper's `:w`).
    pub fn execute_with_params(
        &self,
        sql: &str,
        params: &[(&str, Value)],
    ) -> DbResult<StatementOutcome> {
        let result = self.execute_inner(sql, params);
        if result.is_err() {
            self.metrics.record_error();
        }
        result
    }

    fn execute_inner(&self, sql: &str, params: &[(&str, Value)]) -> DbResult<StatementOutcome> {
        // Fast path for the common no-params call: no HashMap build, no
        // per-name lowercase/clone, no Arc allocation.
        let params: Option<Arc<HashMap<String, Value>>> = if params.is_empty() {
            None
        } else {
            Some(Arc::new(
                params
                    .iter()
                    .map(|(k, v)| (k.to_ascii_lowercase(), v.clone()))
                    .collect(),
            ))
        };
        // Read the generation *before* the cache probe and table-set
        // resolution: a DDL racing past this point at worst stamps the
        // filled entry with an already-stale generation (a conservative
        // replan later), never a stale plan served as fresh.
        let generation = self.db.ddl_generation();
        let param_sig = param_sig_of(params.as_ref());
        // Inside a transaction every read must see the workspace, so the
        // cached-plan fast path (which reads published versions) is
        // skipped until COMMIT/ROLLBACK.
        let in_txn = self.txn.lock().is_some();
        if !in_txn {
            if let Some(outcome) = self.try_cached(sql, params.as_ref(), generation, &param_sig)? {
                return Ok(outcome);
            }
        }
        let stmt = parse_statement(sql)?;
        // Replica guard: read-only statements (SELECT, EXPLAIN, SHOW
        // STATS) run locally; everything else — DML, DDL, and
        // transactions — belongs on the primary. The replication
        // applier's own session is exempt: shipped records are the
        // primary's writes arriving.
        if !self.repl_apply {
            if let Some(primary) = self.db.read_only_primary() {
                match stmt {
                    Statement::Select(_) | Statement::Explain { .. } | Statement::ShowStats => {}
                    _ => return Err(DbError::ReadOnly { primary }),
                }
            }
        }
        let empty_params = HashMap::new();
        let params_map: &HashMap<String, Value> = params.as_deref().unwrap_or(&empty_params);
        let ctx = self.statement_ctx(params.as_ref());
        let kind = match &stmt {
            Statement::Select(_) => StatementKind::Select,
            Statement::Insert { .. } => StatementKind::Insert,
            Statement::Update { .. } => StatementKind::Update,
            Statement::Delete { .. } => StatementKind::Delete,
            Statement::Explain { .. } => StatementKind::Explain,
            Statement::ShowStats => StatementKind::ShowStats,
            Statement::Begin | Statement::Commit | Statement::Rollback => StatementKind::Txn,
            _ => StatementKind::Ddl,
        };
        // Resolve the statement's table set under a *short* registry
        // read lock; the lock is dropped before any table guard is
        // acquired, so registry writers (DDL) are never queued behind a
        // long statement and vice versa.
        let table_set = TableSet::for_statement(&self.db.registry.read(), &stmt);
        let outcome = match stmt {
            Statement::Begin => self.txn_begin(),
            Statement::Commit => self.txn_commit(),
            Statement::Rollback => self.txn_rollback(),
            // In-transaction routing: default-snapshot SELECTs and DML
            // run against the private workspace. An AS OF SELECT falls
            // through to the historical path below — time travel reads
            // committed history, never uncommitted workspace state.
            Statement::Select(ref sel) if in_txn && sel.as_of.is_none() => {
                self.txn_select(&table_set, sel, sql, params_map, ctx)
            }
            s
            @ (Statement::Insert { .. } | Statement::Update { .. } | Statement::Delete { .. })
                if in_txn =>
            {
                self.txn_dml(&table_set, s, sql, params_map, ctx)
            }
            Statement::CreateTable { .. }
            | Statement::CreateIndex { .. }
            | Statement::DropTable { .. }
            | Statement::CreateView { .. }
            | Statement::DropView { .. }
            | Statement::Explain { .. }
                if in_txn =>
            {
                Err(DbError::exec(
                    "DDL and EXPLAIN are not supported inside a transaction; \
                     COMMIT or ROLLBACK first",
                ))
            }
            Statement::Select(ref sel) if sel.as_of.is_some() => {
                self.run_select_as_of(&table_set, sel, sql, params_map, ctx)
            }
            Statement::Select(sel) => {
                let started = Instant::now();
                self.metrics.record_plan_cache_miss();
                let cache_tables = self
                    .cacheable(&sel, &table_set)
                    .then(|| table_set.table_keys());
                // Pin a snapshot (registering with the GC floor), then
                // resolve each table's version at that sequence — no
                // table lock taken at all, so writers never block this
                // read and vice versa.
                let snap = self.db.pin_snapshot();
                let pinned = table_set.pin_at(snap.seq());
                self.record_pin(&pinned);
                let catalog = self.db.catalog.read();
                // Deferred binding keeps `:name` slots in the plan, so
                // the same plan serves later parameter values.
                let planner = Planner::new_deferred(&catalog, &pinned, params_map, ctx.clone());
                let planned = planner.plan_select(&sel)?;
                // Access-path accounting only — no per-row timing cost.
                let prof = OpProfile::paths_only(&planned.plan);
                let batch = planned.plan.batch_capable();
                let rows = self.run_plan(&planned.plan, batch, &pinned, &ctx, Some(&prof))?;
                prof.charge_scans(&self.metrics);
                // Release locks before the slow-query hook: it is user
                // code and may open its own statements.
                drop(pinned);
                drop(catalog);
                self.observe_select(sql, &planned.plan, rows.len() as u64, started.elapsed());
                let columns = planned.columns;
                if let Some(tables) = cache_tables {
                    self.db.plan_cache_insert(
                        cache::normalize_sql(sql).to_owned(),
                        CachedPlan {
                            plan: planned.plan,
                            columns: columns.clone(),
                            param_sig,
                            tables,
                            generation,
                            batch,
                        },
                    );
                    self.metrics
                        .set_plan_cache_entries(self.db.plan_cache_len() as u64);
                }
                Ok(StatementOutcome::Rows(QueryResult { columns, rows }))
            }
            Statement::CreateTable { name, columns } => {
                let catalog = self.db.catalog.read();
                let mut cols = Vec::with_capacity(columns.len());
                for (cname, tyname) in columns {
                    if cols
                        .iter()
                        .any(|c: &Column| c.name.eq_ignore_ascii_case(&cname))
                    {
                        return Err(DbError::Constraint {
                            message: format!("duplicate column {cname}"),
                        });
                    }
                    let ty = catalog.lookup_type_name(&tyname.name)?;
                    cols.push(Column { name: cname, ty });
                }
                let mut registry = self.db.registry.write();
                registry.create_table(TableSchema {
                    name: name.clone(),
                    columns: cols,
                })?;
                // Logged under the registry write lock, so WAL order
                // matches DDL serialization order. On append failure the
                // create is undone before anyone could observe it (the
                // registry write lock is still held): memory never holds
                // a statement the log refused.
                match self.db.wal_append(&catalog, |b| b.ddl(sql)) {
                    Ok(seq) => {
                        // Stamp the new table's initial version with a
                        // fresh commit point, so AS OF before this moment
                        // reports NotFound rather than an empty table.
                        if let Ok(cell) = registry.shared_table(&name) {
                            self.db.stamp_creation(&cell);
                        }
                        drop(registry);
                        drop(catalog);
                        self.db.bump_generation();
                        self.db.wal_wait(seq)?;
                        Ok(StatementOutcome::Done)
                    }
                    Err(e) => {
                        let _ = registry.drop_table(&name);
                        Err(e)
                    }
                }
            }
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                // The collector pinned the target table for writing; no
                // other table (and not the registry) is blocked while
                // the index backfills.
                let mut pinned = table_set.pin();
                self.record_pin(&pinned);
                let catalog = self.db.catalog.read();
                let t = pinned.table_mut(&table)?;
                let col = t
                    .schema
                    .col_index(&column)
                    .ok_or_else(|| DbError::NotFound {
                        kind: "column",
                        name: format!("{table}.{column}"),
                    })?;
                // Unordered types with interval-bounds support (Period,
                // Element, Instant) get a bucketed interval index that
                // accelerates overlaps/contains; everything else gets a
                // B-tree.
                let interval_bounds = match t.schema.columns[col].ty {
                    DataType::Udt(id) => {
                        let def = catalog.type_def(id)?;
                        if def.ordered {
                            None
                        } else {
                            def.interval_key.clone()
                        }
                    }
                    _ => None,
                };
                // Duplicate names are rejected *before* the WAL append,
                // and the append happens before the index is installed:
                // a chunk that never reaches the log leaves the table
                // untouched, and a logged chunk cannot fail to apply.
                if t.indexes()
                    .iter()
                    .any(|ix| ix.name.eq_ignore_ascii_case(&name))
                {
                    return Err(DbError::AlreadyExists {
                        kind: "index",
                        name,
                    });
                }
                let seq = self.db.wal_append(&catalog, |b| b.ddl(sql))?;
                match interval_bounds {
                    Some(bounds) => {
                        t.create_interval_index(name, col, bounds, DEFAULT_INTERVAL_STRIDE)?
                    }
                    None => t.create_index(name, col)?,
                }
                // Publish while the write guard is held: snapshot
                // readers resolve access paths from published versions,
                // so the new index must enter the chain.
                self.db.publish_pinned(&pinned);
                // Not a registry write, but it changes the best access
                // path: cached plans must replan to see the new index.
                self.db.bump_generation();
                drop(pinned);
                drop(catalog);
                self.db.wal_wait(seq)?;
                Ok(StatementOutcome::Done)
            }
            Statement::DropTable { name, if_exists } => {
                // Registry write only: in-flight statements still hold
                // the table's `Arc` and finish on the data they pinned.
                let catalog = self.db.catalog.read();
                let mut registry = self.db.registry.write();
                // Existence is checked up front so the WAL append comes
                // *before* the removal: an append failure leaves the
                // table in memory, matching what replay will rebuild.
                if !registry.has_table(&name) {
                    if if_exists {
                        Ok(StatementOutcome::Done)
                    } else {
                        Err(DbError::NotFound {
                            kind: "table",
                            name,
                        })
                    }
                } else {
                    let seq = self.db.wal_append(&catalog, |b| b.ddl(sql))?;
                    registry.drop_table(&name)?;
                    drop(registry);
                    drop(catalog);
                    self.db.bump_generation();
                    self.db.wal_wait(seq)?;
                    Ok(StatementOutcome::Done)
                }
            }
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                let started = Instant::now();
                let outcome = match source {
                    InsertSource::Values(rows) => {
                        self.run_insert(&table_set, &table, columns, rows, params_map, ctx)
                    }
                    InsertSource::Query(select) => self
                        .run_insert_select(&table_set, &table, columns, &select, params_map, ctx),
                };
                self.observe_dml(
                    sql,
                    &format!("insert({table})"),
                    &outcome,
                    started.elapsed(),
                );
                outcome
            }
            Statement::Update {
                table,
                sets,
                where_clause,
            } => {
                let started = Instant::now();
                let outcome =
                    self.run_update(&table_set, &table, sets, where_clause, params_map, ctx);
                self.observe_dml(
                    sql,
                    &format!("update({table})"),
                    &outcome,
                    started.elapsed(),
                );
                outcome
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let started = Instant::now();
                let outcome = self.run_delete(&table_set, &table, where_clause, params_map, ctx);
                self.observe_dml(
                    sql,
                    &format!("delete({table})"),
                    &outcome,
                    started.elapsed(),
                );
                outcome
            }
            Statement::CreateView {
                name,
                query,
                body_start,
            } => {
                // Validate the view body by planning it once against the
                // pinned base tables before storing the text. The pins are
                // dropped before the registry write lock is taken.
                {
                    let pinned = table_set.pin();
                    self.record_pin(&pinned);
                    let catalog = self.db.catalog.read();
                    let planner = Planner::new(&catalog, &pinned, params_map, ctx);
                    planner.plan_select(&query)?;
                }
                let body_sql = sql
                    .get(body_start..)
                    .unwrap_or("")
                    .trim()
                    .trim_end_matches(';')
                    .to_owned();
                let catalog = self.db.catalog.read();
                let mut registry = self.db.registry.write();
                registry.create_view(crate::storage::ViewDef {
                    name: name.clone(),
                    body_sql,
                })?;
                // As with CREATE TABLE: undo the in-memory create if its
                // chunk never reaches the log.
                match self.db.wal_append(&catalog, |b| b.ddl(sql)) {
                    Ok(seq) => {
                        drop(registry);
                        drop(catalog);
                        self.db.wal_wait(seq)?;
                        Ok(StatementOutcome::Done)
                    }
                    Err(e) => {
                        let _ = registry.drop_view(&name);
                        Err(e)
                    }
                }
            }
            Statement::DropView { name, if_exists } => {
                let catalog = self.db.catalog.read();
                let mut registry = self.db.registry.write();
                // Check-append-remove, as in DROP TABLE: the removal
                // cannot fail after its chunk reached the log.
                if registry.view(&name).is_none() {
                    if if_exists {
                        Ok(StatementOutcome::Done)
                    } else {
                        Err(DbError::NotFound { kind: "view", name })
                    }
                } else {
                    let seq = self.db.wal_append(&catalog, |b| b.ddl(sql))?;
                    registry.drop_view(&name)?;
                    drop(registry);
                    drop(catalog);
                    self.db.wal_wait(seq)?;
                    Ok(StatementOutcome::Done)
                }
            }
            Statement::Explain { inner, analyze } => {
                let Statement::Select(sel) = *inner else {
                    return Err(DbError::exec("EXPLAIN supports SELECT statements"));
                };
                let started = Instant::now();
                self.metrics.record_plan_cache_miss();
                let cache_tables = self
                    .cacheable(&sel, &table_set)
                    .then(|| table_set.table_keys());
                let pinned = table_set.pin();
                self.record_pin(&pinned);
                let catalog = self.db.catalog.read();
                let planner = Planner::new_deferred(&catalog, &pinned, params_map, ctx.clone());
                let planned = planner.plan_select(&sel)?;
                let batch = planned.plan.batch_capable();
                let rows = if analyze {
                    // Execute under full instrumentation and report the
                    // plan tree annotated with per-operator stats.
                    let prof = OpProfile::timed(&planned.plan);
                    let produced =
                        self.run_plan(&planned.plan, batch, &pinned, &ctx, Some(&prof))?;
                    prof.charge_scans(&self.metrics);
                    self.metrics
                        .record_select(produced.len() as u64, started.elapsed());
                    let mut lines = prof.render();
                    lines.push(format!(
                        "returned {} row(s) in {:.1?} [pinned {} table(s), lock-wait {:.1?}] [exec: {}] [plan: fresh]",
                        produced.len(),
                        started.elapsed(),
                        pinned.tables_pinned(),
                        pinned.lock_wait(),
                        self.exec_label(batch)
                    ));
                    lines
                } else {
                    vec![planned.plan.describe()]
                };
                drop(pinned);
                drop(catalog);
                // EXPLAIN keys the cache by the *inner* SELECT text, so
                // it warms (and reads) the same entry as the bare query.
                if let Some(tables) = cache_tables {
                    let (_, _, key) = cache::split_explain(cache::normalize_sql(sql));
                    self.db.plan_cache_insert(
                        key.to_owned(),
                        CachedPlan {
                            plan: planned.plan,
                            columns: planned.columns,
                            param_sig,
                            tables,
                            generation,
                            batch,
                        },
                    );
                    self.metrics
                        .set_plan_cache_entries(self.db.plan_cache_len() as u64);
                }
                Ok(StatementOutcome::Rows(QueryResult {
                    columns: vec![("plan".to_owned(), DataType::Str)],
                    rows: rows.into_iter().map(|l| vec![Value::Str(l)]).collect(),
                }))
            }
            Statement::ShowStats => {
                // Session counters, then the database-wide WAL counters
                // (all zero on an in-memory database), MVCC gauges,
                // replication counters, and buffer-pool gauges.
                let rows = self
                    .metrics
                    .snapshot()
                    .rows()
                    .into_iter()
                    .chain(self.db.wal_stats().rows())
                    .chain(self.db.mvcc_rows())
                    .chain(self.db.repl_stats().rows())
                    .chain(self.db.bufpool_rows())
                    .map(|(metric, value)| {
                        vec![
                            Value::Str(metric),
                            Value::Int(value.min(i64::MAX as u64) as i64),
                        ]
                    })
                    .collect();
                Ok(StatementOutcome::Rows(QueryResult {
                    columns: vec![
                        ("metric".to_owned(), DataType::Str),
                        ("value".to_owned(), DataType::Int),
                    ],
                    rows,
                }))
            }
        };
        if outcome.is_ok() {
            self.metrics.record_statement(kind);
        }
        outcome
    }

    /// Probes the database-wide plan cache and, on a hit, executes the
    /// cached plan without touching the SQL front end. Returns
    /// `Ok(None)` on a miss (the caller runs the fresh path).
    fn try_cached(
        &self,
        sql: &str,
        params: Option<&Arc<HashMap<String, Value>>>,
        generation: u64,
        param_sig: &[(String, DataType)],
    ) -> DbResult<Option<StatementOutcome>> {
        let (is_explain, analyze, key) = cache::split_explain(cache::normalize_sql(sql));
        let entry = match self.db.plan_cache_lookup(key, generation, param_sig) {
            CacheLookup::Hit(e) => e,
            CacheLookup::Stale => {
                self.metrics.record_plan_cache_invalidation();
                self.metrics
                    .set_plan_cache_entries(self.db.plan_cache_len() as u64);
                return Ok(None);
            }
            CacheLookup::Absent => return Ok(None),
        };
        self.metrics.record_plan_cache_hit();
        self.metrics
            .set_plan_cache_entries(self.db.plan_cache_len() as u64);
        if is_explain && !analyze {
            // Plain EXPLAIN of a cached plan: describe, don't execute.
            self.metrics.record_statement(StatementKind::Explain);
            return Ok(Some(StatementOutcome::Rows(QueryResult {
                columns: vec![("plan".to_owned(), DataType::Str)],
                rows: vec![vec![Value::Str(entry.plan.describe())]],
            })));
        }
        let started = Instant::now();
        let ctx = self.statement_ctx(params);
        // Re-pin exactly the tables the plan touches. A table dropped
        // since the fill surfaces here as a typed NotFound (the racing
        // DROP also bumped the generation, so the entry dies on its
        // next lookup).
        let table_set = TableSet::read_only(&self.db.registry.read(), &entry.tables)?;
        // Same snapshot protocol as the fresh SELECT path: lock-free.
        let snap = self.db.pin_snapshot();
        let pinned = table_set.pin_at(snap.seq());
        self.record_pin(&pinned);
        if is_explain {
            // EXPLAIN ANALYZE from cache: same instrumentation as the
            // fresh path, with the provenance trailer flipped.
            let prof = OpProfile::timed(&entry.plan);
            let produced = self.run_plan(&entry.plan, entry.batch, &pinned, &ctx, Some(&prof))?;
            prof.charge_scans(&self.metrics);
            self.metrics
                .record_select(produced.len() as u64, started.elapsed());
            let mut lines = prof.render();
            lines.push(format!(
                "returned {} row(s) in {:.1?} [pinned {} table(s), lock-wait {:.1?}] [exec: {}] [plan: cached]",
                produced.len(),
                started.elapsed(),
                pinned.tables_pinned(),
                pinned.lock_wait(),
                self.exec_label(entry.batch)
            ));
            self.metrics.record_statement(StatementKind::Explain);
            return Ok(Some(StatementOutcome::Rows(QueryResult {
                columns: vec![("plan".to_owned(), DataType::Str)],
                rows: lines.into_iter().map(|l| vec![Value::Str(l)]).collect(),
            })));
        }
        let prof = OpProfile::paths_only(&entry.plan);
        let rows = self.run_plan(&entry.plan, entry.batch, &pinned, &ctx, Some(&prof))?;
        prof.charge_scans(&self.metrics);
        drop(pinned);
        self.observe_select(sql, &entry.plan, rows.len() as u64, started.elapsed());
        self.metrics.record_statement(StatementKind::Select);
        Ok(Some(StatementOutcome::Rows(QueryResult {
            columns: entry.columns.clone(),
            rows,
        })))
    }

    /// Whether a SELECT's plan may enter the cache: no subqueries
    /// anywhere in the AST (the planner freezes them to *values* at plan
    /// time) and no views (a view body may itself contain subqueries,
    /// and its text can change under the same name — a deliberate
    /// non-caching choice, not a correctness limit).
    fn cacheable(&self, sel: &SelectStmt, table_set: &TableSet) -> bool {
        !table_set.uses_views() && sel.as_of.is_none() && !select_has_subquery(sel)
    }

    /// Executes a statement expected to return rows.
    pub fn query(&self, sql: &str) -> DbResult<QueryResult> {
        self.query_with_params(sql, &[])
    }

    /// Executes a parameterized statement expected to return rows.
    pub fn query_with_params(&self, sql: &str, params: &[(&str, Value)]) -> DbResult<QueryResult> {
        match self.execute_with_params(sql, params)? {
            StatementOutcome::Rows(r) => Ok(r),
            other => Err(DbError::exec(format!(
                "statement produced {other:?}, not rows"
            ))),
        }
    }

    /// Renders a result set as an ASCII table (uses UDT display
    /// functions).
    pub fn format_result(&self, result: &QueryResult) -> String {
        format_result_with(&self.db.catalog.read(), result)
    }

    // ----- DML -------------------------------------------------------

    fn run_insert(
        &self,
        set: &TableSet,
        table: &str,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<crate::sql::ast::Expr>>,
        params: &HashMap<String, Value>,
        ctx: ExecCtx,
    ) -> DbResult<StatementOutcome> {
        let mut pinned = set.pin();
        self.record_pin(&pinned);
        let catalog = self.db.catalog.read();
        let schema = pinned.table(table)?.schema.clone();
        let target_cols = resolve_target_cols(&schema, table, &columns)?;
        let to_insert = eval_insert_values(
            &catalog,
            &pinned,
            &schema,
            &target_cols,
            &rows,
            params,
            &ctx,
        )?;
        let t = pinned.table_mut(table)?;
        // Log *before* applying, against the rowids the inserts are
        // about to land on (the free list is deterministic): a chunk
        // that never reaches the log leaves memory untouched, so the
        // statement is refused cleanly instead of surviving unlogged.
        let rowids = t.planned_rowids(to_insert.len());
        let seq = self.db.wal_append(&catalog, |b| {
            for (&rid, row) in rowids.iter().zip(&to_insert) {
                b.insert(&schema.name, rid as u64, row)?;
            }
            Ok(())
        })?;
        let n = to_insert.len();
        for (row, &rid) in to_insert.into_iter().zip(&rowids) {
            let got = t.insert(row);
            debug_assert_eq!(got, rid, "planned rowid diverged from insert");
        }
        self.db.publish_pinned(&pinned);
        drop(pinned);
        drop(catalog);
        self.db.wal_wait(seq)?;
        Ok(StatementOutcome::Affected(n))
    }

    /// `INSERT INTO t [cols] SELECT …`: runs the query, then coerces each
    /// produced row into the target column types.
    fn run_insert_select(
        &self,
        set: &TableSet,
        table: &str,
        columns: Option<Vec<String>>,
        select: &crate::sql::ast::SelectStmt,
        params: &HashMap<String, Value>,
        ctx: ExecCtx,
    ) -> DbResult<StatementOutcome> {
        let mut pinned = set.pin();
        self.record_pin(&pinned);
        let catalog = self.db.catalog.read();
        let schema = pinned.table(table)?.schema.clone();
        let target_cols = resolve_target_cols(&schema, table, &columns)?;
        let to_insert = eval_insert_select(
            &catalog,
            &pinned,
            &schema,
            &target_cols,
            select,
            params,
            &ctx,
        )?;
        let t = pinned.table_mut(table)?;
        // Same log-before-apply protocol as plain INSERT.
        let rowids = t.planned_rowids(to_insert.len());
        let seq = self.db.wal_append(&catalog, |b| {
            for (&rid, row) in rowids.iter().zip(&to_insert) {
                b.insert(&schema.name, rid as u64, row)?;
            }
            Ok(())
        })?;
        let n = to_insert.len();
        for (row, &rid) in to_insert.into_iter().zip(&rowids) {
            let got = t.insert(row);
            debug_assert_eq!(got, rid, "planned rowid diverged from insert");
        }
        self.db.publish_pinned(&pinned);
        drop(pinned);
        drop(catalog);
        self.db.wal_wait(seq)?;
        Ok(StatementOutcome::Affected(n))
    }

    fn table_scope(schema: &TableSchema) -> crate::binder::Scope {
        crate::binder::Scope::new(
            schema
                .columns
                .iter()
                .map(|c| crate::binder::ScopeCol {
                    binding: Some(schema.name.to_ascii_lowercase()),
                    name: c.name.to_ascii_lowercase(),
                    ty: c.ty,
                })
                .collect(),
        )
    }

    fn run_update(
        &self,
        set: &TableSet,
        table: &str,
        sets: Vec<(String, crate::sql::ast::Expr)>,
        where_clause: Option<crate::sql::ast::Expr>,
        params: &HashMap<String, Value>,
        ctx: ExecCtx,
    ) -> DbResult<StatementOutcome> {
        let mut pinned = set.pin();
        self.record_pin(&pinned);
        let catalog = self.db.catalog.read();
        let schema = pinned.table(table)?.schema.clone();
        let snapshot = pinned.table(table)?.scan()?;
        let changes = eval_update_changes(
            &catalog,
            &pinned,
            &schema,
            table,
            snapshot,
            &sets,
            &where_clause,
            params,
            &ctx,
        )?;
        let t = pinned.table_mut(table)?;
        let seq = self.db.wal_append(&catalog, |b| {
            for (rid, row) in &changes {
                b.update(&schema.name, *rid as u64, row)?;
            }
            Ok(())
        })?;
        let affected = changes.len();
        for (rowid, new_row) in changes {
            t.update(rowid, new_row)?;
        }
        self.db.publish_pinned(&pinned);
        drop(pinned);
        drop(catalog);
        self.db.wal_wait(seq)?;
        Ok(StatementOutcome::Affected(affected))
    }

    fn run_delete(
        &self,
        set: &TableSet,
        table: &str,
        where_clause: Option<crate::sql::ast::Expr>,
        params: &HashMap<String, Value>,
        ctx: ExecCtx,
    ) -> DbResult<StatementOutcome> {
        let mut pinned = set.pin();
        self.record_pin(&pinned);
        let catalog = self.db.catalog.read();
        let schema = pinned.table(table)?.schema.clone();
        let snapshot = pinned.table(table)?.scan()?;
        let victims = eval_delete_victims(
            &catalog,
            &pinned,
            &schema,
            snapshot,
            &where_clause,
            params,
            &ctx,
        )?;
        let t = pinned.table_mut(table)?;
        let seq = self.db.wal_append(&catalog, |b| {
            for &rid in &victims {
                b.delete(&schema.name, rid as u64)?;
            }
            Ok(())
        })?;
        let mut affected = 0;
        for rowid in victims {
            if t.delete(rowid)? {
                affected += 1;
            }
        }
        self.db.publish_pinned(&pinned);
        drop(pinned);
        drop(catalog);
        self.db.wal_wait(seq)?;
        Ok(StatementOutcome::Affected(affected))
    }

    // ----- Transactions ----------------------------------------------

    /// `BEGIN`: pins a snapshot and opens a statement-buffering
    /// transaction on this session.
    fn txn_begin(&self) -> DbResult<StatementOutcome> {
        let mut txn = self.txn.lock();
        if txn.is_some() {
            return Err(DbError::exec(
                "a transaction is already open; COMMIT or ROLLBACK first",
            ));
        }
        *txn = Some(TxnState {
            pin: self.db.pin_snapshot(),
            tables: HashMap::new(),
            ops: Vec::new(),
        });
        self.metrics.record_txn_begun();
        Ok(StatementOutcome::Done)
    }

    /// `ROLLBACK`: discards the workspace — nothing was applied or
    /// logged, so there is nothing else to undo.
    fn txn_rollback(&self) -> DbResult<StatementOutcome> {
        if self.txn.lock().take().is_none() {
            return Err(DbError::exec("no transaction is open"));
        }
        self.metrics.record_txn_rolled_back();
        Ok(StatementOutcome::Done)
    }

    /// `COMMIT`: write-write conflict check against each touched
    /// table's base version, one WAL chunk for the whole transaction,
    /// then an atomic publish of every workspace table.
    fn txn_commit(&self) -> DbResult<StatementOutcome> {
        let Some(txn) = self.txn.lock().take() else {
            return Err(DbError::exec("no transaction is open"));
        };
        let TxnState { pin, tables, ops } = txn;
        if ops.is_empty() {
            // Read-only transaction: nothing to log or publish.
            drop(pin);
            self.metrics.record_txn_committed();
            return Ok(StatementOutcome::Done);
        }
        // Lock every touched table in sorted order (the same order
        // pinned statements use), so commits cannot deadlock.
        let mut entries: Vec<(String, TxnTable)> = tables.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut guards: Vec<_> = entries.iter().map(|(_, tt)| tt.cell.write()).collect();
        // First committer wins: if any chain moved past the version
        // this transaction built on, a concurrent commit got there
        // first. Checked under the write guards, so the answer cannot
        // change before we publish.
        for (_, tt) in &entries {
            if tt.cell.latest_seq() != tt.base_seq {
                self.metrics.record_txn_rolled_back();
                return Err(DbError::exec(format!(
                    "write-write conflict on table {}: a concurrent commit got there first",
                    tt.name
                )));
            }
        }
        let catalog = self.db.catalog.read();
        // One chunk for the whole transaction: recovery replays all of
        // it or none of it. If the append is refused the in-memory
        // tables were never touched (every write is still buffered in
        // the workspace), so refusing the COMMIT is a clean abort.
        let seq = match self.db.wal_append(&catalog, |b| {
            for op in &ops {
                match op {
                    PendingOp::Insert { table, rowid, row } => b.insert(table, *rowid, row)?,
                    PendingOp::Update { table, rowid, row } => b.update(table, *rowid, row)?,
                    PendingOp::Delete { table, rowid } => b.delete(table, *rowid)?,
                }
            }
            Ok(())
        }) {
            Ok(seq) => seq,
            Err(e) => {
                self.metrics.record_txn_rolled_back();
                return Err(e);
            }
        };
        let mut publishes = Vec::with_capacity(entries.len());
        for ((_, tt), g) in entries.iter().zip(guards.iter_mut()) {
            **g = tt.work.clone();
            publishes.push((Arc::clone(&tt.cell), Arc::new(tt.work.clone())));
        }
        self.db.publish_prepared(publishes);
        drop(guards);
        drop(entries);
        drop(pin);
        drop(catalog);
        self.db.wal_wait(seq)?;
        self.metrics.record_txn_committed();
        Ok(StatementOutcome::Done)
    }

    /// Materializes `table` in the transaction workspace on first
    /// touch: a private copy of the table's version at the transaction
    /// snapshot. Returns the lowercase workspace key.
    fn txn_touch(&self, txn: &mut TxnState, table: &str) -> DbResult<String> {
        let key = table.to_ascii_lowercase();
        if !txn.tables.contains_key(&key) {
            let cell = self.db.registry.read().shared_table(&key)?;
            let (base_seq, snap) = cell.version_at(txn.pin.seq()).ok_or(DbError::NotFound {
                kind: "table",
                name: table.to_owned(),
            })?;
            let name = snap.schema.name.clone();
            txn.tables.insert(
                key.clone(),
                TxnTable {
                    cell,
                    base_seq,
                    work: (*snap).clone(),
                    name,
                },
            );
        }
        Ok(key)
    }

    /// SELECT inside an open transaction: reads the workspace overlay
    /// (own uncommitted writes) over the transaction snapshot, with no
    /// table locks.
    fn txn_select(
        &self,
        table_set: &TableSet,
        sel: &SelectStmt,
        sql: &str,
        params: &HashMap<String, Value>,
        ctx: ExecCtx,
    ) -> DbResult<StatementOutcome> {
        let started = Instant::now();
        let frozen = {
            let guard = self.txn.lock();
            let txn = guard.as_ref().expect("caller checked txn");
            frozen_for_txn(table_set, txn)?
        };
        let catalog = self.db.catalog.read();
        let planner = Planner::new(&catalog, &frozen, params, ctx.clone());
        let planned = planner.plan_select(sel)?;
        let prof = OpProfile::paths_only(&planned.plan);
        let batch = planned.plan.batch_capable();
        let rows = self.run_plan(&planned.plan, batch, &frozen, &ctx, Some(&prof))?;
        prof.charge_scans(&self.metrics);
        drop(catalog);
        self.observe_select(sql, &planned.plan, rows.len() as u64, started.elapsed());
        Ok(StatementOutcome::Rows(QueryResult {
            columns: planned.columns,
            rows,
        }))
    }

    /// Routes one buffered DML statement into the transaction
    /// workspace.
    fn txn_dml(
        &self,
        table_set: &TableSet,
        stmt: Statement,
        sql: &str,
        params: &HashMap<String, Value>,
        ctx: ExecCtx,
    ) -> DbResult<StatementOutcome> {
        let started = Instant::now();
        let (desc, outcome) = match stmt {
            Statement::Insert {
                table,
                columns,
                source,
            } => (
                format!("insert({table})"),
                self.txn_insert(table_set, &table, columns, source, params, ctx),
            ),
            Statement::Update {
                table,
                sets,
                where_clause,
            } => (
                format!("update({table})"),
                self.txn_update(table_set, &table, sets, where_clause, params, ctx),
            ),
            Statement::Delete {
                table,
                where_clause,
            } => (
                format!("delete({table})"),
                self.txn_delete(table_set, &table, where_clause, params, ctx),
            ),
            _ => unreachable!("caller routes only DML here"),
        };
        self.observe_dml(sql, &desc, &outcome, started.elapsed());
        outcome
    }

    fn txn_insert(
        &self,
        set: &TableSet,
        table: &str,
        columns: Option<Vec<String>>,
        source: InsertSource,
        params: &HashMap<String, Value>,
        ctx: ExecCtx,
    ) -> DbResult<StatementOutcome> {
        let mut guard = self.txn.lock();
        let txn = guard.as_mut().expect("caller checked txn");
        let key = self.txn_touch(txn, table)?;
        let schema = txn.tables[&key].work.schema.clone();
        let catalog = self.db.catalog.read();
        let target_cols = resolve_target_cols(&schema, table, &columns)?;
        let frozen = frozen_for_txn(set, txn)?;
        let to_insert = match source {
            InsertSource::Values(rows) => eval_insert_values(
                &catalog,
                &frozen,
                &schema,
                &target_cols,
                &rows,
                params,
                &ctx,
            )?,
            InsertSource::Query(select) => eval_insert_select(
                &catalog,
                &frozen,
                &schema,
                &target_cols,
                &select,
                params,
                &ctx,
            )?,
        };
        let n = to_insert.len();
        let tt = txn.tables.get_mut(&key).expect("touched above");
        for row in to_insert {
            let rowid = tt.work.insert(row.clone()) as u64;
            txn.ops.push(PendingOp::Insert {
                table: tt.name.clone(),
                rowid,
                row,
            });
        }
        Ok(StatementOutcome::Affected(n))
    }

    fn txn_update(
        &self,
        set: &TableSet,
        table: &str,
        sets: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
        params: &HashMap<String, Value>,
        ctx: ExecCtx,
    ) -> DbResult<StatementOutcome> {
        let mut guard = self.txn.lock();
        let txn = guard.as_mut().expect("caller checked txn");
        let key = self.txn_touch(txn, table)?;
        let schema = txn.tables[&key].work.schema.clone();
        let catalog = self.db.catalog.read();
        let frozen = frozen_for_txn(set, txn)?;
        let snapshot = txn.tables[&key].work.scan()?;
        let changes = eval_update_changes(
            &catalog,
            &frozen,
            &schema,
            table,
            snapshot,
            &sets,
            &where_clause,
            params,
            &ctx,
        )?;
        let affected = changes.len();
        let tt = txn.tables.get_mut(&key).expect("touched above");
        for (rowid, new_row) in changes {
            tt.work.update(rowid, new_row.clone())?;
            txn.ops.push(PendingOp::Update {
                table: tt.name.clone(),
                rowid: rowid as u64,
                row: new_row,
            });
        }
        Ok(StatementOutcome::Affected(affected))
    }

    fn txn_delete(
        &self,
        set: &TableSet,
        table: &str,
        where_clause: Option<Expr>,
        params: &HashMap<String, Value>,
        ctx: ExecCtx,
    ) -> DbResult<StatementOutcome> {
        let mut guard = self.txn.lock();
        let txn = guard.as_mut().expect("caller checked txn");
        let key = self.txn_touch(txn, table)?;
        let schema = txn.tables[&key].work.schema.clone();
        let catalog = self.db.catalog.read();
        let frozen = frozen_for_txn(set, txn)?;
        let snapshot = txn.tables[&key].work.scan()?;
        let victims = eval_delete_victims(
            &catalog,
            &frozen,
            &schema,
            snapshot,
            &where_clause,
            params,
            &ctx,
        )?;
        let mut affected = 0;
        let tt = txn.tables.get_mut(&key).expect("touched above");
        for rowid in victims {
            if tt.work.delete(rowid)? {
                affected += 1;
                txn.ops.push(PendingOp::Delete {
                    table: tt.name.clone(),
                    rowid: rowid as u64,
                });
            }
        }
        Ok(StatementOutcome::Affected(affected))
    }

    /// `SELECT … AS OF`: time travel against committed history only —
    /// an open transaction's workspace is deliberately invisible here.
    fn run_select_as_of(
        &self,
        table_set: &TableSet,
        sel: &SelectStmt,
        sql: &str,
        params: &HashMap<String, Value>,
        ctx: ExecCtx,
    ) -> DbResult<StatementOutcome> {
        let started = Instant::now();
        let catalog = self.db.catalog.read();
        let as_of = sel.as_of.as_ref().expect("caller checked as_of");
        let point = eval_as_of_point(&catalog, as_of, params, &ctx)?;
        // Pin the target sequence so GC cannot collect the versions out
        // from under the scan. Instants don't know their sequence, so
        // they pin the whole chain for the statement's duration.
        let _pin = match point {
            TimePoint::Seq(n) => self.db.pin_snapshot_at(n),
            TimePoint::Instant(_) => self.db.pin_snapshot_at(0),
        };
        let frozen = frozen_at_point(table_set, point)?;
        let planner = Planner::new(&catalog, &frozen, params, ctx.clone());
        let planned = planner.plan_select(sel)?;
        let prof = OpProfile::paths_only(&planned.plan);
        let batch = planned.plan.batch_capable();
        let rows = self.run_plan(&planned.plan, batch, &frozen, &ctx, Some(&prof))?;
        prof.charge_scans(&self.metrics);
        drop(catalog);
        self.observe_select(sql, &planned.plan, rows.len() as u64, started.elapsed());
        Ok(StatementOutcome::Rows(QueryResult {
            columns: planned.columns,
            rows,
        }))
    }
}

// ----- Transaction & AS OF helpers -----------------------------------

/// A resolved `AS OF` target: a commit sequence or a wall-clock
/// instant.
#[derive(Clone, Copy)]
enum TimePoint {
    Seq(u64),
    Instant(i64),
}

/// Freezes the statement's table set at the transaction snapshot, with
/// workspace overlays for tables the transaction has already touched.
fn frozen_for_txn(set: &TableSet, txn: &TxnState) -> DbResult<FrozenTables> {
    let mut tables = Vec::with_capacity(set.len());
    for (key, cell) in set.entries() {
        let snap = match txn.tables.get(key) {
            Some(tt) => Arc::new(tt.work.clone()),
            None => cell.snapshot_at(txn.pin.seq()).ok_or(DbError::NotFound {
                kind: "table",
                name: key.to_owned(),
            })?,
        };
        tables.push((key.to_owned(), snap));
    }
    Ok(FrozenTables::new(tables, set.views().clone()))
}

/// Freezes the statement's table set at an explicit time-travel point.
/// A table with no version at the point (not created yet, or its
/// history was garbage-collected past the retention window) reports
/// `NotFound`.
fn frozen_at_point(set: &TableSet, point: TimePoint) -> DbResult<FrozenTables> {
    let mut tables = Vec::with_capacity(set.len());
    for (key, cell) in set.entries() {
        let snap = match point {
            TimePoint::Seq(n) => cell.snapshot_at(n),
            TimePoint::Instant(t) => cell.snapshot_at_instant(t),
        };
        let snap = snap.ok_or(DbError::NotFound {
            kind: "table",
            name: key.to_owned(),
        })?;
        tables.push((key.to_owned(), snap));
    }
    Ok(FrozenTables::new(tables, set.views().clone()))
}

/// Evaluates the `AS OF` operand — a table-free scalar expression —
/// into a [`TimePoint`].
fn eval_as_of_point(
    catalog: &Catalog,
    as_of: &AsOf,
    params: &HashMap<String, Value>,
    ctx: &ExecCtx,
) -> DbResult<TimePoint> {
    let empty = FrozenTables::new(Vec::new(), HashMap::new());
    let planner = Planner::new(catalog, &empty, params, ctx.clone());
    let scope = crate::binder::Scope::default();
    let eval = |e: &Expr| -> DbResult<Value> {
        let e = planner.resolve_subqueries(e)?;
        let bound = planner.binder.bind(&e, &scope)?;
        bound.eval(ctx, &[])
    };
    match as_of {
        AsOf::Commit(e) => {
            let v = eval(e)?;
            let n = v.as_int().ok_or_else(|| {
                DbError::type_err("AS OF COMMIT expects an integer commit sequence")
            })?;
            if n < 0 {
                return Err(DbError::type_err(
                    "AS OF COMMIT expects a non-negative commit sequence",
                ));
            }
            Ok(TimePoint::Seq(n as u64))
        }
        AsOf::Instant(e) => Ok(TimePoint::Instant(instant_of(catalog, &eval(e)?)?)),
    }
}

/// Coerces an evaluated `AS OF` operand into Unix seconds: a plain
/// integer, or any temporal UDT with an interval key (its low edge).
fn instant_of(catalog: &Catalog, v: &Value) -> DbResult<i64> {
    if let Some(n) = v.as_int() {
        return Ok(n);
    }
    if let Some(u) = v.as_udt() {
        if let Ok(def) = catalog.type_def(u.type_id()) {
            if let Some(key) = def.interval_key.as_ref() {
                if let Some((lo, _)) = key(u) {
                    return Ok(lo);
                }
            }
        }
    }
    Err(DbError::type_err(
        "AS OF expects unix seconds or a temporal value",
    ))
}

/// Resolves an optional INSERT column list into target column indexes,
/// rejecting unknown and duplicate columns.
fn resolve_target_cols(
    schema: &TableSchema,
    table: &str,
    columns: &Option<Vec<String>>,
) -> DbResult<Vec<usize>> {
    match columns {
        Some(names) => {
            let mut idxs = Vec::with_capacity(names.len());
            for n in names {
                let i = schema.col_index(n).ok_or_else(|| DbError::NotFound {
                    kind: "column",
                    name: format!("{table}.{n}"),
                })?;
                if idxs.contains(&i) {
                    return Err(DbError::Constraint {
                        message: format!("column {n} listed twice"),
                    });
                }
                idxs.push(i);
            }
            Ok(idxs)
        }
        None => Ok((0..schema.columns.len()).collect()),
    }
}

/// Evaluates INSERT … VALUES rows into full-width rows. Two-phase: any
/// evaluation error leaves nothing applied.
fn eval_insert_values(
    catalog: &Catalog,
    source: &dyn TableSource,
    schema: &TableSchema,
    target_cols: &[usize],
    rows: &[Vec<Expr>],
    params: &HashMap<String, Value>,
    ctx: &ExecCtx,
) -> DbResult<Vec<Row>> {
    let planner = Planner::new(catalog, source, params, ctx.clone());
    let scope = crate::binder::Scope::default();
    let mut out = Vec::with_capacity(rows.len());
    for exprs in rows {
        if exprs.len() != target_cols.len() {
            return Err(DbError::Constraint {
                message: format!(
                    "INSERT has {} value(s) but {} column(s)",
                    exprs.len(),
                    target_cols.len()
                ),
            });
        }
        let mut row: Row = vec![Value::Null; schema.columns.len()];
        for (e, &col) in exprs.iter().zip(target_cols) {
            let e = planner.resolve_subqueries(e)?;
            let bound = planner.binder.bind(&e, &scope)?;
            let coerced = planner
                .binder
                .coerce(bound, schema.columns[col].ty, false)?;
            row[col] = coerced.eval(ctx, &[])?;
        }
        out.push(row);
    }
    Ok(out)
}

/// Plans and runs the SELECT side of `INSERT … SELECT` against
/// `source`, coercing each produced row to the target column types.
fn eval_insert_select(
    catalog: &Catalog,
    source: &dyn TableSource,
    schema: &TableSchema,
    target_cols: &[usize],
    select: &SelectStmt,
    params: &HashMap<String, Value>,
    ctx: &ExecCtx,
) -> DbResult<Vec<Row>> {
    let planner = Planner::new(catalog, source, params, ctx.clone());
    let planned = planner.plan_select(select)?;
    if planned.columns.len() != target_cols.len() {
        return Err(DbError::Constraint {
            message: format!(
                "INSERT … SELECT produces {} column(s) but {} are targeted",
                planned.columns.len(),
                target_cols.len()
            ),
        });
    }
    // Precompute per-column coercions (identity, or an implicit cast).
    let mut coercions: Vec<Option<crate::catalog::CastFnImpl>> =
        Vec::with_capacity(target_cols.len());
    for ((_, src_ty), &col) in planned.columns.iter().zip(target_cols) {
        let dst_ty = schema.columns[col].ty;
        if *src_ty == dst_ty || *src_ty == DataType::Null {
            coercions.push(None);
        } else {
            let cast =
                catalog
                    .find_cast(*src_ty, dst_ty, false)
                    .ok_or_else(|| DbError::NoOverload {
                        what: format!(
                            "cast {} -> {} for INSERT … SELECT",
                            catalog.type_name(*src_ty),
                            catalog.type_name(dst_ty)
                        ),
                    })?;
            coercions.push(Some(cast.f.clone()));
        }
    }
    let produced = crate::exec::execute(&planned.plan, source, ctx)?;
    // Two-phase: coerce the whole change set before anything is
    // applied, so a coercion error mid-stream cannot leave a partial
    // insert.
    let mut out = Vec::with_capacity(produced.len());
    for src in produced {
        let mut row: Row = vec![Value::Null; schema.columns.len()];
        for ((v, &col), coerce) in src.into_iter().zip(target_cols).zip(&coercions) {
            row[col] = match (coerce, v.is_null()) {
                (Some(f), false) => f(ctx, &v)?,
                _ => v,
            };
        }
        out.push(row);
    }
    Ok(out)
}

/// Evaluates an UPDATE's full change set against `rows` without
/// mutating anything.
#[allow(clippy::too_many_arguments)]
fn eval_update_changes(
    catalog: &Catalog,
    source: &dyn TableSource,
    schema: &TableSchema,
    table: &str,
    rows: Vec<(usize, Row)>,
    sets: &[(String, Expr)],
    where_clause: &Option<Expr>,
    params: &HashMap<String, Value>,
    ctx: &ExecCtx,
) -> DbResult<Vec<(usize, Row)>> {
    let scope = Session::table_scope(schema);
    let planner = Planner::new(catalog, source, params, ctx.clone());
    let mut bound_sets = Vec::with_capacity(sets.len());
    for (name, e) in sets {
        let col = schema.col_index(name).ok_or_else(|| DbError::NotFound {
            kind: "column",
            name: format!("{table}.{name}"),
        })?;
        let e = planner.resolve_subqueries(e)?;
        let bound = planner.binder.bind(&e, &scope)?;
        let coerced = planner
            .binder
            .coerce(bound, schema.columns[col].ty, false)?;
        bound_sets.push((col, coerced));
    }
    let pred = match where_clause {
        Some(w) => {
            let w = planner.resolve_subqueries(w)?;
            Some(planner.bind_folded(&w, &scope)?)
        }
        None => None,
    };
    let mut changes = Vec::new();
    for (rowid, row) in rows {
        let keep = match &pred {
            Some(p) => p.eval(ctx, &row)?.as_bool() == Some(true),
            None => true,
        };
        if !keep {
            continue;
        }
        let mut new_row = row.clone();
        for (col, e) in &bound_sets {
            new_row[*col] = e.eval(ctx, &row)?;
        }
        changes.push((rowid, new_row));
    }
    Ok(changes)
}

/// Decides a DELETE's victim set against `rows` without mutating
/// anything.
fn eval_delete_victims(
    catalog: &Catalog,
    source: &dyn TableSource,
    schema: &TableSchema,
    rows: Vec<(usize, Row)>,
    where_clause: &Option<Expr>,
    params: &HashMap<String, Value>,
    ctx: &ExecCtx,
) -> DbResult<Vec<usize>> {
    let scope = Session::table_scope(schema);
    let planner = Planner::new(catalog, source, params, ctx.clone());
    let pred = match where_clause {
        Some(w) => {
            let w = planner.resolve_subqueries(w)?;
            Some(planner.bind_folded(&w, &scope)?)
        }
        None => None,
    };
    let mut victims = Vec::new();
    for (rowid, row) in rows {
        let hit = match &pred {
            Some(p) => p.eval(ctx, &row)?.as_bool() == Some(true),
            None => true,
        };
        if hit {
            victims.push(rowid);
        }
    }
    Ok(victims)
}

/// A validated statement handle for repeat execution, from
/// [`Session::prepare`]. Holds no plan itself: execution goes through
/// the database-wide plan cache, so every session (and every remote
/// connection) preparing the same text shares one plan.
pub struct Prepared<'a> {
    session: &'a Session,
    sql: String,
}

impl Prepared<'_> {
    /// The statement text this handle was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Executes the statement with the given parameter values.
    pub fn execute(&self, params: &[(&str, Value)]) -> DbResult<StatementOutcome> {
        self.session.execute_with_params(&self.sql, params)
    }

    /// Executes the statement, expecting rows back.
    pub fn query(&self, params: &[(&str, Value)]) -> DbResult<QueryResult> {
        self.session.query_with_params(&self.sql, params)
    }
}

/// The sorted `(lowercase name, type)` signature of a parameter set —
/// what decides whether a cached plan (whose overloads were resolved
/// against these types) is reusable.
fn param_sig_of(params: Option<&Arc<HashMap<String, Value>>>) -> Vec<(String, DataType)> {
    let Some(map) = params else {
        return Vec::new();
    };
    let mut sig: Vec<(String, DataType)> = map
        .iter()
        .map(|(k, v)| (k.clone(), v.data_type()))
        .collect();
    sig.sort_by(|a, b| a.0.cmp(&b.0));
    sig
}

/// `true` when the SELECT contains a subquery anywhere in its AST. The
/// planner freezes subqueries to *values* at plan time, so such plans
/// are single-execution and must not be cached.
fn select_has_subquery(sel: &SelectStmt) -> bool {
    sel.items.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => expr_has_subquery(expr),
        SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => false,
    }) || sel.where_clause.as_ref().is_some_and(expr_has_subquery)
        || sel.group_by.iter().any(expr_has_subquery)
        || sel.having.as_ref().is_some_and(expr_has_subquery)
        || sel.order_by.iter().any(|o| expr_has_subquery(&o.expr))
        || sel
            .union
            .as_ref()
            .is_some_and(|(_, next)| select_has_subquery(next))
}

fn expr_has_subquery(e: &Expr) -> bool {
    match e {
        Expr::Subquery(_) | Expr::InSubquery { .. } => true,
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            expr_has_subquery(expr)
        }
        Expr::Binary { lhs, rhs, .. } => expr_has_subquery(lhs) || expr_has_subquery(rhs),
        Expr::Between {
            expr, low, high, ..
        } => expr_has_subquery(expr) || expr_has_subquery(low) || expr_has_subquery(high),
        Expr::InList { expr, list, .. } => {
            expr_has_subquery(expr) || list.iter().any(expr_has_subquery)
        }
        Expr::Call { args, .. } => args.iter().any(expr_has_subquery),
        Expr::Like { expr, pattern, .. } => expr_has_subquery(expr) || expr_has_subquery(pattern),
        Expr::Case {
            operand,
            branches,
            else_,
        } => {
            operand.as_deref().is_some_and(expr_has_subquery)
                || branches
                    .iter()
                    .any(|(w, t)| expr_has_subquery(w) || expr_has_subquery(t))
                || else_.as_deref().is_some_and(expr_has_subquery)
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) | Expr::BoundValue(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Arc<Database> {
        Database::new()
    }

    fn ints(result: &QueryResult, col: usize) -> Vec<i64> {
        result
            .rows
            .iter()
            .map(|r| r[col].as_int().unwrap())
            .collect()
    }

    #[test]
    fn create_insert_select() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (id INT, name CHAR(20))").unwrap();
        let out = s
            .execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
            .unwrap();
        assert!(matches!(out, StatementOutcome::Affected(3)));
        let r = s
            .query("SELECT id, name FROM t WHERE id >= 2 ORDER BY id DESC")
            .unwrap();
        assert_eq!(ints(&r, 0), vec![3, 2]);
        assert_eq!(r.columns[1].0, "name");
    }

    #[test]
    fn select_without_from() {
        let db = db();
        let s = db.session();
        let r = s.query("SELECT 1 + 2 AS three, 'x'").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_int(), Some(3));
        assert_eq!(r.columns[0].0, "three");
    }

    #[test]
    fn wildcards_and_aliases() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        let r = s.query("SELECT * FROM t").unwrap();
        assert_eq!(r.columns.len(), 2);
        let r = s.query("SELECT x.b, x.a FROM t x").unwrap();
        assert_eq!(r.rows[0][0].as_int(), Some(10));
    }

    #[test]
    fn joins_comma_and_explicit() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE a (id INT, v CHAR(5))").unwrap();
        s.execute("CREATE TABLE b (id INT, w CHAR(5))").unwrap();
        s.execute("INSERT INTO a VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        s.execute("INSERT INTO b VALUES (2, 'q'), (3, 'r')")
            .unwrap();
        let r1 = s
            .query("SELECT a.v, b.w FROM a, b WHERE a.id = b.id")
            .unwrap();
        assert_eq!(r1.rows.len(), 1);
        assert_eq!(r1.rows[0][0].as_str(), Some("y"));
        let r2 = s
            .query("SELECT a.v, b.w FROM a JOIN b ON a.id = b.id")
            .unwrap();
        assert_eq!(r2.rows.len(), 1);
        // Cross join.
        let r3 = s.query("SELECT a.id FROM a, b").unwrap();
        assert_eq!(r3.rows.len(), 4);
    }

    #[test]
    fn group_by_and_having() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE sales (region CHAR(5), amount INT)")
            .unwrap();
        s.execute("INSERT INTO sales VALUES ('east', 10), ('east', 20), ('west', 5), ('west', 1)")
            .unwrap();
        let r = s
            .query(
                "SELECT region, SUM(amount), COUNT(*) FROM sales \
                 GROUP BY region HAVING SUM(amount) > 10 ORDER BY region",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_str(), Some("east"));
        assert_eq!(r.rows[0][1].as_int(), Some(30));
        assert_eq!(r.rows[0][2].as_int(), Some(2));
    }

    #[test]
    fn global_aggregate_on_empty_table() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        let r = s.query("SELECT COUNT(*), SUM(a), MIN(a) FROM t").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_int(), Some(0));
        assert_eq!(r.rows[0][1].as_int(), Some(0));
        assert!(r.rows[0][2].is_null());
    }

    #[test]
    fn aggregates_skip_nulls() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1), (NULL), (3)").unwrap();
        let r = s.query("SELECT COUNT(a), SUM(a), AVG(a) FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_int(), Some(2));
        assert_eq!(r.rows[0][1].as_int(), Some(4));
        assert_eq!(r.rows[0][2].as_float(), Some(2.0));
    }

    #[test]
    fn distinct_and_limit() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1), (1), (2), (2), (3)")
            .unwrap();
        let r = s.query("SELECT DISTINCT a FROM t ORDER BY a").unwrap();
        assert_eq!(ints(&r, 0), vec![1, 2, 3]);
        let r = s
            .query("SELECT DISTINCT a FROM t ORDER BY a LIMIT 2")
            .unwrap();
        assert_eq!(ints(&r, 0), vec![1, 2]);
    }

    #[test]
    fn order_by_hidden_column() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1, 3), (2, 1), (3, 2)")
            .unwrap();
        let r = s.query("SELECT a FROM t ORDER BY b").unwrap();
        assert_eq!(ints(&r, 0), vec![2, 3, 1]);
        assert_eq!(r.columns.len(), 1, "hidden sort column must be stripped");
    }

    #[test]
    fn update_and_delete() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1, 0), (2, 0), (3, 0)")
            .unwrap();
        let out = s.execute("UPDATE t SET b = a * 10 WHERE a >= 2").unwrap();
        assert!(matches!(out, StatementOutcome::Affected(2)));
        let r = s.query("SELECT b FROM t ORDER BY a").unwrap();
        assert_eq!(ints(&r, 0), vec![0, 20, 30]);
        let out = s.execute("DELETE FROM t WHERE b = 0").unwrap();
        assert!(matches!(out, StatementOutcome::Affected(1)));
        let r = s.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_int(), Some(2));
    }

    #[test]
    fn params_flow_through() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        s.execute_with_params("INSERT INTO t VALUES (:x)", &[("x", Value::Int(7))])
            .unwrap();
        let r = s
            .query_with_params("SELECT a FROM t WHERE a = :x", &[("x", Value::Int(7))])
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let err = s.query("SELECT a FROM t WHERE a = :missing").unwrap_err();
        assert!(matches!(err, DbError::MissingParam { .. }));
    }

    #[test]
    fn index_used_and_correct() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        for i in 0..100 {
            s.execute_with_params(
                "INSERT INTO t VALUES (:i, :j)",
                &[("i", Value::Int(i % 10)), ("j", Value::Int(i))],
            )
            .unwrap();
        }
        s.execute("CREATE INDEX ix_a ON t(a)").unwrap();
        let r = s.query("SELECT COUNT(*) FROM t WHERE a = 3").unwrap();
        assert_eq!(r.rows[0][0].as_int(), Some(10));
        // Plan shape: the scan becomes an index scan.
        db.with_tables(|pinned| {
            db.with_catalog(|cat| {
                let params = HashMap::new();
                let ctx = ExecCtx::new(0);
                let planner = Planner::new(cat, pinned, &params, ctx);
                let Statement::Select(sel) =
                    parse_statement("SELECT b FROM t WHERE a = 3").unwrap()
                else {
                    unreachable!()
                };
                let planned = planner.plan_select(&sel).unwrap();
                assert!(
                    planned.plan.describe().contains("ixscan"),
                    "{}",
                    planned.plan.describe()
                );
            })
        });
    }

    #[test]
    fn hash_join_plan_shape() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE a (id INT)").unwrap();
        s.execute("CREATE TABLE b (id INT)").unwrap();
        db.with_tables(|pinned| {
            db.with_catalog(|cat| {
                let params = HashMap::new();
                let ctx = ExecCtx::new(0);
                let planner = Planner::new(cat, pinned, &params, ctx);
                let Statement::Select(sel) =
                    parse_statement("SELECT a.id FROM a, b WHERE a.id = b.id").unwrap()
                else {
                    unreachable!()
                };
                let planned = planner.plan_select(&sel).unwrap();
                assert!(
                    planned.plan.describe().contains("hashjoin"),
                    "{}",
                    planned.plan.describe()
                );
            })
        });
    }

    #[test]
    fn drop_table() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        s.execute("DROP TABLE t").unwrap();
        assert!(s.query("SELECT * FROM t").is_err());
        s.execute("DROP TABLE IF EXISTS t").unwrap();
        assert!(s.execute("DROP TABLE t").is_err());
    }

    #[test]
    fn snapshot_round_trip() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT, b CHAR(5))").unwrap();
        s.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        s.execute("CREATE INDEX ix ON t(a)").unwrap();
        let snap = db.save_snapshot().unwrap();

        let db2 = Database::new();
        db2.load_snapshot(&snap).unwrap();
        let s2 = db2.session();
        let r = s2.query("SELECT b FROM t WHERE a = 2").unwrap();
        assert_eq!(r.rows[0][0].as_str(), Some("y"));
    }

    #[test]
    fn format_result_renders_table() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT, name CHAR(10))").unwrap();
        s.execute("INSERT INTO t VALUES (1, 'Showbiz')").unwrap();
        let r = s.query("SELECT * FROM t").unwrap();
        let text = s.format_result(&r);
        assert!(text.contains("Showbiz"));
        assert!(text.contains("| a "));
    }

    #[test]
    fn format_result_survives_degenerate_shapes() {
        let db = db();
        let s = db.session();
        // Zero columns, zero rows: still a (degenerate) table frame.
        let empty = QueryResult {
            columns: vec![],
            rows: vec![],
        };
        let text = s.format_result(&empty);
        assert_eq!(text, "+\n|\n+\n+\n");
        // Zero rows with columns: header only, no row lines.
        let headers_only = QueryResult {
            columns: vec![("a".to_owned(), DataType::Int)],
            rows: vec![],
        };
        let text = s.format_result(&headers_only);
        assert!(text.contains("| a |"));
        // Top rule, header, header rule, bottom rule — no row lines.
        assert_eq!(text.lines().count(), 4);
        // A malformed row wider than the header list must not panic;
        // the extra cells are dropped from the rendering.
        let lopsided = QueryResult {
            columns: vec![("a".to_owned(), DataType::Int)],
            rows: vec![vec![Value::Int(1), Value::Int(2), Value::Int(3)]],
        };
        let text = s.format_result(&lopsided);
        assert!(text.contains("| 1 |"));
        assert!(!text.contains('2'));
    }

    #[test]
    fn errors_surface() {
        let db = db();
        let s = db.session();
        assert!(matches!(
            s.execute("SELECT * FROM missing"),
            Err(DbError::NotFound { .. })
        ));
        s.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(matches!(
            s.execute("CREATE TABLE t (a INT)"),
            Err(DbError::AlreadyExists { .. })
        ));
        assert!(matches!(
            s.execute("INSERT INTO t VALUES (1, 2)"),
            Err(DbError::Constraint { .. })
        ));
        assert!(s.execute("SELECT nosuchfunc(a) FROM t").is_err());
        // Aggregates are rejected in WHERE.
        assert!(s.execute("SELECT a FROM t WHERE SUM(a) > 1").is_err());
        // Non-grouped column in grouped query.
        s.execute("CREATE TABLE g (k INT, v INT)").unwrap();
        assert!(s.execute("SELECT v FROM g GROUP BY k").is_err());
    }

    #[test]
    fn string_coerced_into_column_on_insert() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a FLOAT)").unwrap();
        // INT literal widens to FLOAT implicitly.
        s.execute("INSERT INTO t VALUES (3)").unwrap();
        let r = s.query("SELECT a FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_float(), Some(3.0));
    }

    #[test]
    fn order_by_alias() {
        let db = db();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        s.execute("INSERT INTO t VALUES (3), (1), (2)").unwrap();
        let r = s
            .query("SELECT a * 2 AS doubled FROM t ORDER BY doubled DESC")
            .unwrap();
        assert_eq!(ints(&r, 0), vec![6, 4, 2]);
    }
}
