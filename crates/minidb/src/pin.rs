//! Statement-scoped table pinning: the concurrency backbone.
//!
//! The [`Storage`](crate::storage::Storage) registry maps names to
//! [`SharedTable`] handles (`Arc<RwLock<Table>>`). A statement never
//! holds the registry lock while it runs; instead it
//!
//! 1. walks its AST under a *short* registry read lock, resolving every
//!    referenced table (and the tables referenced by any views it uses)
//!    into a [`TableSet`] — `Arc` handles plus the required access mode;
//! 2. releases the registry lock;
//! 3. [`pin`s](TableSet::pin) the set, acquiring per-table guards in
//!    **deterministic sorted-name order**, which makes multi-table
//!    statements deadlock-free: any two statements acquire their common
//!    tables in the same global order.
//!
//! The planner and executor then run against the pinned guard set
//! through the [`TableSource`] trait rather than against `&Storage`,
//! so an INSERT hammering table A never blocks a SELECT on table B.

use crate::error::{DbError, DbResult};
use crate::sql::ast::{Expr, InsertSource, SelectStmt, Statement};
use crate::sql::parse_statement;
use crate::storage::{SharedTable, Storage, Table, ViewDef};
use parking_lot::{RwLockReadGuard, RwLockWriteGuard};
use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// Read-only name resolution the planner and executor run against: a
/// statement's pinned tables, or any other fixed set of tables.
pub trait TableSource {
    /// The table `name` refers to, if pinned.
    fn table(&self, name: &str) -> DbResult<&Table>;
    /// The view definition `name` refers to, if any.
    fn view(&self, name: &str) -> Option<&ViewDef>;
}

/// Views nested deeper than this stop contributing tables to the set.
/// Their *definitions* are still recorded so the planner's own depth
/// guard (which fires at the same nesting level) reports the error.
const MAX_VIEW_DEPTH: usize = 16;

struct Entry {
    /// Lowercase lookup key (the registry's own key).
    key: String,
    shared: SharedTable,
    write: bool,
}

/// The tables one statement touches, resolved to shared handles but not
/// yet locked. Building a set requires only a registry read lock;
/// [`TableSet::pin`] then blocks on the per-table locks with the
/// registry lock already released.
pub struct TableSet {
    /// Sorted by `key` — the deterministic acquisition order.
    entries: Vec<Entry>,
    /// Referenced view definitions, cloned out of the registry so the
    /// planner can inline them without re-entering the registry lock.
    views: HashMap<String, ViewDef>,
}

impl TableSet {
    /// Resolves every table a statement references: FROM lists (of the
    /// statement, its subqueries, UNION arms, and the bodies of any
    /// views it names) as reads; INSERT/UPDATE/DELETE targets and
    /// CREATE INDEX tables as writes. Names that resolve to nothing are
    /// skipped — the planner reports `NotFound` with full context.
    pub fn for_statement(registry: &Storage, stmt: &Statement) -> TableSet {
        let mut c = Collector {
            registry,
            tables: BTreeMap::new(),
            views: HashMap::new(),
            depth: 0,
        };
        c.stmt(stmt);
        TableSet {
            entries: c
                .tables
                .into_iter()
                .map(|(key, (shared, write))| Entry { key, shared, write })
                .collect(),
            views: c.views,
        }
    }

    /// A set covering every table and view in the registry, all as
    /// reads — a whole-database read pin (snapshots, admin inspection).
    pub fn read_all(registry: &Storage) -> TableSet {
        TableSet {
            entries: registry
                .shared_tables_sorted()
                .into_iter()
                .map(|(key, shared)| Entry {
                    key,
                    shared,
                    write: false,
                })
                .collect(),
            views: registry.views_cloned(),
        }
    }

    /// Resolves an explicit list of lowercase table keys, all as reads —
    /// the re-pin path for a cached plan, which knows exactly which
    /// tables it touches. Unlike [`TableSet::for_statement`], a missing
    /// name is a hard `NotFound`: the cached plan *requires* the table.
    pub fn read_only(registry: &Storage, keys: &[String]) -> DbResult<TableSet> {
        let mut entries = Vec::with_capacity(keys.len());
        for key in keys {
            entries.push(Entry {
                key: key.clone(),
                shared: registry.shared_table(key)?,
                write: false,
            });
        }
        // `keys` comes from `table_keys()` and is already sorted, but a
        // cached plan's correctness must not hinge on the caller: sort.
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(TableSet {
            entries,
            views: HashMap::new(),
        })
    }

    /// The set's lowercase table keys, in sorted (acquisition) order.
    pub fn table_keys(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.key.clone()).collect()
    }

    /// `true` when the statement references at least one view.
    pub fn uses_views(&self) -> bool {
        !self.views.is_empty()
    }

    /// Number of tables in the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the statement touches no tables.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Acquires the per-table guards in sorted-name order, measuring the
    /// total time spent blocked on other statements' locks.
    pub fn pin(&self) -> PinnedTables<'_> {
        let t0 = Instant::now();
        let guards: Vec<(&str, Guard<'_>)> = self
            .entries
            .iter()
            .map(|e| {
                let g = if e.write {
                    Guard::Write(e.shared.write())
                } else {
                    Guard::Read(e.shared.read())
                };
                (e.key.as_str(), g)
            })
            .collect();
        PinnedTables {
            guards,
            views: &self.views,
            lock_wait: t0.elapsed(),
        }
    }
}

enum Guard<'a> {
    Read(RwLockReadGuard<'a, Table>),
    Write(RwLockWriteGuard<'a, Table>),
}

impl Guard<'_> {
    fn table(&self) -> &Table {
        match self {
            Guard::Read(g) => g,
            Guard::Write(g) => g,
        }
    }
}

/// The acquired guards of a [`TableSet`] — what a statement actually
/// executes against. Holding this pins exactly the touched tables;
/// every other table in the database stays free for other statements.
pub struct PinnedTables<'a> {
    /// Keyed by the set's lowercase keys, in sorted order.
    guards: Vec<(&'a str, Guard<'a>)>,
    views: &'a HashMap<String, ViewDef>,
    lock_wait: Duration,
}

impl PinnedTables<'_> {
    fn position(&self, name: &str) -> Option<usize> {
        let key = name.to_ascii_lowercase();
        self.guards
            .binary_search_by(|(k, _)| (*k).cmp(key.as_str()))
            .ok()
    }

    /// Mutable access to a write-pinned table. Errors if the table was
    /// not pinned (unknown name) or was pinned read-only (an engine
    /// bug: the collector marks every DML target as a write).
    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        match self.position(name) {
            Some(i) => match &mut self.guards[i].1 {
                Guard::Write(g) => Ok(&mut *g),
                Guard::Read(_) => Err(DbError::exec(format!("table {name} is pinned read-only"))),
            },
            None => Err(DbError::NotFound {
                kind: "table",
                name: name.to_owned(),
            }),
        }
    }

    /// Number of tables pinned.
    pub fn tables_pinned(&self) -> usize {
        self.guards.len()
    }

    /// Time spent blocked acquiring the guards.
    pub fn lock_wait(&self) -> Duration {
        self.lock_wait
    }
}

impl TableSource for PinnedTables<'_> {
    fn table(&self, name: &str) -> DbResult<&Table> {
        match self.position(name) {
            Some(i) => Ok(self.guards[i].1.table()),
            None => Err(DbError::NotFound {
                kind: "table",
                name: name.to_owned(),
            }),
        }
    }

    fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&name.to_ascii_lowercase())
    }
}

// ----- referenced-table collection ------------------------------------------

struct Collector<'a> {
    registry: &'a Storage,
    /// key -> (handle, needs write). `BTreeMap` keeps the sorted
    /// acquisition order for free.
    tables: BTreeMap<String, (SharedTable, bool)>,
    views: HashMap<String, ViewDef>,
    depth: usize,
}

impl Collector<'_> {
    fn touch(&mut self, name: &str, write: bool) {
        let key = name.to_ascii_lowercase();
        if let Ok(shared) = self.registry.shared_table(&key) {
            let entry = self.tables.entry(key).or_insert((shared, false));
            entry.1 |= write;
        } else if let Some(def) = self.registry.view(&key) {
            if self.views.contains_key(&key) {
                return;
            }
            let def = def.clone();
            let body = def.body_sql.clone();
            // Always record the definition (the planner must be able to
            // *see* an over-deep view to report its depth error), but
            // stop contributing tables past the depth bound.
            self.views.insert(key, def);
            if self.depth >= MAX_VIEW_DEPTH {
                return;
            }
            // A view's body reads its own base tables (and views).
            if let Ok(Statement::Select(sel)) = parse_statement(&body) {
                self.depth += 1;
                self.select(&sel);
                self.depth -= 1;
            }
        }
        // Unknown name: not an error here — the planner reports
        // NotFound with the proper "table or view" context.
    }

    fn stmt(&mut self, stmt: &Statement) {
        match stmt {
            Statement::Select(sel) => self.select(sel),
            Statement::Insert {
                table,
                columns: _,
                source,
            } => {
                self.touch(table, true);
                match source {
                    InsertSource::Values(rows) => {
                        for exprs in rows {
                            for e in exprs {
                                self.expr(e);
                            }
                        }
                    }
                    InsertSource::Query(sel) => self.select(sel),
                }
            }
            Statement::Update {
                table,
                sets,
                where_clause,
            } => {
                self.touch(table, true);
                for (_, e) in sets {
                    self.expr(e);
                }
                if let Some(w) = where_clause {
                    self.expr(w);
                }
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                self.touch(table, true);
                if let Some(w) = where_clause {
                    self.expr(w);
                }
            }
            Statement::CreateIndex { table, .. } => self.touch(table, true),
            Statement::Explain { inner, .. } => self.stmt(inner),
            Statement::CreateView { query, .. } => self.select(query),
            // Pure registry operations pin no tables.
            Statement::CreateTable { .. }
            | Statement::DropTable { .. }
            | Statement::DropView { .. }
            | Statement::ShowStats => {}
        }
    }

    fn select(&mut self, sel: &SelectStmt) {
        for tref in &sel.from {
            self.touch(&tref.table, false);
        }
        for item in &sel.items {
            if let crate::sql::ast::SelectItem::Expr { expr, .. } = item {
                self.expr(expr);
            }
        }
        if let Some(w) = &sel.where_clause {
            self.expr(w);
        }
        for e in &sel.group_by {
            self.expr(e);
        }
        if let Some(h) = &sel.having {
            self.expr(h);
        }
        for o in &sel.order_by {
            self.expr(&o.expr);
        }
        if let Some((_, next)) = &sel.union {
            self.select(next);
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Subquery(sub) => self.select(sub),
            Expr::InSubquery { expr, query, .. } => {
                self.expr(expr);
                self.select(query);
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                self.expr(expr)
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                self.expr(expr);
                self.expr(low);
                self.expr(high);
            }
            Expr::InList { expr, list, .. } => {
                self.expr(expr);
                for item in list {
                    self.expr(item);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                self.expr(expr);
                self.expr(pattern);
            }
            Expr::Case {
                operand,
                branches,
                else_,
            } => {
                if let Some(op) = operand {
                    self.expr(op);
                }
                for (w, t) in branches {
                    self.expr(w);
                    self.expr(t);
                }
                if let Some(els) = else_ {
                    self.expr(els);
                }
            }
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) | Expr::BoundValue(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{Column, TableSchema};
    use crate::types::DataType;

    fn registry_with(tables: &[&str]) -> Storage {
        let mut s = Storage::new();
        for name in tables {
            s.create_table(TableSchema {
                name: (*name).to_owned(),
                columns: vec![Column {
                    name: "v".into(),
                    ty: DataType::Int,
                }],
            })
            .unwrap();
        }
        s
    }

    fn set_for(registry: &Storage, sql: &str) -> TableSet {
        TableSet::for_statement(registry, &parse_statement(sql).unwrap())
    }

    fn keys(set: &TableSet) -> Vec<(&str, bool)> {
        set.entries
            .iter()
            .map(|e| (e.key.as_str(), e.write))
            .collect()
    }

    #[test]
    fn select_pins_from_tables_read_only_in_sorted_order() {
        let reg = registry_with(&["zeta", "Alpha", "mid"]);
        let set = set_for(&reg, "SELECT * FROM zeta, Alpha, mid");
        assert_eq!(
            keys(&set),
            vec![("alpha", false), ("mid", false), ("zeta", false)]
        );
    }

    #[test]
    fn dml_targets_pin_write_and_sources_pin_read() {
        let reg = registry_with(&["a", "b"]);
        let set = set_for(&reg, "INSERT INTO a SELECT v FROM b");
        assert_eq!(keys(&set), vec![("a", true), ("b", false)]);
        let set = set_for(&reg, "UPDATE b SET v = (SELECT MAX(v) FROM a)");
        assert_eq!(keys(&set), vec![("a", false), ("b", true)]);
        let set = set_for(&reg, "DELETE FROM a WHERE v IN (SELECT v FROM b)");
        assert_eq!(keys(&set), vec![("a", true), ("b", false)]);
    }

    #[test]
    fn self_referencing_insert_select_upgrades_to_one_write_pin() {
        let reg = registry_with(&["t"]);
        let set = set_for(&reg, "INSERT INTO t SELECT v + 1 FROM t");
        assert_eq!(keys(&set), vec![("t", true)]);
    }

    #[test]
    fn view_bodies_contribute_their_base_tables() {
        let mut reg = registry_with(&["base"]);
        reg.create_view(ViewDef {
            name: "V".into(),
            body_sql: "SELECT v FROM base".into(),
        })
        .unwrap();
        let set = set_for(&reg, "SELECT * FROM v");
        assert_eq!(keys(&set), vec![("base", false)]);
        assert!(set.views.contains_key("v"));
    }

    #[test]
    fn unknown_names_are_skipped_for_the_planner_to_report() {
        let reg = registry_with(&["a"]);
        let set = set_for(&reg, "SELECT * FROM a, missing");
        assert_eq!(keys(&set), vec![("a", false)]);
    }

    #[test]
    fn pinned_set_serves_tables_and_rejects_read_only_mutation() {
        let reg = registry_with(&["a", "b"]);
        let set = set_for(&reg, "INSERT INTO a SELECT v FROM b");
        let mut pinned = set.pin();
        assert_eq!(pinned.tables_pinned(), 2);
        assert_eq!(pinned.table("A").unwrap().schema.name, "a");
        assert!(pinned.table_mut("a").is_ok());
        assert!(pinned.table_mut("b").is_err(), "b is read-pinned");
        assert!(pinned.table("nope").is_err());
    }
}
