//! Statement-scoped table pinning: the concurrency backbone.
//!
//! The [`Storage`](crate::storage::Storage) registry maps names to
//! [`SharedTable`] handles (`Arc<TableCell>` — a live table plus its
//! MVCC version chain). A statement never holds the registry lock while
//! it runs; instead it
//!
//! 1. walks its AST under a *short* registry read lock, resolving every
//!    referenced table (and the tables referenced by any views it uses)
//!    into a [`TableSet`] — `Arc` handles plus the required access mode;
//! 2. releases the registry lock;
//! 3. [`pin`s](TableSet::pin) the set: **write** entries acquire their
//!    per-table write guards in deterministic sorted-name order
//!    (deadlock-free: any two writers acquire common tables in the same
//!    global order), while **read** entries resolve a published
//!    snapshot from the version chain and acquire *no lock at all* —
//!    a SELECT never blocks behind a writer, however long it runs.
//!
//! The planner and executor then run against the pinned set through the
//! [`TableSource`] trait rather than against `&Storage`.

use crate::error::{DbError, DbResult};
use crate::sql::ast::{Expr, InsertSource, SelectStmt, Statement};
use crate::sql::parse_statement;
use crate::storage::{SharedTable, Storage, Table, ViewDef};
use parking_lot::RwLockWriteGuard;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Read-only name resolution the planner and executor run against: a
/// statement's pinned tables, or any other fixed set of tables.
pub trait TableSource {
    /// The table `name` refers to, if pinned.
    fn table(&self, name: &str) -> DbResult<&Table>;
    /// The view definition `name` refers to, if any.
    fn view(&self, name: &str) -> Option<&ViewDef>;
}

/// Views nested deeper than this stop contributing tables to the set.
/// Their *definitions* are still recorded so the planner's own depth
/// guard (which fires at the same nesting level) reports the error.
const MAX_VIEW_DEPTH: usize = 16;

struct Entry {
    /// Lowercase lookup key (the registry's own key).
    key: String,
    shared: SharedTable,
    write: bool,
}

/// The tables one statement touches, resolved to shared handles but not
/// yet locked. Building a set requires only a registry read lock;
/// [`TableSet::pin`] then blocks on the per-table locks with the
/// registry lock already released.
pub struct TableSet {
    /// Sorted by `key` — the deterministic acquisition order.
    entries: Vec<Entry>,
    /// Referenced view definitions, cloned out of the registry so the
    /// planner can inline them without re-entering the registry lock.
    views: HashMap<String, ViewDef>,
}

impl TableSet {
    /// Resolves every table a statement references: FROM lists (of the
    /// statement, its subqueries, UNION arms, and the bodies of any
    /// views it names) as reads; INSERT/UPDATE/DELETE targets and
    /// CREATE INDEX tables as writes. Names that resolve to nothing are
    /// skipped — the planner reports `NotFound` with full context.
    pub fn for_statement(registry: &Storage, stmt: &Statement) -> TableSet {
        let mut c = Collector {
            registry,
            tables: BTreeMap::new(),
            views: HashMap::new(),
            depth: 0,
        };
        c.stmt(stmt);
        TableSet {
            entries: c
                .tables
                .into_iter()
                .map(|(key, (shared, write))| Entry { key, shared, write })
                .collect(),
            views: c.views,
        }
    }

    /// A set covering every table and view in the registry, all as
    /// reads — a whole-database read pin (snapshots, admin inspection).
    pub fn read_all(registry: &Storage) -> TableSet {
        TableSet {
            entries: registry
                .shared_tables_sorted()
                .into_iter()
                .map(|(key, shared)| Entry {
                    key,
                    shared,
                    write: false,
                })
                .collect(),
            views: registry.views_cloned(),
        }
    }

    /// Resolves an explicit list of lowercase table keys, all as reads —
    /// the re-pin path for a cached plan, which knows exactly which
    /// tables it touches. Unlike [`TableSet::for_statement`], a missing
    /// name is a hard `NotFound`: the cached plan *requires* the table.
    pub fn read_only(registry: &Storage, keys: &[String]) -> DbResult<TableSet> {
        let mut entries = Vec::with_capacity(keys.len());
        for key in keys {
            entries.push(Entry {
                key: key.clone(),
                shared: registry.shared_table(key)?,
                write: false,
            });
        }
        // `keys` comes from `table_keys()` and is already sorted, but a
        // cached plan's correctness must not hinge on the caller: sort.
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(TableSet {
            entries,
            views: HashMap::new(),
        })
    }

    /// The set's lowercase table keys, in sorted (acquisition) order.
    pub fn table_keys(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.key.clone()).collect()
    }

    /// `true` when the statement references at least one view.
    pub fn uses_views(&self) -> bool {
        !self.views.is_empty()
    }

    /// Number of tables in the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the statement touches no tables.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(lowercase key, shared handle)` pairs in sorted order — the
    /// transaction and `AS OF` paths resolve their own snapshots from
    /// these instead of pinning.
    pub(crate) fn entries(&self) -> impl Iterator<Item = (&str, &SharedTable)> {
        self.entries.iter().map(|e| (e.key.as_str(), &e.shared))
    }

    /// The referenced view definitions, keyed by lowercase name.
    pub(crate) fn views(&self) -> &HashMap<String, ViewDef> {
        &self.views
    }

    /// Pins the set at the newest committed state: write guards for
    /// write entries, the latest published snapshot for read entries.
    pub fn pin(&self) -> PinnedTables<'_> {
        self.pin_at(u64::MAX)
    }

    /// Pins the set against the snapshots visible at commit sequence
    /// `seq`. Write entries still acquire their write guards (in
    /// sorted-name order, measuring the time spent blocked); read
    /// entries resolve the newest version with sequence `<= seq` —
    /// lock-free — falling back to the latest version for a table
    /// created after `seq` (the statement resolved its name *now*, so
    /// showing it empty-at-birth would be stranger than showing it).
    pub fn pin_at(&self, seq: u64) -> PinnedTables<'_> {
        let t0 = Instant::now();
        let pins: Vec<Pin<'_>> = self
            .entries
            .iter()
            .map(|e| {
                if e.write {
                    Pin::Write(e.shared.write())
                } else {
                    Pin::Snap(
                        e.shared
                            .snapshot_at(seq)
                            .unwrap_or_else(|| e.shared.latest()),
                    )
                }
            })
            .collect();
        PinnedTables {
            set: self,
            pins,
            lock_wait: t0.elapsed(),
        }
    }
}

enum Pin<'a> {
    /// A held write guard on the live table.
    Write(RwLockWriteGuard<'a, Table>),
    /// A published immutable snapshot; no lock held.
    Snap(Arc<Table>),
}

impl Pin<'_> {
    fn table(&self) -> &Table {
        match self {
            Pin::Write(g) => g,
            Pin::Snap(t) => t,
        }
    }
}

/// The pinned state of a [`TableSet`] — what a statement actually
/// executes against. Write-pinned tables hold their guards (other
/// writers on those tables wait); read-pinned tables are immutable
/// snapshots, so concurrent writers — even on the same tables — are
/// never blocked and never observed mid-statement.
pub struct PinnedTables<'a> {
    set: &'a TableSet,
    /// Parallel to `set.entries` (sorted lowercase keys).
    pins: Vec<Pin<'a>>,
    lock_wait: Duration,
}

impl PinnedTables<'_> {
    fn position(&self, name: &str) -> Option<usize> {
        let key = name.to_ascii_lowercase();
        self.set
            .entries
            .binary_search_by(|e| e.key.as_str().cmp(key.as_str()))
            .ok()
    }

    /// Mutable access to a write-pinned table. Errors if the table was
    /// not pinned (unknown name) or was pinned read-only (an engine
    /// bug: the collector marks every DML target as a write).
    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        match self.position(name) {
            Some(i) => match &mut self.pins[i] {
                Pin::Write(g) => Ok(&mut *g),
                Pin::Snap(_) => Err(DbError::exec(format!("table {name} is pinned read-only"))),
            },
            None => Err(DbError::NotFound {
                kind: "table",
                name: name.to_owned(),
            }),
        }
    }

    /// Number of tables pinned (write guards plus snapshots).
    pub fn tables_pinned(&self) -> usize {
        self.pins.len()
    }

    /// Time spent blocked acquiring the write guards (always zero for a
    /// pure read pin: snapshots are lock-free).
    pub fn lock_wait(&self) -> Duration {
        self.lock_wait
    }

    /// `true` when at least one table is write-pinned.
    pub(crate) fn has_writes(&self) -> bool {
        self.pins.iter().any(|p| matches!(p, Pin::Write(_)))
    }

    /// Pre-clones a publishable snapshot of every write-pinned table,
    /// paired with its cell — the input
    /// [`Database::publish_prepared`](crate::session::Database) wants.
    /// Called with the guards still held (they are: they live in
    /// `self`), so the snapshots are exactly what this statement
    /// committed and version chains grow in commit order. Cheap: rows
    /// are `Arc`-shared, only slot/index structure is copied.
    pub(crate) fn prepared_publishes(&self) -> Vec<(SharedTable, Arc<Table>)> {
        self.pins
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                Pin::Write(g) => Some((
                    Arc::clone(&self.set.entries[i].shared),
                    Arc::new((**g).clone()),
                )),
                Pin::Snap(_) => None,
            })
            .collect()
    }
}

impl TableSource for PinnedTables<'_> {
    fn table(&self, name: &str) -> DbResult<&Table> {
        match self.position(name) {
            Some(i) => Ok(self.pins[i].table()),
            None => Err(DbError::NotFound {
                kind: "table",
                name: name.to_owned(),
            }),
        }
    }

    fn view(&self, name: &str) -> Option<&ViewDef> {
        self.set.views.get(&name.to_ascii_lowercase())
    }
}

/// A fixed set of resolved table snapshots plus view definitions — the
/// [`TableSource`] behind `AS OF` queries and in-transaction reads,
/// where visibility comes from a historical cut or a private workspace
/// rather than the current pin machinery.
pub struct FrozenTables {
    /// `(lowercase key, table)` pairs, sorted by key.
    tables: Vec<(String, Arc<Table>)>,
    views: HashMap<String, ViewDef>,
}

impl FrozenTables {
    /// Builds a source from `(lowercase key, snapshot)` pairs.
    pub(crate) fn new(
        mut tables: Vec<(String, Arc<Table>)>,
        views: HashMap<String, ViewDef>,
    ) -> FrozenTables {
        tables.sort_by(|a, b| a.0.cmp(&b.0));
        FrozenTables { tables, views }
    }
}

impl TableSource for FrozenTables {
    fn table(&self, name: &str) -> DbResult<&Table> {
        let key = name.to_ascii_lowercase();
        match self
            .tables
            .binary_search_by(|(k, _)| k.as_str().cmp(key.as_str()))
        {
            Ok(i) => Ok(&self.tables[i].1),
            Err(_) => Err(DbError::NotFound {
                kind: "table",
                name: name.to_owned(),
            }),
        }
    }

    fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&name.to_ascii_lowercase())
    }
}

// ----- referenced-table collection ------------------------------------------

struct Collector<'a> {
    registry: &'a Storage,
    /// key -> (handle, needs write). `BTreeMap` keeps the sorted
    /// acquisition order for free.
    tables: BTreeMap<String, (SharedTable, bool)>,
    views: HashMap<String, ViewDef>,
    depth: usize,
}

impl Collector<'_> {
    fn touch(&mut self, name: &str, write: bool) {
        let key = name.to_ascii_lowercase();
        if let Ok(shared) = self.registry.shared_table(&key) {
            let entry = self.tables.entry(key).or_insert((shared, false));
            entry.1 |= write;
        } else if let Some(def) = self.registry.view(&key) {
            if self.views.contains_key(&key) {
                return;
            }
            let def = def.clone();
            let body = def.body_sql.clone();
            // Always record the definition (the planner must be able to
            // *see* an over-deep view to report its depth error), but
            // stop contributing tables past the depth bound.
            self.views.insert(key, def);
            if self.depth >= MAX_VIEW_DEPTH {
                return;
            }
            // A view's body reads its own base tables (and views).
            if let Ok(Statement::Select(sel)) = parse_statement(&body) {
                self.depth += 1;
                self.select(&sel);
                self.depth -= 1;
            }
        }
        // Unknown name: not an error here — the planner reports
        // NotFound with the proper "table or view" context.
    }

    fn stmt(&mut self, stmt: &Statement) {
        match stmt {
            Statement::Select(sel) => self.select(sel),
            Statement::Insert {
                table,
                columns: _,
                source,
            } => {
                self.touch(table, true);
                match source {
                    InsertSource::Values(rows) => {
                        for exprs in rows {
                            for e in exprs {
                                self.expr(e);
                            }
                        }
                    }
                    InsertSource::Query(sel) => self.select(sel),
                }
            }
            Statement::Update {
                table,
                sets,
                where_clause,
            } => {
                self.touch(table, true);
                for (_, e) in sets {
                    self.expr(e);
                }
                if let Some(w) = where_clause {
                    self.expr(w);
                }
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                self.touch(table, true);
                if let Some(w) = where_clause {
                    self.expr(w);
                }
            }
            Statement::CreateIndex { table, .. } => self.touch(table, true),
            Statement::Explain { inner, .. } => self.stmt(inner),
            Statement::CreateView { query, .. } => self.select(query),
            // Pure registry/session operations pin no tables.
            Statement::CreateTable { .. }
            | Statement::DropTable { .. }
            | Statement::DropView { .. }
            | Statement::ShowStats
            | Statement::Begin
            | Statement::Commit
            | Statement::Rollback => {}
        }
    }

    fn select(&mut self, sel: &SelectStmt) {
        for tref in &sel.from {
            self.touch(&tref.table, false);
        }
        for item in &sel.items {
            if let crate::sql::ast::SelectItem::Expr { expr, .. } = item {
                self.expr(expr);
            }
        }
        if let Some(w) = &sel.where_clause {
            self.expr(w);
        }
        for e in &sel.group_by {
            self.expr(e);
        }
        if let Some(h) = &sel.having {
            self.expr(h);
        }
        for o in &sel.order_by {
            self.expr(&o.expr);
        }
        if let Some((_, next)) = &sel.union {
            self.select(next);
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Subquery(sub) => self.select(sub),
            Expr::InSubquery { expr, query, .. } => {
                self.expr(expr);
                self.select(query);
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                self.expr(expr)
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                self.expr(expr);
                self.expr(low);
                self.expr(high);
            }
            Expr::InList { expr, list, .. } => {
                self.expr(expr);
                for item in list {
                    self.expr(item);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                self.expr(expr);
                self.expr(pattern);
            }
            Expr::Case {
                operand,
                branches,
                else_,
            } => {
                if let Some(op) = operand {
                    self.expr(op);
                }
                for (w, t) in branches {
                    self.expr(w);
                    self.expr(t);
                }
                if let Some(els) = else_ {
                    self.expr(els);
                }
            }
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) | Expr::BoundValue(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{Column, TableSchema};
    use crate::types::DataType;

    fn registry_with(tables: &[&str]) -> Storage {
        let mut s = Storage::new();
        for name in tables {
            s.create_table(TableSchema {
                name: (*name).to_owned(),
                columns: vec![Column {
                    name: "v".into(),
                    ty: DataType::Int,
                }],
            })
            .unwrap();
        }
        s
    }

    fn set_for(registry: &Storage, sql: &str) -> TableSet {
        TableSet::for_statement(registry, &parse_statement(sql).unwrap())
    }

    fn keys(set: &TableSet) -> Vec<(&str, bool)> {
        set.entries
            .iter()
            .map(|e| (e.key.as_str(), e.write))
            .collect()
    }

    #[test]
    fn select_pins_from_tables_read_only_in_sorted_order() {
        let reg = registry_with(&["zeta", "Alpha", "mid"]);
        let set = set_for(&reg, "SELECT * FROM zeta, Alpha, mid");
        assert_eq!(
            keys(&set),
            vec![("alpha", false), ("mid", false), ("zeta", false)]
        );
    }

    #[test]
    fn dml_targets_pin_write_and_sources_pin_read() {
        let reg = registry_with(&["a", "b"]);
        let set = set_for(&reg, "INSERT INTO a SELECT v FROM b");
        assert_eq!(keys(&set), vec![("a", true), ("b", false)]);
        let set = set_for(&reg, "UPDATE b SET v = (SELECT MAX(v) FROM a)");
        assert_eq!(keys(&set), vec![("a", false), ("b", true)]);
        let set = set_for(&reg, "DELETE FROM a WHERE v IN (SELECT v FROM b)");
        assert_eq!(keys(&set), vec![("a", true), ("b", false)]);
    }

    #[test]
    fn self_referencing_insert_select_upgrades_to_one_write_pin() {
        let reg = registry_with(&["t"]);
        let set = set_for(&reg, "INSERT INTO t SELECT v + 1 FROM t");
        assert_eq!(keys(&set), vec![("t", true)]);
    }

    #[test]
    fn view_bodies_contribute_their_base_tables() {
        let mut reg = registry_with(&["base"]);
        reg.create_view(ViewDef {
            name: "V".into(),
            body_sql: "SELECT v FROM base".into(),
        })
        .unwrap();
        let set = set_for(&reg, "SELECT * FROM v");
        assert_eq!(keys(&set), vec![("base", false)]);
        assert!(set.views.contains_key("v"));
    }

    #[test]
    fn unknown_names_are_skipped_for_the_planner_to_report() {
        let reg = registry_with(&["a"]);
        let set = set_for(&reg, "SELECT * FROM a, missing");
        assert_eq!(keys(&set), vec![("a", false)]);
    }

    #[test]
    fn pinned_set_serves_tables_and_rejects_read_only_mutation() {
        let reg = registry_with(&["a", "b"]);
        let set = set_for(&reg, "INSERT INTO a SELECT v FROM b");
        let mut pinned = set.pin();
        assert_eq!(pinned.tables_pinned(), 2);
        assert_eq!(pinned.table("A").unwrap().schema.name, "a");
        assert!(pinned.table_mut("a").is_ok());
        assert!(pinned.table_mut("b").is_err(), "b is read-pinned");
        assert!(pinned.table("nope").is_err());
    }
}
