//! The catalog: registries for types, routines, casts, operators and
//! aggregates, plus the DataBlade-style [`Blade`] extension trait.
//!
//! This is the extensibility surface the paper relies on: "Once the TIP
//! DataBlade is installed in Informix, TIP datatypes and routines become
//! available to users as if they were built into the DBMS" (§1). A blade
//! registers opaque types (with text and binary I/O and comparison
//! support), scalar routines, casts (implicit or explicit), operator
//! overloads, and aggregates; the binder then resolves SQL expressions
//! against these registries exactly as it does for built-ins.

use crate::error::{DbError, DbResult};
use crate::types::{DataType, UdtId};
use crate::value::{UdtValue, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Per-statement evaluation context handed to every routine. The engine
/// freezes the transaction time once per statement, which is what gives
/// `NOW` its paper semantics. It also carries the statement's named
/// parameters, so a cached plan containing unresolved
/// [`Param`](crate::binder::BoundKind::Param) slots can be re-executed
/// with fresh values without re-binding.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    /// Statement (transaction) time as Unix seconds.
    pub txn_time_unix: i64,
    /// Named parameter values (keys lowercased), shared so cloning the
    /// context stays cheap. `None` when the statement has no parameters.
    params: Option<Arc<HashMap<String, Value>>>,
}

impl ExecCtx {
    /// A context with no parameters.
    pub fn new(txn_time_unix: i64) -> ExecCtx {
        ExecCtx {
            txn_time_unix,
            params: None,
        }
    }

    /// A context carrying named parameter values (keys must already be
    /// lowercased).
    pub fn with_params(txn_time_unix: i64, params: Arc<HashMap<String, Value>>) -> ExecCtx {
        ExecCtx {
            txn_time_unix,
            params: Some(params),
        }
    }

    /// Looks up a parameter by (lowercase) name.
    pub fn param(&self, name: &str) -> Option<&Value> {
        self.params.as_ref()?.get(name)
    }
}

/// Implementation of a scalar routine or operator.
pub type ScalarFnImpl = Arc<dyn Fn(&ExecCtx, &[Value]) -> DbResult<Value> + Send + Sync>;

/// Batch (vectorized) implementation of a scalar routine or operator:
/// evaluates one call over the selected lanes of a batch's argument
/// vectors and returns the result vector. Kernels own strict-NULL
/// handling per lane and must only touch selected lanes (a lane filtered
/// out upstream must not be able to raise an error).
pub type BatchFnImpl = Arc<
    dyn Fn(
            &ExecCtx,
            &[crate::exec::Vector],
            &crate::exec::Bitmap,
            usize,
        ) -> DbResult<crate::exec::Vector>
        + Send
        + Sync,
>;

/// Implementation of a cast.
pub type CastFnImpl = Arc<dyn Fn(&ExecCtx, &Value) -> DbResult<Value> + Send + Sync>;

/// Text-input support function of a UDT.
pub type UdtParseFn = Arc<dyn Fn(&str) -> DbResult<UdtValue> + Send + Sync>;

/// Text-output support function of a UDT.
pub type UdtDisplayFn = Arc<dyn Fn(&UdtValue) -> String + Send + Sync>;

/// Binary-send support function of a UDT.
pub type UdtEncodeFn = Arc<dyn Fn(&UdtValue, &mut Vec<u8>) + Send + Sync>;

/// Binary-receive support function of a UDT.
pub type UdtDecodeFn = Arc<dyn Fn(&mut &[u8]) -> DbResult<UdtValue> + Send + Sync>;

/// Interval-bounds support function of a UDT: conservative `[lo, hi]`
/// bounds of the value on some one-dimensional axis (for TIP, raw chronon
/// seconds; `NOW`-relative endpoints map to the axis extremes). Returning
/// `None` means the value covers nothing (e.g. an empty Element). Types
/// providing this function get interval indexes from `CREATE INDEX`,
/// accelerating `overlaps`-style predicates — the "new index" DataBlade
/// capability of the paper's reference [Bliujute et al., ICDE 1999].
pub type UdtIntervalKeyFn = Arc<dyn Fn(&UdtValue) -> Option<(i64, i64)> + Send + Sync>;

/// Support functions for an opaque user-defined type — the minidb
/// analogue of a DataBlade opaque-type definition.
pub struct UdtTypeDef {
    /// Registered id.
    pub id: UdtId,
    /// Canonical (display) name, e.g. `"Element"`.
    pub name: String,
    /// Text input: parse a SQL string literal into a value.
    pub parse: UdtParseFn,
    /// Text output.
    pub display: UdtDisplayFn,
    /// Binary send (storage/wire format).
    pub encode: UdtEncodeFn,
    /// Binary receive.
    pub decode: UdtDecodeFn,
    /// Whether the type has a meaningful total order (enables ORDER BY,
    /// MIN/MAX via comparison, and B-tree indexing).
    pub ordered: bool,
    /// Optional interval-bounds support function; see [`UdtIntervalKeyFn`].
    pub interval_key: Option<UdtIntervalKeyFn>,
}

impl fmt::Debug for UdtTypeDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "UdtTypeDef({} = #{}, ordered: {})",
            self.name, self.id.0, self.ordered
        )
    }
}

/// One overload of a scalar routine.
#[derive(Clone)]
pub struct FunctionOverload {
    /// Parameter types.
    pub params: Vec<DataType>,
    /// Return type.
    pub ret: DataType,
    /// `true` when the result depends on the transaction time — such
    /// expressions are never constant-folded.
    pub now_dependent: bool,
    /// The implementation. Routines are *strict*: the engine returns
    /// `NULL` without calling the routine when any argument is `NULL`.
    pub f: ScalarFnImpl,
}

impl fmt::Debug for FunctionOverload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FunctionOverload({:?} -> {:?})", self.params, self.ret)
    }
}

/// A binary operator symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Concat,
}

impl BinaryOp {
    /// The SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Concat => "||",
        }
    }

    /// `true` for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }
}

/// One overload of a binary operator.
#[derive(Clone)]
pub struct OperatorOverload {
    pub lhs: DataType,
    pub rhs: DataType,
    pub ret: DataType,
    pub now_dependent: bool,
    /// Called with exactly two arguments `[lhs, rhs]`.
    pub f: ScalarFnImpl,
}

impl fmt::Debug for OperatorOverload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OperatorOverload({:?}, {:?} -> {:?})",
            self.lhs, self.rhs, self.ret
        )
    }
}

/// A registered cast between two types.
#[derive(Clone)]
pub struct CastDef {
    /// Implicit casts are inserted automatically during overload
    /// resolution and on INSERT/UPDATE; explicit casts require `::` or
    /// `CAST`.
    pub implicit: bool,
    pub now_dependent: bool,
    pub ret: DataType,
    pub f: CastFnImpl,
}

impl fmt::Debug for CastDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CastDef(implicit: {}, -> {:?})", self.implicit, self.ret)
    }
}

/// Running state of one aggregate over one group.
pub trait AggregateState: Send {
    /// Folds one (non-NULL) input value.
    fn step(&mut self, ctx: &ExecCtx, v: &Value) -> DbResult<()>;
    /// Produces the aggregate result.
    fn finish(self: Box<Self>, ctx: &ExecCtx) -> DbResult<Value>;
}

/// One overload of an aggregate function.
#[derive(Clone)]
pub struct AggregateOverload {
    pub param: DataType,
    pub ret: DataType,
    /// Creates a fresh state per group.
    pub factory: Arc<dyn Fn() -> Box<dyn AggregateState> + Send + Sync>,
}

impl fmt::Debug for AggregateOverload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AggregateOverload({:?} -> {:?})", self.param, self.ret)
    }
}

/// An installable extension package (the analogue of a DataBlade module).
pub trait Blade {
    /// Human-readable blade name (e.g. `"TIP"`).
    fn name(&self) -> &str;
    /// Version string.
    fn version(&self) -> &str;
    /// Registers everything the blade provides into the catalog.
    fn register(&self, catalog: &mut Catalog) -> DbResult<()>;
}

/// Record of an installed blade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BladeInfo {
    pub name: String,
    pub version: String,
}

/// How a candidate parameter accepts an argument type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArgMatch {
    Exact,
    NullLiteral,
    Implicit,
}

/// The per-database catalog.
#[derive(Default)]
pub struct Catalog {
    types: Vec<UdtTypeDef>,
    types_by_name: HashMap<String, UdtId>,
    functions: HashMap<String, Vec<FunctionOverload>>,
    operators: HashMap<BinaryOp, Vec<OperatorOverload>>,
    casts: HashMap<(DataType, DataType), CastDef>,
    aggregates: HashMap<String, Vec<AggregateOverload>>,
    blades: Vec<BladeInfo>,
    /// Batch kernels, keyed by (lowercased name, overload parameter
    /// types). An overload without an entry forces the row path.
    fn_batch: HashMap<(String, Vec<DataType>), BatchFnImpl>,
    /// Batch kernels for operator overloads, keyed by (op, lhs, rhs).
    op_batch: HashMap<(BinaryOp, DataType, DataType), BatchFnImpl>,
}

impl Catalog {
    /// Creates an empty catalog (no built-ins; see
    /// [`builtin::install`](crate::builtin::install)).
    pub fn new() -> Catalog {
        Catalog::default()
    }

    // ----- types ---------------------------------------------------------

    /// The id the *next* registered type will receive. Blades use this
    /// to capture the id inside the type's support-function closures
    /// before calling [`Catalog::register_type`].
    pub fn next_type_id(&self) -> UdtId {
        UdtId(self.types.len() as u32)
    }

    /// Registers an opaque type; the definition's `id` field is assigned
    /// by the catalog and returned.
    pub fn register_type(&mut self, mut def: UdtTypeDef) -> DbResult<UdtId> {
        let key = def.name.to_ascii_lowercase();
        if self.types_by_name.contains_key(&key) {
            return Err(DbError::AlreadyExists {
                kind: "type",
                name: def.name.clone(),
            });
        }
        let id = UdtId(self.types.len() as u32);
        def.id = id;
        self.types_by_name.insert(key, id);
        self.types.push(def);
        Ok(id)
    }

    /// Looks up a type definition by id.
    pub fn type_def(&self, id: UdtId) -> DbResult<&UdtTypeDef> {
        self.types
            .get(id.0 as usize)
            .ok_or_else(|| DbError::NotFound {
                kind: "type",
                name: format!("#{}", id.0),
            })
    }

    /// Resolves a type *name* (as written in DDL or a cast) to a
    /// `DataType`, covering both built-ins and registered UDTs.
    pub fn lookup_type_name(&self, name: &str) -> DbResult<DataType> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "int" | "integer" | "bigint" | "smallint" => Ok(DataType::Int),
            "float" | "double" | "real" | "double precision" => Ok(DataType::Float),
            "char" | "varchar" | "text" | "string" => Ok(DataType::Str),
            "boolean" | "bool" => Ok(DataType::Bool),
            _ => self
                .types_by_name
                .get(&lower)
                .map(|&id| DataType::Udt(id))
                .ok_or(DbError::NotFound {
                    kind: "type",
                    name: name.to_owned(),
                }),
        }
    }

    /// The display name of a type.
    pub fn type_name(&self, ty: DataType) -> String {
        match ty {
            DataType::Udt(id) => self
                .type_def(id)
                .map(|d| d.name.clone())
                .unwrap_or_else(|_| ty.to_string()),
            other => other.to_string(),
        }
    }

    /// Renders a value as text, using the UDT's output function when
    /// applicable.
    pub fn display_value(&self, v: &Value) -> String {
        match v {
            Value::Null => "NULL".to_owned(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Str(s) => s.clone(),
            Value::Udt(u) => match self.type_def(u.type_id()) {
                Ok(def) => (def.display)(u),
                Err(_) => format!("{u:?}"),
            },
        }
    }

    /// `true` when values of the type have a meaningful total order.
    pub fn is_ordered(&self, ty: DataType) -> bool {
        match ty {
            DataType::Udt(id) => self.type_def(id).map(|d| d.ordered).unwrap_or(false),
            DataType::Null => false,
            _ => true,
        }
    }

    // ----- routines ------------------------------------------------------

    /// Registers one overload of a scalar routine.
    pub fn register_function(&mut self, name: &str, ov: FunctionOverload) -> DbResult<()> {
        let key = name.to_ascii_lowercase();
        let list = self.functions.entry(key).or_default();
        if list.iter().any(|o| o.params == ov.params) {
            return Err(DbError::AlreadyExists {
                kind: "function overload",
                name: format!("{name}({:?})", ov.params),
            });
        }
        list.push(ov);
        Ok(())
    }

    /// Registers one overload of a binary operator.
    pub fn register_operator(&mut self, op: BinaryOp, ov: OperatorOverload) -> DbResult<()> {
        let list = self.operators.entry(op).or_default();
        if list.iter().any(|o| o.lhs == ov.lhs && o.rhs == ov.rhs) {
            return Err(DbError::AlreadyExists {
                kind: "operator overload",
                name: format!("{} {} {}", ov.lhs, op.symbol(), ov.rhs),
            });
        }
        list.push(ov);
        Ok(())
    }

    /// Attaches (or replaces) a batch kernel for the routine overload
    /// with exactly these parameter types. The overload itself need not
    /// exist yet; binding only consults kernels for overloads it
    /// resolved.
    pub fn register_function_batch(&mut self, name: &str, params: Vec<DataType>, k: BatchFnImpl) {
        self.fn_batch.insert((name.to_ascii_lowercase(), params), k);
    }

    /// Attaches (or replaces) a batch kernel for an operator overload.
    pub fn register_operator_batch(
        &mut self,
        op: BinaryOp,
        lhs: DataType,
        rhs: DataType,
        k: BatchFnImpl,
    ) {
        self.op_batch.insert((op, lhs, rhs), k);
    }

    /// The batch kernel for a routine overload, if one is registered.
    /// `params` must be the *overload's* parameter types (post overload
    /// resolution), not the call-site argument types.
    pub fn function_batch_kernel(&self, name: &str, params: &[DataType]) -> Option<BatchFnImpl> {
        self.fn_batch
            .get(&(name.to_ascii_lowercase(), params.to_vec()))
            .cloned()
    }

    /// The batch kernel for an operator overload, if one is registered.
    pub fn operator_batch_kernel(
        &self,
        op: BinaryOp,
        lhs: DataType,
        rhs: DataType,
    ) -> Option<BatchFnImpl> {
        self.op_batch.get(&(op, lhs, rhs)).cloned()
    }

    /// Attaches an elementwise batch kernel to every routine and
    /// operator overload that doesn't already have one. Called for the
    /// built-ins at install time; blades opt in per routine instead, so
    /// a UDT routine without an explicit kernel keeps the row path.
    pub fn vectorize_all_scalars(&mut self) {
        let mut fns = Vec::new();
        for (name, ovs) in &self.functions {
            for ov in ovs {
                let key = (name.clone(), ov.params.clone());
                if !self.fn_batch.contains_key(&key) {
                    fns.push((key, ov.f.clone()));
                }
            }
        }
        for (key, f) in fns {
            self.fn_batch.insert(key, crate::exec::elementwise(f));
        }
        let mut ops = Vec::new();
        for (op, ovs) in &self.operators {
            for ov in ovs {
                let key = (*op, ov.lhs, ov.rhs);
                if !self.op_batch.contains_key(&key) {
                    ops.push((key, ov.f.clone()));
                }
            }
        }
        for (key, f) in ops {
            self.op_batch.insert(key, crate::exec::elementwise(f));
        }
    }

    /// Registers a cast.
    pub fn register_cast(&mut self, from: DataType, to: DataType, def: CastDef) -> DbResult<()> {
        if self.casts.contains_key(&(from, to)) {
            return Err(DbError::AlreadyExists {
                kind: "cast",
                name: format!("{from} -> {to}"),
            });
        }
        self.casts.insert((from, to), def);
        Ok(())
    }

    /// Registers one overload of an aggregate.
    pub fn register_aggregate(&mut self, name: &str, ov: AggregateOverload) -> DbResult<()> {
        let key = name.to_ascii_lowercase();
        let list = self.aggregates.entry(key).or_default();
        if list.iter().any(|o| o.param == ov.param) {
            return Err(DbError::AlreadyExists {
                kind: "aggregate overload",
                name: format!("{name}({})", ov.param),
            });
        }
        list.push(ov);
        Ok(())
    }

    /// Installs a blade, recording it in the catalog.
    pub fn install_blade(&mut self, blade: &dyn Blade) -> DbResult<()> {
        if self.blades.iter().any(|b| b.name == blade.name()) {
            return Err(DbError::AlreadyExists {
                kind: "blade",
                name: blade.name().to_owned(),
            });
        }
        blade.register(self)?;
        self.blades.push(BladeInfo {
            name: blade.name().to_owned(),
            version: blade.version().to_owned(),
        });
        Ok(())
    }

    /// The installed blades.
    pub fn blades(&self) -> &[BladeInfo] {
        &self.blades
    }

    // ----- resolution ----------------------------------------------------

    fn match_arg(&self, arg: DataType, param: DataType) -> Option<ArgMatch> {
        if arg == param {
            Some(ArgMatch::Exact)
        } else if arg == DataType::Null {
            Some(ArgMatch::NullLiteral)
        } else if self.casts.get(&(arg, param)).is_some_and(|c| c.implicit) {
            Some(ArgMatch::Implicit)
        } else {
            None
        }
    }

    fn pick_best<'a, T>(
        &self,
        what: String,
        args: &[DataType],
        candidates: impl Iterator<Item = (&'a T, Vec<ArgMatch>, Vec<DataType>)>,
    ) -> DbResult<&'a T> {
        // Lower score = better. Exact matches are free, NULL literals
        // cheap, implicit casts expensive.
        let mut best: Vec<(&T, Vec<DataType>)> = Vec::new();
        let mut best_score = usize::MAX;
        for (cand, matches, params) in candidates {
            let score: usize = matches
                .iter()
                .map(|m| match m {
                    ArgMatch::Exact => 0,
                    ArgMatch::NullLiteral => 1,
                    ArgMatch::Implicit => 3,
                })
                .sum();
            match score.cmp(&best_score) {
                std::cmp::Ordering::Less => {
                    best_score = score;
                    best = vec![(cand, params)];
                }
                std::cmp::Ordering::Equal => best.push((cand, params)),
                std::cmp::Ordering::Greater => {}
            }
        }
        if best.len() > 1 {
            // PostgreSQL-style tiebreak for NULL literals: prefer the
            // candidate whose NULL-matched parameters share a type with
            // some non-NULL argument (`1 + NULL` resolves to INT + INT).
            let known: Vec<DataType> = args
                .iter()
                .copied()
                .filter(|t| *t != DataType::Null)
                .collect();
            let affinity = |params: &[DataType]| {
                args.iter()
                    .zip(params)
                    .filter(|(a, p)| **a == DataType::Null && known.contains(p))
                    .count()
            };
            let max_aff = best.iter().map(|(_, p)| affinity(p)).max().unwrap_or(0);
            best.retain(|(_, p)| affinity(p) == max_aff);
        }
        match best.len() {
            0 => Err(DbError::NoOverload { what }),
            1 => Ok(best[0].0),
            _ => Err(DbError::AmbiguousOverload { what }),
        }
    }

    /// Resolves a routine call against the registered overloads,
    /// considering implicit casts. Returns the chosen overload.
    pub fn resolve_function(&self, name: &str, args: &[DataType]) -> DbResult<&FunctionOverload> {
        let key = name.to_ascii_lowercase();
        let what = format!(
            "{name}({})",
            args.iter()
                .map(|t| self.type_name(*t))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let Some(list) = self.functions.get(&key) else {
            return Err(DbError::NoOverload { what });
        };
        let candidates = list.iter().filter_map(|ov| {
            if ov.params.len() != args.len() {
                return None;
            }
            let ms: Option<Vec<ArgMatch>> = args
                .iter()
                .zip(&ov.params)
                .map(|(&a, &p)| self.match_arg(a, p))
                .collect();
            ms.map(|ms| (ov, ms, ov.params.clone()))
        });
        self.pick_best(what, args, candidates)
    }

    /// `true` when a routine with this (lowercased) name exists at all.
    pub fn has_function(&self, name: &str) -> bool {
        self.functions.contains_key(&name.to_ascii_lowercase())
    }

    /// Resolves a binary operator application.
    pub fn resolve_operator(
        &self,
        op: BinaryOp,
        lhs: DataType,
        rhs: DataType,
    ) -> DbResult<&OperatorOverload> {
        let what = format!(
            "{} {} {}",
            self.type_name(lhs),
            op.symbol(),
            self.type_name(rhs)
        );
        let Some(list) = self.operators.get(&op) else {
            return Err(DbError::NoOverload { what });
        };
        let candidates = list.iter().filter_map(|ov| {
            let l = self.match_arg(lhs, ov.lhs)?;
            let r = self.match_arg(rhs, ov.rhs)?;
            Some((ov, vec![l, r], vec![ov.lhs, ov.rhs]))
        });
        self.pick_best(what, &[lhs, rhs], candidates)
    }

    /// Finds a cast; `explicit_ok` selects whether explicit-only casts
    /// are acceptable (true for `::`/`CAST`, false for automatic
    /// coercion).
    pub fn find_cast(&self, from: DataType, to: DataType, explicit_ok: bool) -> Option<&CastDef> {
        self.casts
            .get(&(from, to))
            .filter(|c| explicit_ok || c.implicit)
    }

    /// Resolves an aggregate call.
    pub fn resolve_aggregate(&self, name: &str, arg: DataType) -> DbResult<&AggregateOverload> {
        let key = name.to_ascii_lowercase();
        let what = format!("{name}({})", self.type_name(arg));
        let Some(list) = self.aggregates.get(&key) else {
            return Err(DbError::NoOverload { what });
        };
        let candidates = list.iter().filter_map(|ov| {
            self.match_arg(arg, ov.param)
                .map(|m| (ov, vec![m], vec![ov.param]))
        });
        self.pick_best(what, &[arg], candidates)
    }

    /// `true` when an aggregate with this name exists (used by the binder
    /// to distinguish aggregate calls from scalar calls).
    pub fn has_aggregate(&self, name: &str) -> bool {
        self.aggregates.contains_key(&name.to_ascii_lowercase())
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog")
            .field("types", &self.types.len())
            .field("functions", &self.functions.len())
            .field(
                "operators",
                &self.operators.values().map(Vec::len).sum::<usize>(),
            )
            .field("casts", &self.casts.len())
            .field("aggregates", &self.aggregates.len())
            .field("blades", &self.blades)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_fn(ret: Value) -> ScalarFnImpl {
        Arc::new(move |_, _| Ok(ret.clone()))
    }

    fn simple_overload(params: Vec<DataType>, ret: DataType) -> FunctionOverload {
        FunctionOverload {
            params,
            ret,
            now_dependent: false,
            f: dummy_fn(Value::Null),
        }
    }

    #[test]
    fn function_overload_resolution_prefers_exact() {
        let mut cat = Catalog::new();
        cat.register_function("f", simple_overload(vec![DataType::Int], DataType::Int))
            .unwrap();
        cat.register_function("f", simple_overload(vec![DataType::Float], DataType::Float))
            .unwrap();
        // Implicit Int -> Float cast.
        cat.register_cast(
            DataType::Int,
            DataType::Float,
            CastDef {
                implicit: true,
                now_dependent: false,
                ret: DataType::Float,
                f: Arc::new(|_, v| Ok(Value::Float(v.as_int().unwrap() as f64))),
            },
        )
        .unwrap();
        let ov = cat.resolve_function("f", &[DataType::Int]).unwrap();
        assert_eq!(ov.ret, DataType::Int);
        let ov = cat.resolve_function("F", &[DataType::Float]).unwrap();
        assert_eq!(ov.ret, DataType::Float);
        assert!(cat.resolve_function("f", &[DataType::Str]).is_err());
        assert!(cat.resolve_function("g", &[DataType::Int]).is_err());
    }

    #[test]
    fn implicit_cast_enables_resolution() {
        let mut cat = Catalog::new();
        cat.register_function("g", simple_overload(vec![DataType::Float], DataType::Float))
            .unwrap();
        assert!(cat.resolve_function("g", &[DataType::Int]).is_err());
        cat.register_cast(
            DataType::Int,
            DataType::Float,
            CastDef {
                implicit: true,
                now_dependent: false,
                ret: DataType::Float,
                f: Arc::new(|_, v| Ok(Value::Float(v.as_int().unwrap() as f64))),
            },
        )
        .unwrap();
        assert!(cat.resolve_function("g", &[DataType::Int]).is_ok());
    }

    #[test]
    fn explicit_cast_not_used_implicitly() {
        let mut cat = Catalog::new();
        cat.register_cast(
            DataType::Str,
            DataType::Int,
            CastDef {
                implicit: false,
                now_dependent: false,
                ret: DataType::Int,
                f: Arc::new(|_, _| Ok(Value::Int(0))),
            },
        )
        .unwrap();
        assert!(cat.find_cast(DataType::Str, DataType::Int, false).is_none());
        assert!(cat.find_cast(DataType::Str, DataType::Int, true).is_some());
    }

    #[test]
    fn null_literal_matches_any_param() {
        let mut cat = Catalog::new();
        cat.register_function("h", simple_overload(vec![DataType::Str], DataType::Int))
            .unwrap();
        assert!(cat.resolve_function("h", &[DataType::Null]).is_ok());
    }

    #[test]
    fn ambiguity_detected() {
        let mut cat = Catalog::new();
        cat.register_function("a", simple_overload(vec![DataType::Int], DataType::Int))
            .unwrap();
        cat.register_function("a", simple_overload(vec![DataType::Str], DataType::Str))
            .unwrap();
        // NULL matches both non-exactly.
        let err = cat.resolve_function("a", &[DataType::Null]).unwrap_err();
        assert!(matches!(err, DbError::AmbiguousOverload { .. }));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut cat = Catalog::new();
        cat.register_function("f", simple_overload(vec![DataType::Int], DataType::Int))
            .unwrap();
        assert!(cat
            .register_function("F", simple_overload(vec![DataType::Int], DataType::Float))
            .is_err());
    }

    #[test]
    fn builtin_type_names() {
        let cat = Catalog::new();
        assert_eq!(cat.lookup_type_name("INT").unwrap(), DataType::Int);
        assert_eq!(cat.lookup_type_name("VarChar").unwrap(), DataType::Str);
        assert_eq!(cat.lookup_type_name("double").unwrap(), DataType::Float);
        assert!(cat.lookup_type_name("Element").is_err());
    }

    #[test]
    fn operator_resolution() {
        let mut cat = Catalog::new();
        cat.register_operator(
            BinaryOp::Add,
            OperatorOverload {
                lhs: DataType::Int,
                rhs: DataType::Int,
                ret: DataType::Int,
                now_dependent: false,
                f: Arc::new(|_, args| {
                    Ok(Value::Int(
                        args[0].as_int().unwrap() + args[1].as_int().unwrap(),
                    ))
                }),
            },
        )
        .unwrap();
        let ov = cat
            .resolve_operator(BinaryOp::Add, DataType::Int, DataType::Int)
            .unwrap();
        assert_eq!(ov.ret, DataType::Int);
        // Paper §2: "a Chronon plus a Chronon returns a type error" — an
        // unregistered pairing resolves to NoOverload.
        assert!(cat
            .resolve_operator(BinaryOp::Add, DataType::Str, DataType::Str)
            .is_err());
    }

    #[test]
    fn blade_install_records_info() {
        struct TestBlade;
        impl Blade for TestBlade {
            fn name(&self) -> &str {
                "test"
            }
            fn version(&self) -> &str {
                "0.0"
            }
            fn register(&self, cat: &mut Catalog) -> DbResult<()> {
                cat.register_function("tb", simple_overload(vec![], DataType::Int))
            }
        }
        let mut cat = Catalog::new();
        cat.install_blade(&TestBlade).unwrap();
        assert_eq!(cat.blades().len(), 1);
        assert!(cat.has_function("tb"));
        assert!(cat.install_blade(&TestBlade).is_err());
    }
}
