//! Replication primitives shared by both sides of WAL shipping.
//!
//! A primary streams its log to replicas as raw framed WAL bytes — the
//! exact bytes the group-commit writer flushed, cut at frame boundaries
//! (never mid-frame, thanks to [`crate::wal::record::whole_frames_len`]).
//! This module holds what both ends need:
//!
//! * [`LogRead`] — the primary's answer to "give me log bytes from
//!   `(generation, offset)`": a chunk plus the durable-commit watermark
//!   it reaches, or *restart* when that generation has been checkpointed
//!   away and the replica must re-seed from a snapshot.
//! * [`ReplicaApplier`] — the replica's continuous replay cursor: feed
//!   it chunk bytes in arrival order and it applies every complete
//!   BEGIN..COMMIT transaction through the same code recovery replay
//!   uses, publishing MVCC versions so snapshot reads (and `AS OF`) see
//!   the shipped data. Bytes after the last COMMIT stay buffered until
//!   the rest of the transaction arrives.
//! * [`ReplStats`] — the `repl.*` gauges/counters for `SHOW STATS` and
//!   the wire METRICS frame, maintained by the serving loop on a
//!   primary and the apply loop on a replica.
//!
//! The transport (frames, subscribe/ack handshake, reconnect) lives in
//! the server and client crates; nothing here does I/O.

use crate::error::{DbError, DbResult};
use crate::session::{Database, Session};
use crate::storage::{SharedTable, Table};
use crate::wal::record::{self, MAX_RECORD_LEN};
use crate::wal::{recover, RecoveryReport};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Result of a primary-side log read at `(generation, offset)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRead {
    /// Log bytes from the requested offset, cut at a frame boundary.
    /// `bytes` is empty when the subscriber is caught up (heartbeat).
    /// `watermark` is the newest durable commit sequence the chunk
    /// reaches — `0` when the cut landed short of the durable frontier,
    /// in which case the receiver must not ack a sequence for it.
    Chunk { bytes: Vec<u8>, watermark: u64 },
    /// The requested generation was checkpointed away (or never
    /// existed); the subscriber must re-seed from the current snapshot.
    Restart,
}

/// Point-in-time copy of [`ReplStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplSnapshot {
    pub chunks_shipped: u64,
    pub bytes_shipped: u64,
    pub apply_lag_seq: u64,
    pub reconnects: u64,
    pub last_seq: u64,
}

/// Replication counters and gauges, owned by [`Database`] so `SHOW
/// STATS` and the metrics frame can report them from either role.
///
/// On a primary: `chunks_shipped`/`bytes_shipped` count outbound WAL
/// chunks, `apply_lag_seq` is the worst per-replica lag (durable seq
/// minus acked seq, max across connected replicas), `last_seq` tracks
/// the durable commit frontier. On a replica: `reconnects` counts
/// stream re-establishments and `last_seq` is the newest primary commit
/// sequence known fully applied locally.
#[derive(Debug, Default)]
pub struct ReplStats {
    chunks_shipped: AtomicU64,
    bytes_shipped: AtomicU64,
    apply_lag_seq: AtomicU64,
    reconnects: AtomicU64,
    last_seq: AtomicU64,
}

impl ReplStats {
    /// Counts one shipped WAL or snapshot chunk of `bytes` bytes.
    pub fn record_chunk(&self, bytes: u64) {
        self.chunks_shipped.fetch_add(1, Ordering::Relaxed);
        self.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counts one replication stream re-establishment.
    pub fn record_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the worst-replica apply lag gauge (commit sequences).
    pub fn set_lag(&self, lag: u64) {
        self.apply_lag_seq.store(lag, Ordering::Relaxed);
    }

    /// Sets the newest commit sequence known applied on this node.
    pub fn set_last_seq(&self, seq: u64) {
        self.last_seq.store(seq, Ordering::Relaxed);
    }

    /// The newest commit sequence known applied on this node.
    pub fn last_seq(&self) -> u64 {
        self.last_seq.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of every counter/gauge.
    pub fn snapshot(&self) -> ReplSnapshot {
        ReplSnapshot {
            chunks_shipped: self.chunks_shipped.load(Ordering::Relaxed),
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            apply_lag_seq: self.apply_lag_seq.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            last_seq: self.last_seq.load(Ordering::Relaxed),
        }
    }

    /// The replication gauges as `SHOW STATS` rows.
    pub(crate) fn rows(&self) -> Vec<(String, u64)> {
        let s = self.snapshot();
        vec![
            ("repl.chunks_shipped".to_owned(), s.chunks_shipped),
            ("repl.bytes_shipped".to_owned(), s.bytes_shipped),
            ("repl.apply_lag_seq".to_owned(), s.apply_lag_seq),
            ("repl.reconnects".to_owned(), s.reconnects),
            ("repl.last_seq".to_owned(), s.last_seq),
        ]
    }
}

/// Continuous replay cursor for a replica: feeds shipped WAL bytes into
/// the recovery apply path, transaction by transaction.
///
/// The position `(generation, offset)` names the first log byte not yet
/// applied — offsets count from the start of the log file, so a fresh
/// generation begins at [`record::LOG_HEADER_LEN`]. Fed bytes beyond
/// the last complete COMMIT stay buffered; [`ReplicaApplier::
/// discard_partial`] drops them (torn stream), after which the stream
/// resumes from [`ReplicaApplier::position`].
pub struct ReplicaApplier {
    db: Arc<Database>,
    session: Session,
    generation: u64,
    offset: u64,
    buf: Vec<u8>,
    report: RecoveryReport,
    commits_applied: u64,
}

impl ReplicaApplier {
    /// Creates an applier with no position: generation `0` never
    /// matches a live log (generations start at 1), so the first
    /// subscribe re-seeds from the primary's snapshot.
    pub fn new(db: &Arc<Database>) -> ReplicaApplier {
        ReplicaApplier {
            db: Arc::clone(db),
            session: db.repl_session(),
            generation: 0,
            offset: record::LOG_HEADER_LEN as u64,
            buf: Vec::new(),
            report: RecoveryReport::default(),
            commits_applied: 0,
        }
    }

    /// The resume position: first log byte not yet applied.
    pub fn position(&self) -> (u64, u64) {
        (self.generation, self.offset)
    }

    /// Complete transactions applied over this applier's lifetime.
    pub fn commits_applied(&self) -> u64 {
        self.commits_applied
    }

    /// Cumulative replay report (ops skipped, records replayed).
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// True when every fed byte has been applied — the acked watermark
    /// may advance to the last chunk's watermark only while drained.
    pub fn is_drained(&self) -> bool {
        self.buf.is_empty()
    }

    /// Bytes fed but not yet applied (the tail of an incomplete
    /// transaction). The next stream bytes must land at
    /// `position().1 + buffered()`.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Drops buffered bytes of an incomplete transaction after a torn
    /// stream; the next subscribe resumes from [`Self::position`].
    pub fn discard_partial(&mut self) {
        self.buf.clear();
    }

    /// Replaces the replica's entire state with a checkpoint snapshot
    /// from the primary and repositions the cursor at the head of that
    /// snapshot's log generation.
    pub fn reset_to_snapshot(&mut self, generation: u64, snapshot: &[u8]) -> DbResult<()> {
        self.db.load_snapshot(snapshot)?;
        self.db.republish_all();
        self.generation = generation;
        self.offset = record::LOG_HEADER_LEN as u64;
        self.buf.clear();
        Ok(())
    }

    /// Feeds the next bytes of the stream (must continue exactly at
    /// `position + buffered`), applying every complete BEGIN..COMMIT
    /// transaction. Returns the number of transactions applied. A
    /// malformed frame or CRC mismatch is fatal: shipped bytes come
    /// from CRC-valid flushed frames, so damage means the stream (or
    /// the primary's log) is corrupt.
    pub fn feed(&mut self, bytes: &[u8]) -> DbResult<u64> {
        self.buf.extend_from_slice(bytes);
        let mut commits = 0u64;
        let mut pos = 0usize; // scan cursor into buf
        let mut consumed = 0usize; // bytes applied (through last COMMIT)
        let mut pending: Vec<record::WalRecord> = Vec::new();
        loop {
            let rest = &self.buf[pos..];
            if rest.len() < 8 {
                break;
            }
            let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
            if len == 0 || len > MAX_RECORD_LEN {
                return Err(DbError::Persist {
                    message: format!("replication stream: bad frame length {len}"),
                });
            }
            let len = len as usize;
            if rest.len() < 8 + len {
                break; // incomplete frame: wait for more bytes
            }
            let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
            let payload = &rest[8..8 + len];
            if record::crc32(payload) != crc {
                return Err(DbError::Persist {
                    message: "replication stream: frame CRC mismatch".into(),
                });
            }
            let rec = self
                .db
                .with_catalog(|cat| record::decode_payload(cat, payload))?;
            pos += 8 + len;
            match rec {
                record::WalRecord::Begin { .. } => {
                    pending.clear();
                    pending.push(rec);
                }
                record::WalRecord::Commit { .. } => {
                    self.apply_txn(std::mem::take(&mut pending));
                    commits += 1;
                    consumed = pos;
                }
                other => pending.push(other),
            }
        }
        self.buf.drain(..consumed);
        self.offset += consumed as u64;
        self.commits_applied += commits;
        Ok(commits)
    }

    /// Applies one committed transaction's records and publishes the
    /// touched tables as a single MVCC commit, mirroring the atomic
    /// publication the primary performed. DDL publishes itself through
    /// the session's normal execution path.
    fn apply_txn(&mut self, ops: Vec<record::WalRecord>) {
        let mut touched: BTreeSet<String> = BTreeSet::new();
        for op in ops {
            match &op {
                record::WalRecord::Insert { table, .. }
                | record::WalRecord::Update { table, .. }
                | record::WalRecord::Delete { table, .. } => {
                    touched.insert(table.clone());
                }
                _ => {}
            }
            recover::apply(&self.db, &self.session, op, &mut self.report);
        }
        let items: Vec<(SharedTable, Arc<Table>)> = touched
            .iter()
            .filter_map(|name| self.db.with_storage(|s| s.shared_table(name)).ok())
            .map(|cell| {
                let snap = Arc::new(cell.read().clone());
                (cell, snap)
            })
            .collect();
        self.db.publish_prepared(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    /// Frames one payload exactly as the log writer does.
    fn frame(out: &mut Vec<u8>, payload: &[u8]) {
        out.put_u32_le(payload.len() as u32);
        out.put_u32_le(record::crc32(payload));
        out.put_slice(payload);
    }

    /// An empty transaction chunk: BEGIN(txn) + COMMIT(txn).
    fn empty_txn_chunk(txn: u64) -> Vec<u8> {
        let mut begin = Vec::new();
        begin.put_u8(1); // KIND_BEGIN
        begin.put_u64_le(txn);
        let mut commit = Vec::new();
        commit.put_u8(2); // KIND_COMMIT
        commit.put_u64_le(txn);
        let mut out = Vec::new();
        frame(&mut out, &begin);
        frame(&mut out, &commit);
        out
    }

    #[test]
    fn stats_rows_and_snapshot() {
        let s = ReplStats::default();
        s.record_chunk(100);
        s.record_chunk(28);
        s.record_reconnect();
        s.set_lag(3);
        s.set_last_seq(41);
        let snap = s.snapshot();
        assert_eq!(snap.chunks_shipped, 2);
        assert_eq!(snap.bytes_shipped, 128);
        assert_eq!(snap.apply_lag_seq, 3);
        assert_eq!(snap.reconnects, 1);
        assert_eq!(snap.last_seq, 41);
        let rows = s.rows();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|(k, _)| k.starts_with("repl.")));
        assert_eq!(rows[0], ("repl.chunks_shipped".to_owned(), 2));
    }

    #[test]
    fn feed_buffers_partial_txn_and_advances_on_commit() {
        let db = Database::new();
        let mut a = ReplicaApplier::new(&db);
        let start = a.position();
        let chunk = empty_txn_chunk(7);

        // Half a chunk: nothing applies, position holds, not drained.
        let cut = chunk.len() / 2;
        assert_eq!(a.feed(&chunk[..cut]).unwrap(), 0);
        assert_eq!(a.position(), start);
        assert!(!a.is_drained());

        // The rest: one transaction applies, offset advances past it.
        assert_eq!(a.feed(&chunk[cut..]).unwrap(), 1);
        assert_eq!(a.position(), (start.0, start.1 + chunk.len() as u64));
        assert!(a.is_drained());
        assert_eq!(a.commits_applied(), 1);
    }

    #[test]
    fn discard_partial_rewinds_to_last_commit_boundary() {
        let db = Database::new();
        let mut a = ReplicaApplier::new(&db);
        let first = empty_txn_chunk(1);
        let second = empty_txn_chunk(2);

        let mut stream = first.clone();
        stream.extend_from_slice(&second[..5]); // torn mid-frame
        assert_eq!(a.feed(&stream).unwrap(), 1);
        assert!(!a.is_drained());

        // Torn stream: drop the partial frame, resume at the boundary.
        a.discard_partial();
        assert!(a.is_drained());
        let (_, offset) = a.position();
        assert_eq!(offset, record::LOG_HEADER_LEN as u64 + first.len() as u64);
        assert_eq!(a.feed(&second).unwrap(), 1);
        assert_eq!(a.commits_applied(), 2);
    }

    #[test]
    fn corrupt_frame_is_fatal() {
        let db = Database::new();
        let mut a = ReplicaApplier::new(&db);
        let mut chunk = empty_txn_chunk(3);
        let n = chunk.len();
        chunk[n - 1] ^= 0xFF; // flip a payload byte: CRC mismatch
        assert!(a.feed(&chunk).is_err());
    }
}
