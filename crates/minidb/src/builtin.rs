//! Built-in operators, functions, casts and aggregates registered into
//! every new database. Everything here goes through the same registries a
//! blade uses — the built-ins enjoy no special treatment in the binder.

use crate::catalog::{
    AggregateOverload, AggregateState, BinaryOp, CastDef, Catalog, ExecCtx, FunctionOverload,
    OperatorOverload,
};
use crate::error::{DbError, DbResult};
use crate::types::DataType;
use crate::value::Value;
use std::cmp::Ordering;
use std::sync::Arc;

type V = Value;

fn op(
    cat: &mut Catalog,
    o: BinaryOp,
    lhs: DataType,
    rhs: DataType,
    ret: DataType,
    f: impl Fn(&ExecCtx, &[Value]) -> DbResult<Value> + Send + Sync + 'static,
) {
    cat.register_operator(
        o,
        OperatorOverload {
            lhs,
            rhs,
            ret,
            now_dependent: false,
            f: Arc::new(f),
        },
    )
    .expect("builtin operator registration");
}

fn func(
    cat: &mut Catalog,
    name: &str,
    params: Vec<DataType>,
    ret: DataType,
    f: impl Fn(&ExecCtx, &[Value]) -> DbResult<Value> + Send + Sync + 'static,
) {
    cat.register_function(
        name,
        FunctionOverload {
            params,
            ret,
            now_dependent: false,
            f: Arc::new(f),
        },
    )
    .expect("builtin function registration");
}

fn num2(args: &[Value]) -> DbResult<(f64, f64)> {
    match (args[0].as_float(), args[1].as_float()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(DbError::exec("expected numeric arguments")),
    }
}

fn int2(args: &[Value]) -> DbResult<(i64, i64)> {
    match (args[0].as_int(), args[1].as_int()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(DbError::exec("expected integer arguments")),
    }
}

fn register_arithmetic(cat: &mut Catalog) {
    use BinaryOp::*;
    // Pure integer arithmetic stays integral.
    op(
        cat,
        Add,
        DataType::Int,
        DataType::Int,
        DataType::Int,
        |_, a| {
            let (x, y) = int2(a)?;
            x.checked_add(y)
                .map(V::Int)
                .ok_or_else(|| DbError::exec("integer overflow in +"))
        },
    );
    op(
        cat,
        Sub,
        DataType::Int,
        DataType::Int,
        DataType::Int,
        |_, a| {
            let (x, y) = int2(a)?;
            x.checked_sub(y)
                .map(V::Int)
                .ok_or_else(|| DbError::exec("integer overflow in -"))
        },
    );
    op(
        cat,
        Mul,
        DataType::Int,
        DataType::Int,
        DataType::Int,
        |_, a| {
            let (x, y) = int2(a)?;
            x.checked_mul(y)
                .map(V::Int)
                .ok_or_else(|| DbError::exec("integer overflow in *"))
        },
    );
    op(
        cat,
        Div,
        DataType::Int,
        DataType::Int,
        DataType::Int,
        |_, a| {
            let (x, y) = int2(a)?;
            if y == 0 {
                Err(DbError::exec("division by zero"))
            } else {
                // checked: i64::MIN / -1 overflows.
                x.checked_div(y)
                    .map(V::Int)
                    .ok_or_else(|| DbError::exec("integer overflow in /"))
            }
        },
    );
    op(
        cat,
        Mod,
        DataType::Int,
        DataType::Int,
        DataType::Int,
        |_, a| {
            let (x, y) = int2(a)?;
            if y == 0 {
                Err(DbError::exec("division by zero"))
            } else {
                x.checked_rem(y)
                    .map(V::Int)
                    .ok_or_else(|| DbError::exec("integer overflow in %"))
            }
        },
    );
    // Mixed/float arithmetic in f64.
    for (l, r) in [
        (DataType::Float, DataType::Float),
        (DataType::Int, DataType::Float),
        (DataType::Float, DataType::Int),
    ] {
        op(cat, Add, l, r, DataType::Float, |_, a| {
            num2(a).map(|(x, y)| V::Float(x + y))
        });
        op(cat, Sub, l, r, DataType::Float, |_, a| {
            num2(a).map(|(x, y)| V::Float(x - y))
        });
        op(cat, Mul, l, r, DataType::Float, |_, a| {
            num2(a).map(|(x, y)| V::Float(x * y))
        });
        op(cat, Div, l, r, DataType::Float, |_, a| {
            let (x, y) = num2(a)?;
            if y == 0.0 {
                Err(DbError::exec("division by zero"))
            } else {
                Ok(V::Float(x / y))
            }
        });
    }
    op(
        cat,
        Concat,
        DataType::Str,
        DataType::Str,
        DataType::Str,
        |_, a| {
            Ok(V::Str(format!(
                "{}{}",
                a[0].as_str().unwrap_or(""),
                a[1].as_str().unwrap_or("")
            )))
        },
    );
}

fn cmp_result(o: BinaryOp, ord: Ordering) -> Value {
    let b = match o {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::Ne => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::Le => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::Ge => ord != Ordering::Less,
        _ => unreachable!("not a comparison"),
    };
    Value::Bool(b)
}

fn register_comparisons(cat: &mut Catalog) {
    let comparisons = [
        BinaryOp::Eq,
        BinaryOp::Ne,
        BinaryOp::Lt,
        BinaryOp::Le,
        BinaryOp::Gt,
        BinaryOp::Ge,
    ];
    let pairings = [
        (DataType::Int, DataType::Int),
        (DataType::Float, DataType::Float),
        (DataType::Int, DataType::Float),
        (DataType::Float, DataType::Int),
        (DataType::Str, DataType::Str),
        (DataType::Bool, DataType::Bool),
    ];
    for o in comparisons {
        for (l, r) in pairings {
            op(cat, o, l, r, DataType::Bool, move |_, a| {
                Ok(cmp_result(o, a[0].cmp_ordering(&a[1])))
            });
        }
    }
}

fn register_functions(cat: &mut Catalog) {
    func(cat, "abs", vec![DataType::Int], DataType::Int, |_, a| {
        Ok(V::Int(a[0].as_int().unwrap_or(0).abs()))
    });
    func(
        cat,
        "abs",
        vec![DataType::Float],
        DataType::Float,
        |_, a| Ok(V::Float(a[0].as_float().unwrap_or(0.0).abs())),
    );
    func(cat, "upper", vec![DataType::Str], DataType::Str, |_, a| {
        Ok(V::Str(a[0].as_str().unwrap_or("").to_uppercase()))
    });
    func(cat, "lower", vec![DataType::Str], DataType::Str, |_, a| {
        Ok(V::Str(a[0].as_str().unwrap_or("").to_lowercase()))
    });
    func(
        cat,
        "char_length",
        vec![DataType::Str],
        DataType::Int,
        |_, a| Ok(V::Int(a[0].as_str().unwrap_or("").chars().count() as i64)),
    );
    // Two-argument GREATEST/LEAST (needed by layered temporal SQL, which
    // computes period intersections as [greatest(s1,s2), least(e1,e2)]).
    for ty in [DataType::Int, DataType::Float, DataType::Str] {
        func(cat, "greatest", vec![ty, ty], ty, |_, a| {
            Ok(if a[0].cmp_ordering(&a[1]).is_ge() {
                a[0].clone()
            } else {
                a[1].clone()
            })
        });
        func(cat, "least", vec![ty, ty], ty, |_, a| {
            Ok(if a[0].cmp_ordering(&a[1]).is_le() {
                a[0].clone()
            } else {
                a[1].clone()
            })
        });
    }
}

fn register_numeric_casts(cat: &mut Catalog) {
    cat.register_cast(
        DataType::Int,
        DataType::Float,
        CastDef {
            implicit: true,
            now_dependent: false,
            ret: DataType::Float,
            f: Arc::new(|_, v| Ok(V::Float(v.as_int().unwrap_or(0) as f64))),
        },
    )
    .expect("builtin cast");
    cat.register_cast(
        DataType::Float,
        DataType::Int,
        CastDef {
            implicit: false,
            now_dependent: false,
            ret: DataType::Int,
            f: Arc::new(|_, v| Ok(V::Int(v.as_float().unwrap_or(0.0) as i64))),
        },
    )
    .expect("builtin cast");
    cat.register_cast(
        DataType::Int,
        DataType::Str,
        CastDef {
            implicit: false,
            now_dependent: false,
            ret: DataType::Str,
            f: Arc::new(|_, v| Ok(V::Str(v.as_int().unwrap_or(0).to_string()))),
        },
    )
    .expect("builtin cast");
    cat.register_cast(
        DataType::Str,
        DataType::Int,
        CastDef {
            implicit: false,
            now_dependent: false,
            ret: DataType::Int,
            f: Arc::new(|_, v| {
                v.as_str()
                    .and_then(|s| s.trim().parse::<i64>().ok())
                    .map(V::Int)
                    .ok_or_else(|| DbError::exec("cannot cast string to INT"))
            }),
        },
    )
    .expect("builtin cast");
}

// ----- aggregates ---------------------------------------------------------

struct SumInt(i64);
impl AggregateState for SumInt {
    fn step(&mut self, _: &ExecCtx, v: &Value) -> DbResult<()> {
        self.0 = self
            .0
            .checked_add(
                v.as_int()
                    .ok_or_else(|| DbError::exec("SUM(INT): non-integer"))?,
            )
            .ok_or_else(|| DbError::exec("SUM overflow"))?;
        Ok(())
    }
    fn finish(self: Box<Self>, _: &ExecCtx) -> DbResult<Value> {
        Ok(Value::Int(self.0))
    }
}

struct SumFloat(f64);
impl AggregateState for SumFloat {
    fn step(&mut self, _: &ExecCtx, v: &Value) -> DbResult<()> {
        self.0 += v
            .as_float()
            .ok_or_else(|| DbError::exec("SUM(FLOAT): non-numeric"))?;
        Ok(())
    }
    fn finish(self: Box<Self>, _: &ExecCtx) -> DbResult<Value> {
        Ok(Value::Float(self.0))
    }
}

struct Avg {
    sum: f64,
    n: u64,
}
impl AggregateState for Avg {
    fn step(&mut self, _: &ExecCtx, v: &Value) -> DbResult<()> {
        self.sum += v
            .as_float()
            .ok_or_else(|| DbError::exec("AVG: non-numeric"))?;
        self.n += 1;
        Ok(())
    }
    fn finish(self: Box<Self>, _: &ExecCtx) -> DbResult<Value> {
        Ok(if self.n == 0 {
            Value::Null
        } else {
            Value::Float(self.sum / self.n as f64)
        })
    }
}

struct MinMax {
    best: Option<Value>,
    want_max: bool,
}
impl AggregateState for MinMax {
    fn step(&mut self, _: &ExecCtx, v: &Value) -> DbResult<()> {
        let replace = match &self.best {
            None => true,
            Some(b) => {
                let ord = v.cmp_ordering(b);
                if self.want_max {
                    ord == Ordering::Greater
                } else {
                    ord == Ordering::Less
                }
            }
        };
        if replace {
            self.best = Some(v.clone());
        }
        Ok(())
    }
    fn finish(self: Box<Self>, _: &ExecCtx) -> DbResult<Value> {
        Ok(self.best.unwrap_or(Value::Null))
    }
}

/// COUNT of non-NULL inputs (the executor filters NULLs before `step`,
/// per SQL semantics; `COUNT(*)` is synthesized by the binder as a count
/// over a constant).
struct CountAgg(i64);
impl AggregateState for CountAgg {
    fn step(&mut self, _: &ExecCtx, _: &Value) -> DbResult<()> {
        self.0 += 1;
        Ok(())
    }
    fn finish(self: Box<Self>, _: &ExecCtx) -> DbResult<Value> {
        Ok(Value::Int(self.0))
    }
}

fn agg(
    cat: &mut Catalog,
    name: &str,
    param: DataType,
    ret: DataType,
    factory: impl Fn() -> Box<dyn AggregateState> + Send + Sync + 'static,
) {
    cat.register_aggregate(
        name,
        AggregateOverload {
            param,
            ret,
            factory: Arc::new(factory),
        },
    )
    .expect("builtin aggregate registration");
}

fn register_aggregates(cat: &mut Catalog) {
    agg(cat, "sum", DataType::Int, DataType::Int, || {
        Box::new(SumInt(0))
    });
    agg(cat, "sum", DataType::Float, DataType::Float, || {
        Box::new(SumFloat(0.0))
    });
    agg(cat, "avg", DataType::Int, DataType::Float, || {
        Box::new(Avg { sum: 0.0, n: 0 })
    });
    agg(cat, "avg", DataType::Float, DataType::Float, || {
        Box::new(Avg { sum: 0.0, n: 0 })
    });
    for ty in [
        DataType::Int,
        DataType::Float,
        DataType::Str,
        DataType::Bool,
    ] {
        agg(cat, "min", ty, ty, || {
            Box::new(MinMax {
                best: None,
                want_max: false,
            })
        });
        agg(cat, "max", ty, ty, || {
            Box::new(MinMax {
                best: None,
                want_max: true,
            })
        });
        agg(cat, "count", ty, DataType::Int, || Box::new(CountAgg(0)));
    }
}

/// Installs every built-in into a fresh catalog.
pub fn install(cat: &mut Catalog) {
    register_arithmetic(cat);
    register_comparisons(cat);
    register_functions(cat);
    register_numeric_casts(cat);
    register_aggregates(cat);
    // Every built-in scalar gets at least an elementwise batch kernel so
    // purely built-in queries always qualify for the vectorized path;
    // the hot integer comparisons then get specialized tight-loop
    // kernels on top.
    cat.vectorize_all_scalars();
    crate::exec::vector_ops::install_builtin_kernels(cat);
}

/// Registers a `count` overload for a UDT so `COUNT(udt_column)` works.
/// Blades call this for each type they add.
pub fn register_count_for(cat: &mut Catalog, ty: DataType) -> DbResult<()> {
    cat.register_aggregate(
        "count",
        AggregateOverload {
            param: ty,
            ret: DataType::Int,
            factory: Arc::new(|| Box::new(CountAgg(0))),
        },
    )
}

/// Registers `min`/`max` overloads for an *ordered* UDT.
pub fn register_minmax_for(cat: &mut Catalog, ty: DataType) -> DbResult<()> {
    cat.register_aggregate(
        "min",
        AggregateOverload {
            param: ty,
            ret: ty,
            factory: Arc::new(|| {
                Box::new(MinMax {
                    best: None,
                    want_max: false,
                })
            }),
        },
    )?;
    cat.register_aggregate(
        "max",
        AggregateOverload {
            param: ty,
            ret: ty,
            factory: Arc::new(|| {
                Box::new(MinMax {
                    best: None,
                    want_max: true,
                })
            }),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExecCtx {
        ExecCtx::new(0)
    }

    fn fresh() -> Catalog {
        let mut c = Catalog::new();
        install(&mut c);
        c
    }

    #[test]
    fn integer_arithmetic() {
        let cat = fresh();
        let ov = cat
            .resolve_operator(BinaryOp::Add, DataType::Int, DataType::Int)
            .unwrap();
        let v = (ov.f)(&ctx(), &[Value::Int(2), Value::Int(3)]).unwrap();
        assert_eq!(v.as_int(), Some(5));
        assert_eq!(ov.ret, DataType::Int);
    }

    #[test]
    fn mixed_arithmetic_widens() {
        let cat = fresh();
        let ov = cat
            .resolve_operator(BinaryOp::Mul, DataType::Int, DataType::Float)
            .unwrap();
        assert_eq!(ov.ret, DataType::Float);
        let v = (ov.f)(&ctx(), &[Value::Int(2), Value::Float(1.5)]).unwrap();
        assert_eq!(v.as_float(), Some(3.0));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let cat = fresh();
        let ov = cat
            .resolve_operator(BinaryOp::Div, DataType::Int, DataType::Int)
            .unwrap();
        assert!((ov.f)(&ctx(), &[Value::Int(1), Value::Int(0)]).is_err());
    }

    #[test]
    fn integer_overflow_is_an_error() {
        let cat = fresh();
        let ov = cat
            .resolve_operator(BinaryOp::Add, DataType::Int, DataType::Int)
            .unwrap();
        assert!((ov.f)(&ctx(), &[Value::Int(i64::MAX), Value::Int(1)]).is_err());
    }

    #[test]
    fn string_comparison_and_concat() {
        let cat = fresh();
        let ov = cat
            .resolve_operator(BinaryOp::Lt, DataType::Str, DataType::Str)
            .unwrap();
        let v = (ov.f)(&ctx(), &[Value::Str("a".into()), Value::Str("b".into())]).unwrap();
        assert_eq!(v.as_bool(), Some(true));
        let ov = cat
            .resolve_operator(BinaryOp::Concat, DataType::Str, DataType::Str)
            .unwrap();
        let v = (ov.f)(
            &ctx(),
            &[Value::Str("Dr.".into()), Value::Str("Pepper".into())],
        )
        .unwrap();
        assert_eq!(v.as_str(), Some("Dr.Pepper"));
    }

    #[test]
    fn scalar_functions() {
        let cat = fresh();
        let ov = cat.resolve_function("upper", &[DataType::Str]).unwrap();
        let v = (ov.f)(&ctx(), &[Value::Str("tip".into())]).unwrap();
        assert_eq!(v.as_str(), Some("TIP"));
        let ov = cat.resolve_function("abs", &[DataType::Int]).unwrap();
        assert_eq!((ov.f)(&ctx(), &[Value::Int(-4)]).unwrap().as_int(), Some(4));
    }

    #[test]
    fn sum_and_avg() {
        let cat = fresh();
        let ov = cat.resolve_aggregate("sum", DataType::Int).unwrap();
        let mut st = (ov.factory)();
        for i in 1..=4 {
            st.step(&ctx(), &Value::Int(i)).unwrap();
        }
        assert_eq!(st.finish(&ctx()).unwrap().as_int(), Some(10));

        let ov = cat.resolve_aggregate("avg", DataType::Int).unwrap();
        let mut st = (ov.factory)();
        st.step(&ctx(), &Value::Int(1)).unwrap();
        st.step(&ctx(), &Value::Int(2)).unwrap();
        assert_eq!(st.finish(&ctx()).unwrap().as_float(), Some(1.5));
    }

    #[test]
    fn min_max_count() {
        let cat = fresh();
        let ov = cat.resolve_aggregate("max", DataType::Str).unwrap();
        let mut st = (ov.factory)();
        for s in ["pear", "apple", "plum"] {
            st.step(&ctx(), &Value::Str(s.into())).unwrap();
        }
        assert_eq!(st.finish(&ctx()).unwrap().as_str(), Some("plum"));

        let ov = cat.resolve_aggregate("count", DataType::Int).unwrap();
        let mut st = (ov.factory)();
        st.step(&ctx(), &Value::Int(0)).unwrap();
        st.step(&ctx(), &Value::Int(0)).unwrap();
        assert_eq!(st.finish(&ctx()).unwrap().as_int(), Some(2));
    }

    #[test]
    fn empty_aggregates() {
        let cat = fresh();
        let ov = cat.resolve_aggregate("min", DataType::Int).unwrap();
        assert!(((ov.factory)()).finish(&ctx()).unwrap().is_null());
        let ov = cat.resolve_aggregate("avg", DataType::Int).unwrap();
        assert!(((ov.factory)()).finish(&ctx()).unwrap().is_null());
        let ov = cat.resolve_aggregate("sum", DataType::Int).unwrap();
        assert_eq!(((ov.factory)()).finish(&ctx()).unwrap().as_int(), Some(0));
    }

    #[test]
    fn int_float_implicit_cast_registered() {
        let cat = fresh();
        assert!(cat
            .find_cast(DataType::Int, DataType::Float, false)
            .is_some());
        assert!(cat
            .find_cast(DataType::Float, DataType::Int, false)
            .is_none());
        assert!(cat
            .find_cast(DataType::Float, DataType::Int, true)
            .is_some());
    }
}
