//! WAL record framing: length-prefixed, CRC32-checksummed records.
//!
//! On-disk layout of one log file:
//!
//! ```text
//! header:  "TIPWAL01" (8 bytes) | generation u64le
//! record:  len u32le | crc32 u32le | payload (len bytes)
//! payload: kind u8 | body
//! ```
//!
//! The CRC covers only the payload. Record kinds:
//!
//! | kind | body                                             |
//! |------|--------------------------------------------------|
//! | 1 BEGIN  | txn u64le                                    |
//! | 2 COMMIT | txn u64le                                    |
//! | 3 DDL    | sql string                                   |
//! | 4 INSERT | table string, rowid u64le, ncols u32le, vals |
//! | 5 UPDATE | table string, rowid u64le, ncols u32le, vals |
//! | 6 DELETE | table string, rowid u64le                    |
//!
//! Values reuse the snapshot value codec ([`crate::storage`]): UDTs go
//! through their type's binary encode/decode support functions, keyed by
//! type *name* (ids are not stable across processes). Row ids are logged
//! explicitly — the slotted heap's allocation is deterministic, but
//! replay addressing by id is robust against any future change to the
//! free-list policy.

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::storage::{decode_value, encode_value, get_str, put_str};
use crate::value::Row;
use bytes::{Buf, BufMut};

/// Magic prefix of every log file.
pub const LOG_MAGIC: &[u8; 8] = b"TIPWAL01";

/// Log header length: magic + generation.
pub const LOG_HEADER_LEN: usize = 8 + 8;

/// Upper bound on a single record's payload; a length field above this
/// is treated as corruption, not as a record to allocate for.
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

const KIND_BEGIN: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_DDL: u8 = 3;
const KIND_INSERT: u8 = 4;
const KIND_UPDATE: u8 = 5;
const KIND_DELETE: u8 = 6;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    Begin {
        txn: u64,
    },
    Commit {
        txn: u64,
    },
    /// A DDL statement, stored as SQL text and replayed through the SQL
    /// front end (the statement parsed successfully when it was logged).
    Ddl {
        sql: String,
    },
    Insert {
        table: String,
        rowid: u64,
        row: Row,
    },
    Update {
        table: String,
        rowid: u64,
        row: Row,
    },
    Delete {
        table: String,
        rowid: u64,
    },
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320)
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Writes a log-file header for `generation`.
pub fn encode_header(generation: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(LOG_HEADER_LEN);
    out.put_slice(LOG_MAGIC);
    out.put_u64_le(generation);
    out
}

/// Parses a log-file header, returning the generation.
pub fn decode_header(bytes: &[u8]) -> DbResult<u64> {
    if bytes.len() < LOG_HEADER_LEN || &bytes[..8] != LOG_MAGIC {
        return Err(DbError::Persist {
            message: "bad WAL header".into(),
        });
    }
    let mut buf = &bytes[8..LOG_HEADER_LEN];
    Ok(buf.get_u64_le())
}

fn frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.put_u32_le(payload.len() as u32);
    out.put_u32_le(crc32(payload));
    out.put_slice(payload);
}

/// Accumulates one statement's records as a single framed byte chunk:
/// BEGIN, the statement's row/DDL records, then COMMIT on
/// [`TxnBuilder::finish`]. The whole chunk is appended to the log
/// atomically (one buffer extend under the WAL lock), so records of
/// concurrent statements never interleave.
pub struct TxnBuilder<'a> {
    cat: &'a Catalog,
    buf: Vec<u8>,
    records: u64,
    txn: u64,
}

impl<'a> TxnBuilder<'a> {
    /// Starts a transaction chunk with a BEGIN record.
    pub fn new(cat: &'a Catalog, txn: u64) -> TxnBuilder<'a> {
        let mut b = TxnBuilder {
            cat,
            buf: Vec::with_capacity(128),
            records: 0,
            txn,
        };
        let mut payload = Vec::with_capacity(9);
        payload.put_u8(KIND_BEGIN);
        payload.put_u64_le(txn);
        frame(&mut b.buf, &payload);
        b.records += 1;
        b
    }

    fn row_record(&mut self, kind: u8, table: &str, rowid: u64, row: &Row) -> DbResult<()> {
        let mut payload = Vec::with_capacity(32 + row.len() * 8);
        payload.put_u8(kind);
        put_str(&mut payload, table);
        payload.put_u64_le(rowid);
        payload.put_u32_le(row.len() as u32);
        for v in row {
            encode_value(self.cat, v, &mut payload)?;
        }
        frame(&mut self.buf, &payload);
        self.records += 1;
        Ok(())
    }

    /// Records an inserted row.
    pub fn insert(&mut self, table: &str, rowid: u64, row: &Row) -> DbResult<()> {
        self.row_record(KIND_INSERT, table, rowid, row)
    }

    /// Records a row replacement.
    pub fn update(&mut self, table: &str, rowid: u64, row: &Row) -> DbResult<()> {
        self.row_record(KIND_UPDATE, table, rowid, row)
    }

    /// Records a row deletion.
    pub fn delete(&mut self, table: &str, rowid: u64) -> DbResult<()> {
        let mut payload = Vec::with_capacity(16 + table.len());
        payload.put_u8(KIND_DELETE);
        put_str(&mut payload, table);
        payload.put_u64_le(rowid);
        frame(&mut self.buf, &payload);
        self.records += 1;
        Ok(())
    }

    /// Records a DDL statement by its SQL text.
    pub fn ddl(&mut self, sql: &str) -> DbResult<()> {
        let mut payload = Vec::with_capacity(5 + sql.len());
        payload.put_u8(KIND_DDL);
        put_str(&mut payload, sql);
        frame(&mut self.buf, &payload);
        self.records += 1;
        Ok(())
    }

    /// Number of records framed so far (including BEGIN).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends the COMMIT record and returns the framed chunk plus its
    /// total record count.
    pub fn finish(mut self) -> (Vec<u8>, u64) {
        let mut payload = Vec::with_capacity(9);
        payload.put_u8(KIND_COMMIT);
        payload.put_u64_le(self.txn);
        frame(&mut self.buf, &payload);
        self.records += 1;
        (self.buf, self.records)
    }
}

// ---------------------------------------------------------------------
// Decoding / scanning
// ---------------------------------------------------------------------

/// Decodes one record payload (the bytes the CRC covered).
pub fn decode_payload(cat: &Catalog, payload: &[u8]) -> DbResult<WalRecord> {
    let mut buf = payload;
    if buf.remaining() < 1 {
        return Err(DbError::Persist {
            message: "empty WAL record".into(),
        });
    }
    let kind = buf.get_u8();
    let rec = match kind {
        KIND_BEGIN | KIND_COMMIT => {
            if buf.remaining() < 8 {
                return Err(DbError::Persist {
                    message: "truncated txn id".into(),
                });
            }
            let txn = buf.get_u64_le();
            if kind == KIND_BEGIN {
                WalRecord::Begin { txn }
            } else {
                WalRecord::Commit { txn }
            }
        }
        KIND_DDL => WalRecord::Ddl {
            sql: get_str(&mut buf)?,
        },
        KIND_INSERT | KIND_UPDATE => {
            let table = get_str(&mut buf)?;
            if buf.remaining() < 12 {
                return Err(DbError::Persist {
                    message: "truncated row record".into(),
                });
            }
            let rowid = buf.get_u64_le();
            let ncols = buf.get_u32_le() as usize;
            let mut row = Vec::with_capacity(ncols.min(1024));
            for _ in 0..ncols {
                row.push(decode_value(cat, &mut buf)?);
            }
            if kind == KIND_INSERT {
                WalRecord::Insert { table, rowid, row }
            } else {
                WalRecord::Update { table, rowid, row }
            }
        }
        KIND_DELETE => {
            let table = get_str(&mut buf)?;
            if buf.remaining() < 8 {
                return Err(DbError::Persist {
                    message: "truncated delete record".into(),
                });
            }
            WalRecord::Delete {
                table,
                rowid: buf.get_u64_le(),
            }
        }
        k => {
            return Err(DbError::Persist {
                message: format!("unknown WAL record kind {k}"),
            })
        }
    };
    if buf.has_remaining() {
        return Err(DbError::Persist {
            message: "trailing bytes in WAL record".into(),
        });
    }
    Ok(rec)
}

/// How a scan of a log's record region ended.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanEnd {
    /// Every byte was consumed by valid records.
    Clean,
    /// A torn/truncated tail: the bytes from `good_end` on do not form a
    /// complete valid record and nothing valid follows them. They are
    /// the expected residue of a crash mid-append and are discarded.
    TornTail { good_end: usize, bytes: usize },
    /// A record failed its CRC (or is structurally impossible) *before*
    /// the end of the file: real corruption, not a torn append.
    Corrupt { offset: usize, reason: String },
}

/// Result of scanning one log file's record region.
#[derive(Debug)]
pub struct LogScan {
    /// CRC-validated payloads, in log order.
    pub payloads: Vec<Vec<u8>>,
    pub end: ScanEnd,
}

/// Walks the record region of a log (everything after the header),
/// CRC-checking each record. Stops at the first invalid frame and
/// classifies it: a tail that simply ends (short frame, or a bad CRC on
/// the file's final record) is a torn append; a bad record *followed by
/// more data* is mid-log corruption.
pub fn scan_records(region: &[u8]) -> LogScan {
    let mut payloads = Vec::new();
    let mut off = 0usize;
    while off < region.len() {
        let rest = &region[off..];
        if rest.len() < 8 {
            return LogScan {
                payloads,
                end: ScanEnd::TornTail {
                    good_end: off,
                    bytes: rest.len(),
                },
            };
        }
        let mut hdr = rest;
        let len = hdr.get_u32_le();
        let crc = hdr.get_u32_le();
        if len == 0 || len > MAX_RECORD_LEN {
            // A garbage length field. A torn append writes a prefix of
            // real bytes, so a nonsense length mid-file is corruption;
            // at the very tail (e.g. zero fill) treat it as torn.
            let end = if rest[8..].iter().all(|&b| b == 0) || len == 0 {
                ScanEnd::TornTail {
                    good_end: off,
                    bytes: rest.len(),
                }
            } else {
                ScanEnd::Corrupt {
                    offset: off,
                    reason: format!("implausible record length {len}"),
                }
            };
            return LogScan { payloads, end };
        }
        let len = len as usize;
        if rest.len() < 8 + len {
            // Incomplete final record: torn append.
            return LogScan {
                payloads,
                end: ScanEnd::TornTail {
                    good_end: off,
                    bytes: rest.len(),
                },
            };
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            let end = if off + 8 + len == region.len() {
                // The file's very last record: a torn write of its tail.
                ScanEnd::TornTail {
                    good_end: off,
                    bytes: rest.len(),
                }
            } else {
                ScanEnd::Corrupt {
                    offset: off,
                    reason: "CRC mismatch with valid data following".into(),
                }
            };
            return LogScan { payloads, end };
        }
        payloads.push(payload.to_vec());
        off += 8 + len;
    }
    LogScan {
        payloads,
        end: ScanEnd::Clean,
    }
}

/// Length of the leading *whole* frames in `bytes` — the largest prefix
/// ending exactly on a frame boundary. Replication uses this to trim a
/// byte-bounded log read so it never ships a split frame.
pub fn whole_frames_len(bytes: &[u8]) -> usize {
    let mut off = 0usize;
    while bytes.len() - off >= 8 {
        let len = u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
        if len == 0 || len > MAX_RECORD_LEN {
            break;
        }
        let len = len as usize;
        if bytes.len() - off < 8 + len {
            break;
        }
        off += 8 + len;
    }
    off
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn header_round_trip() {
        let h = encode_header(42);
        assert_eq!(h.len(), LOG_HEADER_LEN);
        assert_eq!(decode_header(&h).unwrap(), 42);
        assert!(decode_header(&h[..10]).is_err());
        let mut bad = h.clone();
        bad[0] = b'X';
        assert!(decode_header(&bad).is_err());
    }

    #[test]
    fn txn_chunk_round_trips() {
        let cat = Catalog::new();
        let mut b = TxnBuilder::new(&cat, 7);
        b.ddl("CREATE TABLE t (a INT)").unwrap();
        b.insert("t", 0, &vec![Value::Int(1)]).unwrap();
        b.update("t", 0, &vec![Value::Int(2)]).unwrap();
        b.delete("t", 0).unwrap();
        let (chunk, n) = b.finish();
        assert_eq!(n, 6);

        let scan = scan_records(&chunk);
        assert_eq!(scan.end, ScanEnd::Clean);
        let recs: Vec<WalRecord> = scan
            .payloads
            .iter()
            .map(|p| decode_payload(&cat, p).unwrap())
            .collect();
        assert_eq!(recs[0], WalRecord::Begin { txn: 7 });
        assert_eq!(
            recs[1],
            WalRecord::Ddl {
                sql: "CREATE TABLE t (a INT)".into()
            }
        );
        assert_eq!(
            recs[2],
            WalRecord::Insert {
                table: "t".into(),
                rowid: 0,
                row: vec![Value::Int(1)]
            }
        );
        assert_eq!(
            recs[4],
            WalRecord::Delete {
                table: "t".into(),
                rowid: 0
            }
        );
        assert_eq!(recs[5], WalRecord::Commit { txn: 7 });
    }

    #[test]
    fn torn_tail_is_classified_not_fatal() {
        let cat = Catalog::new();
        let (chunk, _) = {
            let mut b = TxnBuilder::new(&cat, 1);
            b.insert("t", 0, &vec![Value::Int(1)]).unwrap();
            b.finish()
        };
        // Every strict prefix scans as Clean records + TornTail (or no
        // records at all) — never Corrupt.
        for cut in 0..chunk.len() {
            let scan = scan_records(&chunk[..cut]);
            match scan.end {
                ScanEnd::Clean | ScanEnd::TornTail { .. } => {}
                ScanEnd::Corrupt { offset, ref reason } => {
                    panic!("prefix {cut} classified corrupt at {offset}: {reason}")
                }
            }
        }
    }

    #[test]
    fn midlog_corruption_is_loud() {
        let cat = Catalog::new();
        let mut chunk = {
            let mut b = TxnBuilder::new(&cat, 1);
            b.insert("t", 0, &vec![Value::Int(1)]).unwrap();
            b.insert("t", 1, &vec![Value::Int(2)]).unwrap();
            b.finish().0
        };
        // Flip a payload byte of the *first* record: later records are
        // intact, so this must be Corrupt, not TornTail.
        chunk[9] ^= 0xFF;
        let scan = scan_records(&chunk);
        assert!(
            matches!(scan.end, ScanEnd::Corrupt { offset: 0, .. }),
            "{:?}",
            scan.end
        );
        assert!(scan.payloads.is_empty());
    }

    #[test]
    fn bad_crc_on_final_record_is_torn() {
        let cat = Catalog::new();
        let mut chunk = {
            let mut b = TxnBuilder::new(&cat, 1);
            b.insert("t", 0, &vec![Value::Int(1)]).unwrap();
            b.finish().0
        };
        let last = chunk.len() - 1;
        chunk[last] ^= 0xFF;
        let scan = scan_records(&chunk);
        assert!(
            matches!(scan.end, ScanEnd::TornTail { .. }),
            "{:?}",
            scan.end
        );
        assert_eq!(scan.payloads.len(), 2, "BEGIN and INSERT still decode");
    }
}
