//! Durability subsystem: write-ahead log, checkpointing, and recovery.
//!
//! Three cooperating parts (DESIGN.md §8):
//!
//! * **Write-ahead log** — every DML/DDL statement appends one framed
//!   BEGIN..COMMIT chunk ([`record::TxnBuilder`]) to the log *while
//!   still holding its table guards*, so log order equals lock
//!   serialization order. A dedicated group-commit writer thread drains
//!   the append buffer and batches fsyncs under the configured
//!   [`SyncMode`]; committers in `EveryCommit` mode block only until the
//!   batch containing their chunk is durable ([`Wal::wait_durable`]).
//! * **Checkpointing** — [`crate::session::Database::checkpoint`] writes
//!   the snapshot format to `snapshot.db` under the all-table read pin
//!   and rotates the log; a byte threshold triggers it automatically.
//! * **Recovery** — [`crate::session::Database::open_with`] loads the
//!   snapshot, replays surviving logs ([`recover`]), tolerates a
//!   torn/truncated tail, and fails loudly on mid-log corruption.
//!
//! The writer thread coordinates through `std::sync` primitives (the
//! vendored `parking_lot` carries no `Condvar`).

pub mod file;
pub mod record;
pub mod recover;

use crate::error::{DbError, DbResult};
use file::WalFile;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When the group-commit writer fsyncs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Never fsync (the OS flushes whenever it pleases). Fastest;
    /// survives process kill only as far as the page cache survives.
    Off,
    /// Fsync at most once per interval — a bounded loss window.
    Interval(Duration),
    /// Fsync before acknowledging any commit. Committers block until
    /// the batch holding their records is on stable storage.
    EveryCommit,
}

impl SyncMode {
    /// Parses the `--sync` command-line spelling.
    pub fn parse(s: &str) -> Option<SyncMode> {
        match s {
            "off" => Some(SyncMode::Off),
            "every-commit" => Some(SyncMode::EveryCommit),
            other => other
                .strip_prefix("interval:")
                .and_then(|ms| ms.parse::<u64>().ok())
                .map(|ms| SyncMode::Interval(Duration::from_millis(ms.max(1)))),
        }
    }
}

/// Knobs for [`crate::session::Database::open_with`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    pub sync_mode: SyncMode,
    /// Log size (bytes) that triggers an automatic checkpoint after a
    /// commit; `0` disables threshold checkpointing.
    pub checkpoint_bytes: u64,
    /// MVCC retention window: how many commits of version history each
    /// table chain keeps beyond the oldest pinned snapshot. Replicas
    /// want a wider window to absorb replication lag.
    pub mvcc_retention: u64,
    /// Page size of `pages.db` (a property of the file once created).
    pub page_size: usize,
    /// Buffer pool capacity in frames; resident cold-page memory is
    /// bounded by `pool_pages * page_size`.
    pub pool_pages: usize,
    /// Whether checkpoints page historical (valid-time ended) rows out
    /// to `pages.db`. Off keeps every row resident, as before PR 10.
    pub spill_cold: bool,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig {
            sync_mode: SyncMode::EveryCommit,
            checkpoint_bytes: 16 * 1024 * 1024,
            mvcc_retention: 64,
            page_size: crate::storage::pages::DEFAULT_PAGE_SIZE,
            pool_pages: 1024,
            spill_cold: true,
        }
    }
}

/// What [`crate::session::Database::open_with`] found on disk.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// A `snapshot.db` was present and loaded.
    pub snapshot_loaded: bool,
    /// Log files whose records were replayed.
    pub logs_replayed: usize,
    /// CRC-valid records applied.
    pub records_replayed: u64,
    /// Records discarded from a torn/truncated tail (incomplete frames
    /// count as bytes, complete-but-uncommitted transactions as
    /// records).
    pub records_discarded: u64,
    /// Torn-tail bytes dropped from the end of the newest log.
    pub bytes_discarded: u64,
    /// Committed transactions applied.
    pub txns_applied: u64,
    /// Row operations skipped because their table no longer existed
    /// (possible only after an unclean crash in a lossy sync mode).
    pub ops_skipped: u64,
    /// A torn tail was detected (and tolerated).
    pub torn_tail: bool,
    /// Wall time spent loading the snapshot and replaying logs.
    pub elapsed: Duration,
}

impl RecoveryReport {
    /// One-line human summary (the server logs this at startup).
    pub fn summary(&self) -> String {
        format!(
            "recovery: snapshot={} logs={} replayed={} discarded={} txns={} torn_tail={} in {:.1?}",
            if self.snapshot_loaded {
                "loaded"
            } else {
                "none"
            },
            self.logs_replayed,
            self.records_replayed,
            self.records_discarded,
            self.txns_applied,
            self.torn_tail,
            self.elapsed
        )
    }
}

/// WAL counters, all monotonic except the batch gauge.
#[derive(Debug, Default)]
pub struct WalStats {
    /// Records appended (BEGIN/COMMIT included).
    pub appends: AtomicU64,
    /// Bytes appended (framing included).
    pub bytes: AtomicU64,
    /// Commits (statements) logged.
    pub commits: AtomicU64,
    /// Fsyncs issued by the writer.
    pub fsyncs: AtomicU64,
    /// Largest number of commits covered by a single fsync.
    pub group_commit_batch: AtomicU64,
    /// Records replayed at open.
    pub replayed: AtomicU64,
    /// Checkpoints completed (open-time one included).
    pub checkpoints: AtomicU64,
    /// Microseconds spent in recovery at open.
    pub recovery_micros: AtomicU64,
}

/// Point-in-time copy of [`WalStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStatsSnapshot {
    pub appends: u64,
    pub bytes: u64,
    pub commits: u64,
    pub fsyncs: u64,
    pub group_commit_batch: u64,
    pub replayed: u64,
    pub checkpoints: u64,
    pub recovery_micros: u64,
}

impl WalStats {
    /// Reads every counter.
    pub fn snapshot(&self) -> WalStatsSnapshot {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        WalStatsSnapshot {
            appends: g(&self.appends),
            bytes: g(&self.bytes),
            commits: g(&self.commits),
            fsyncs: g(&self.fsyncs),
            group_commit_batch: g(&self.group_commit_batch),
            replayed: g(&self.replayed),
            checkpoints: g(&self.checkpoints),
            recovery_micros: g(&self.recovery_micros),
        }
    }
}

impl WalStatsSnapshot {
    /// The snapshot as `(metric, value)` rows — appended to `SHOW STATS`.
    pub fn rows(&self) -> Vec<(String, u64)> {
        vec![
            ("wal.appends".to_owned(), self.appends),
            ("wal.bytes".to_owned(), self.bytes),
            ("wal.commits".to_owned(), self.commits),
            ("wal.fsyncs".to_owned(), self.fsyncs),
            ("wal.group_commit_batch".to_owned(), self.group_commit_batch),
            ("wal.replayed".to_owned(), self.replayed),
            ("wal.checkpoints".to_owned(), self.checkpoints),
            ("wal.recovery_micros".to_owned(), self.recovery_micros),
        ]
    }
}

/// State shared between appenders, the writer thread, and rotation.
struct WalShared {
    /// Framed chunks not yet handed to the file.
    buf: Vec<u8>,
    /// Commits represented in `buf`.
    pending_commits: u64,
    /// Sequence of the newest appended commit.
    next_seq: u64,
    /// Sequence through which commits are durable (per the sync mode).
    durable_seq: u64,
    /// Replacement file queued by a checkpoint; the writer flushes and
    /// syncs the old file, then swaps.
    rotate_to: Option<Box<dyn WalFile>>,
    /// Bumped by the writer after each completed swap.
    rotations_done: u64,
    /// Bytes in the *current* log (pending buffer included); reset when
    /// a rotation is queued.
    log_bytes: u64,
    /// Bytes the writer has successfully handed to the current file —
    /// always a chunk boundary, because the writer drains whole framed
    /// chunks. Replication subscribers read the log file up to this
    /// watermark; reset to the new file's length on rotation.
    flushed: u64,
    /// Sequence through which commits are *fsynced* — independent of
    /// the sync mode's durability promise; [`Wal::flush_through`] (the
    /// WAL-before-page barrier) waits on this.
    synced_seq: u64,
    /// An explicit fsync was requested by [`Wal::flush_through`].
    sync_pending: bool,
    shutdown: bool,
    /// Sticky I/O error: after the log breaks, every further logged
    /// statement fails loudly instead of diverging from disk.
    io_error: Option<String>,
}

/// The WAL guts the writer thread co-owns. Split out of [`Wal`] so the
/// thread never holds an `Arc<Wal>`: that cycle would keep the Wal alive
/// forever, and its `Drop` (which joins the thread after a final flush)
/// could never run when the last database handle goes away.
struct Core {
    shared: Mutex<WalShared>,
    /// Signals the writer: new bytes, a rotation, or shutdown.
    work: Condvar,
    /// Signals committers/rotators: durable_seq or rotations_done moved.
    done: Condvar,
    stats: WalStats,
    mode: SyncMode,
}

/// A point-in-time view of how far the WAL has advanced, for
/// replication subscribers tailing the log file. `flushed` is always a
/// framed-chunk boundary (the writer drains whole chunks), so a reader
/// may hand `file[..flushed]` bytes to a replica without ever splitting
/// a record frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalProgress {
    /// Completed log rotations (each rotation starts a new generation).
    pub rotations: u64,
    /// Bytes written to the current log file (header included).
    pub flushed: u64,
    /// Commit sequence covered by `flushed` — the newest commit whose
    /// chunk has been handed to the file. (Commits still in the append
    /// buffer are *not* covered; a subscriber acking this watermark has
    /// everything the log file holds.)
    pub seq: u64,
    /// The WAL has been closed; no further progress will be made.
    pub shutdown: bool,
}

/// The write-ahead log: an append buffer drained by a group-commit
/// writer thread. See the module docs for the protocol.
pub struct Wal {
    core: std::sync::Arc<Core>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl Wal {
    /// Starts the group-commit writer over `file` (which must already
    /// contain a valid header).
    pub fn start(file: Box<dyn WalFile>, mode: SyncMode) -> std::sync::Arc<Wal> {
        let initial_len = file.len();
        let core = std::sync::Arc::new(Core {
            shared: Mutex::new(WalShared {
                buf: Vec::new(),
                pending_commits: 0,
                next_seq: 0,
                durable_seq: 0,
                rotate_to: None,
                rotations_done: 0,
                log_bytes: initial_len,
                flushed: initial_len,
                synced_seq: 0,
                sync_pending: false,
                shutdown: false,
                io_error: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            stats: WalStats::default(),
            mode,
        });
        let thread_core = std::sync::Arc::clone(&core);
        let handle = std::thread::Builder::new()
            .name("minidb-wal-writer".to_owned())
            .spawn(move || writer_loop(&thread_core, file))
            .expect("spawn wal writer");
        std::sync::Arc::new(Wal {
            core,
            writer: Mutex::new(Some(handle)),
        })
    }

    /// The WAL's counters.
    pub fn stats(&self) -> &WalStats {
        &self.core.stats
    }

    /// Appends one statement's framed chunk ([`record::TxnBuilder::finish`])
    /// and returns its commit sequence, to pass to [`Wal::wait_durable`].
    /// Called while the statement still holds its table guards.
    pub fn append_chunk(&self, chunk: Vec<u8>, records: u64) -> DbResult<u64> {
        let mut s = self.core.shared.lock().unwrap();
        if let Some(e) = &s.io_error {
            return Err(DbError::Persist {
                message: format!("WAL unavailable after I/O error: {e}"),
            });
        }
        if s.shutdown {
            return Err(DbError::Persist {
                message: "WAL is shut down".into(),
            });
        }
        self.core
            .stats
            .appends
            .fetch_add(records, Ordering::Relaxed);
        self.core
            .stats
            .bytes
            .fetch_add(chunk.len() as u64, Ordering::Relaxed);
        self.core.stats.commits.fetch_add(1, Ordering::Relaxed);
        s.log_bytes += chunk.len() as u64;
        s.buf.extend_from_slice(&chunk);
        s.pending_commits += 1;
        s.next_seq += 1;
        let seq = s.next_seq;
        drop(s);
        self.core.work.notify_all();
        Ok(seq)
    }

    /// Blocks until commit `seq` is durable. A no-op unless the mode is
    /// [`SyncMode::EveryCommit`] — in the lossy modes an acknowledged
    /// commit is allowed to sit in the batch buffer.
    pub fn wait_durable(&self, seq: u64) -> DbResult<()> {
        if self.core.mode != SyncMode::EveryCommit {
            return Ok(());
        }
        let mut s = self.core.shared.lock().unwrap();
        loop {
            if let Some(e) = &s.io_error {
                return Err(DbError::Persist {
                    message: format!("WAL write failed: {e}"),
                });
            }
            if s.durable_seq >= seq {
                return Ok(());
            }
            s = self.core.done.wait(s).unwrap();
        }
    }

    /// Forces the log durable (written *and* fsynced) through commit
    /// `seq`, regardless of sync mode — the WAL-before-page barrier: a
    /// dirty page stamped with LSN `seq` may only reach `pages.db` once
    /// the log through `seq` is on stable storage. Blocks until the
    /// writer thread reports the fsync.
    pub fn flush_through(&self, seq: u64) -> DbResult<()> {
        let mut s = self.core.shared.lock().unwrap();
        loop {
            if let Some(e) = &s.io_error {
                return Err(DbError::Persist {
                    message: format!("WAL flush failed: {e}"),
                });
            }
            if s.synced_seq >= seq {
                return Ok(());
            }
            if s.shutdown {
                return Err(DbError::Persist {
                    message: "WAL is shut down".into(),
                });
            }
            // Re-armed every lap: the writer may consume a request that
            // predates our target sequence.
            s.sync_pending = true;
            self.core.work.notify_all();
            s = self.core.done.wait(s).unwrap();
        }
    }

    /// Bytes in the current log file (pending appends included).
    pub fn log_bytes(&self) -> u64 {
        self.core.shared.lock().unwrap().log_bytes
    }

    /// Current subscriber-visible progress (see [`WalProgress`]).
    pub fn progress(&self) -> WalProgress {
        let s = self.core.shared.lock().unwrap();
        WalProgress {
            rotations: s.rotations_done,
            flushed: s.flushed,
            seq: s.durable_seq,
            shutdown: s.shutdown,
        }
    }

    /// Blocks until progress advances past `last` (more flushed bytes, a
    /// rotation, or shutdown) or `timeout` elapses, and returns the
    /// progress either way. Subscriber threads park here between chunks
    /// instead of busy-polling the log file.
    pub fn wait_progress(&self, last: &WalProgress, timeout: Duration) -> WalProgress {
        let deadline = Instant::now() + timeout;
        let mut s = self.core.shared.lock().unwrap();
        loop {
            let advanced = s.rotations_done != last.rotations
                || s.flushed != last.flushed
                || s.shutdown
                || s.io_error.is_some();
            let now = Instant::now();
            if advanced || now >= deadline {
                return WalProgress {
                    rotations: s.rotations_done,
                    flushed: s.flushed,
                    seq: s.durable_seq,
                    shutdown: s.shutdown,
                };
            }
            s = self.core.done.wait_timeout(s, deadline - now).unwrap().0;
        }
    }

    /// Queues a log rotation and blocks until the writer has flushed and
    /// fsynced the old file and switched appends to `new_file`. Called
    /// by the checkpoint while it holds the all-table read pin, so no
    /// appender can race the rotation point.
    pub fn rotate(&self, new_file: Box<dyn WalFile>) -> DbResult<()> {
        let new_len = new_file.len();
        let mut s = self.core.shared.lock().unwrap();
        if let Some(e) = &s.io_error {
            return Err(DbError::Persist {
                message: format!("WAL unavailable after I/O error: {e}"),
            });
        }
        let target = s.rotations_done + 1;
        s.rotate_to = Some(new_file);
        s.log_bytes = new_len;
        drop(s);
        self.core.work.notify_all();
        let mut s = self.core.shared.lock().unwrap();
        loop {
            if s.rotations_done >= target {
                return Ok(());
            }
            if let Some(e) = &s.io_error {
                return Err(DbError::Persist {
                    message: format!("WAL rotation failed: {e}"),
                });
            }
            s = self.core.done.wait(s).unwrap();
        }
    }

    /// Stops the writer after a final flush (and fsync, unless the mode
    /// is `Off`). Idempotent.
    pub fn close(&self) {
        {
            let mut s = self.core.shared.lock().unwrap();
            s.shutdown = true;
        }
        self.core.work.notify_all();
        let handle = self.writer.lock().unwrap().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.close();
    }
}

/// The group-commit writer: drains the buffer, writes, and decides per
/// [`SyncMode`] when to fsync. One fsync covers every commit drained
/// since the previous fsync — that count is the group-commit batch.
fn writer_loop(wal: &Core, mut file: Box<dyn WalFile>) {
    let mut last_sync = Instant::now();
    let mut commits_since_sync: u64 = 0;
    loop {
        let (chunk, batch, seq_hi, rotate, shutdown, force_sync) = {
            let mut s = wal.shared.lock().unwrap();
            loop {
                if !s.buf.is_empty() || s.rotate_to.is_some() || s.shutdown || s.sync_pending {
                    break;
                }
                s = match wal.mode {
                    SyncMode::Interval(d) => wal.work.wait_timeout(s, d).unwrap().0,
                    _ => wal.work.wait(s).unwrap(),
                };
            }
            let chunk = std::mem::take(&mut s.buf);
            let batch = std::mem::take(&mut s.pending_commits);
            (
                chunk,
                batch,
                s.next_seq,
                s.rotate_to.take(),
                s.shutdown,
                std::mem::take(&mut s.sync_pending),
            )
        };

        let mut io_failed: Option<String> = None;
        if !chunk.is_empty() {
            if let Err(e) = file.append(&chunk) {
                io_failed = Some(e.to_string());
            }
        }
        commits_since_sync += batch;

        // Sync decision. Rotation and shutdown always seal the old file
        // (unless the mode is Off): records must not exist only in the
        // page cache when the file stops being the live log.
        let want_sync = io_failed.is_none()
            && (force_sync
                || match wal.mode {
                    SyncMode::Off => false,
                    SyncMode::EveryCommit => commits_since_sync > 0,
                    SyncMode::Interval(d) => {
                        commits_since_sync > 0
                            && (last_sync.elapsed() >= d || rotate.is_some() || shutdown)
                    }
                });
        let mut synced = false;
        if want_sync {
            match file.sync() {
                Ok(()) => {
                    wal.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                    wal.stats
                        .group_commit_batch
                        .fetch_max(commits_since_sync, Ordering::Relaxed);
                    commits_since_sync = 0;
                    last_sync = Instant::now();
                    synced = true;
                }
                Err(e) => io_failed = Some(e.to_string()),
            }
        }

        let mut s = wal.shared.lock().unwrap();
        if let Some(e) = io_failed {
            if s.io_error.is_none() {
                s.io_error = Some(e);
            }
        } else {
            // In EveryCommit mode durability means "fsynced"; in the
            // lossy modes an acknowledged commit is merely written.
            s.durable_seq = seq_hi;
            if synced {
                s.synced_seq = seq_hi;
            }
            s.flushed += chunk.len() as u64;
            if let Some(new_file) = rotate {
                s.flushed = new_file.len();
                file = new_file;
                s.rotations_done += 1;
                commits_since_sync = 0;
            }
        }
        let stop = s.shutdown && s.buf.is_empty();
        drop(s);
        wal.done.notify_all();
        if stop {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::file::FailpointFile;
    use super::*;

    #[test]
    fn sync_mode_parses() {
        assert_eq!(SyncMode::parse("off"), Some(SyncMode::Off));
        assert_eq!(SyncMode::parse("every-commit"), Some(SyncMode::EveryCommit));
        assert_eq!(
            SyncMode::parse("interval:50"),
            Some(SyncMode::Interval(Duration::from_millis(50)))
        );
        assert_eq!(SyncMode::parse("nope"), None);
    }

    #[test]
    fn every_commit_waits_for_fsync() {
        let (file, state) = FailpointFile::new(b"H");
        let wal = Wal::start(Box::new(file), SyncMode::EveryCommit);
        let seq = wal.append_chunk(b"chunk-one".to_vec(), 2).unwrap();
        wal.wait_durable(seq).unwrap();
        {
            let s = state.lock().unwrap();
            assert_eq!(&s.bytes[..], b"Hchunk-one");
            assert_eq!(s.synced_len, s.bytes.len());
            assert!(s.syncs >= 1);
        }
        let snap = wal.stats().snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.appends, 2);
        assert!(snap.fsyncs >= 1);
        wal.close();
    }

    #[test]
    fn fsync_failure_is_sticky_and_loud() {
        let (file, state) = FailpointFile::new(b"H");
        state.lock().unwrap().fail_on_sync = Some(1);
        let wal = Wal::start(Box::new(file), SyncMode::EveryCommit);
        let seq = wal.append_chunk(b"doomed".to_vec(), 1).unwrap();
        let err = wal.wait_durable(seq).unwrap_err();
        assert!(matches!(err, DbError::Persist { .. }), "{err}");
        // Sticky: the next append is refused outright.
        assert!(wal.append_chunk(b"more".to_vec(), 1).is_err());
        wal.close();
    }

    #[test]
    fn group_commit_batches_concurrent_commits() {
        let (file, _state) = FailpointFile::new(b"H");
        let wal = Wal::start(Box::new(file), SyncMode::EveryCommit);
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let wal = std::sync::Arc::clone(&wal);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        let chunk = format!("t{i}c{j}").into_bytes();
                        let seq = wal.append_chunk(chunk, 1).unwrap();
                        wal.wait_durable(seq).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = wal.stats().snapshot();
        assert_eq!(snap.commits, 400);
        assert!(snap.fsyncs >= 1);
        assert!(
            snap.fsyncs <= snap.commits,
            "fsyncs {} > commits {}",
            snap.fsyncs,
            snap.commits
        );
        wal.close();
    }

    #[test]
    fn rotation_seals_old_file_and_switches() {
        let (old, old_state) = FailpointFile::new(b"OLD");
        let (new, new_state) = FailpointFile::new(b"NEW");
        let wal = Wal::start(Box::new(old), SyncMode::EveryCommit);
        let seq = wal.append_chunk(b"-first".to_vec(), 1).unwrap();
        wal.wait_durable(seq).unwrap();
        wal.rotate(Box::new(new)).unwrap();
        let seq = wal.append_chunk(b"-second".to_vec(), 1).unwrap();
        wal.wait_durable(seq).unwrap();
        wal.close();
        assert_eq!(&old_state.lock().unwrap().bytes[..], b"OLD-first");
        assert_eq!(&new_state.lock().unwrap().bytes[..], b"NEW-second");
        let old_s = old_state.lock().unwrap();
        assert_eq!(
            old_s.synced_len,
            old_s.bytes.len(),
            "rotation must seal the old log"
        );
    }

    #[test]
    fn flush_through_forces_fsync_in_off_mode() {
        let (file, state) = FailpointFile::new(b"H");
        let wal = Wal::start(Box::new(file), SyncMode::Off);
        let seq = wal.append_chunk(b"page-barrier".to_vec(), 1).unwrap();
        wal.flush_through(seq).unwrap();
        {
            let s = state.lock().unwrap();
            assert_eq!(&s.bytes[..], b"Hpage-barrier");
            assert_eq!(s.synced_len, s.bytes.len(), "barrier must fsync");
            assert!(s.syncs >= 1);
        }
        // Already-synced sequences return immediately.
        wal.flush_through(seq).unwrap();
        wal.close();
    }

    #[test]
    fn close_flushes_pending_in_off_mode() {
        let (file, state) = FailpointFile::new(b"H");
        let wal = Wal::start(Box::new(file), SyncMode::Off);
        wal.append_chunk(b"tail".to_vec(), 1).unwrap();
        wal.close();
        assert_eq!(&state.lock().unwrap().bytes[..], b"Htail");
    }
}
