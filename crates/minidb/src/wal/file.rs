//! The WAL's storage abstraction and its implementations.
//!
//! [`WalFile`] is the narrow seam between the group-commit writer and
//! the filesystem: append bytes, fsync, report length. Production uses
//! [`StdWalFile`] over a real `File`; tests inject [`FailpointFile`],
//! which can cut an append short (a torn write), fail the Nth fsync, or
//! both — the fault-injection harness behind the recovery tests.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Byte sink the WAL writer appends to. Implementations must be
/// `Send`: the group-commit writer thread owns the file.
// `len` counts bytes including the fixed header, so a live log is never
// empty and an `is_empty` method would have no meaning here.
#[allow(clippy::len_without_is_empty)]
pub trait WalFile: Send {
    /// Appends `data` at the end. A short write followed by an error is
    /// allowed (that is exactly what a crash mid-write produces).
    fn append(&mut self, data: &[u8]) -> io::Result<()>;
    /// Forces appended bytes to stable storage.
    fn sync(&mut self) -> io::Result<()>;
    /// Bytes written so far (header included).
    fn len(&self) -> u64;
}

/// A real log file on disk.
pub struct StdWalFile {
    file: File,
    len: u64,
}

impl StdWalFile {
    /// Creates (truncating) a log file and writes `header`.
    pub fn create(path: &Path, header: &[u8]) -> io::Result<StdWalFile> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(header)?;
        file.sync_all()?;
        Ok(StdWalFile {
            file,
            len: header.len() as u64,
        })
    }

    /// Opens an existing log for appending at `len` (the recovery scan's
    /// end of valid data; anything after it is a discarded torn tail and
    /// is truncated away here).
    pub fn open_append(path: &Path, len: u64) -> io::Result<StdWalFile> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        use std::io::{Seek, SeekFrom};
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(StdWalFile { file, len })
    }
}

impl WalFile for StdWalFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.write_all(data)?;
        self.len += data.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// Shared view of a [`FailpointFile`]'s buffer and counters, held by the
/// test while the WAL owns the file itself.
#[derive(Default)]
pub struct FailpointState {
    /// Everything "on disk" so far.
    pub bytes: Vec<u8>,
    /// How many bytes of that are covered by a completed fsync.
    pub synced_len: usize,
    /// Total fsync calls observed.
    pub syncs: u64,
    /// Fail appends after this many more bytes (`None` = no limit). The
    /// failing append still writes the partial prefix — a torn write.
    pub fail_after_bytes: Option<usize>,
    /// Fail the Nth upcoming fsync (1 = the next one).
    pub fail_on_sync: Option<u64>,
}

/// Failpoint-backed in-memory [`WalFile`]: deterministic torn writes and
/// fsync errors for the recovery tests.
#[derive(Clone)]
pub struct FailpointFile {
    state: Arc<Mutex<FailpointState>>,
}

impl FailpointFile {
    /// A fresh failpoint file with `header` already "written".
    pub fn new(header: &[u8]) -> (FailpointFile, Arc<Mutex<FailpointState>>) {
        let state = Arc::new(Mutex::new(FailpointState {
            bytes: header.to_vec(),
            synced_len: header.len(),
            ..FailpointState::default()
        }));
        (
            FailpointFile {
                state: Arc::clone(&state),
            },
            state,
        )
    }
}

impl WalFile for FailpointFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        match s.fail_after_bytes {
            Some(budget) if budget < data.len() => {
                // Torn write: a prefix lands, then the "disk" dies.
                let bytes = data[..budget].to_vec();
                s.bytes.extend_from_slice(&bytes);
                s.fail_after_bytes = Some(0);
                Err(io::Error::other("failpoint: torn write"))
            }
            Some(budget) => {
                s.bytes.extend_from_slice(data);
                s.fail_after_bytes = Some(budget - data.len());
                Ok(())
            }
            None => {
                s.bytes.extend_from_slice(data);
                Ok(())
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.syncs += 1;
        if s.fail_on_sync == Some(s.syncs) {
            return Err(io::Error::other("failpoint: fsync error"));
        }
        s.synced_len = s.bytes.len();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.state.lock().unwrap().bytes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failpoint_short_write_then_error() {
        let (mut f, state) = FailpointFile::new(b"HDR");
        f.append(b"abcd").unwrap();
        state.lock().unwrap().fail_after_bytes = Some(2);
        let err = f.append(b"wxyz").unwrap_err();
        assert!(err.to_string().contains("torn write"));
        assert_eq!(&state.lock().unwrap().bytes[..], b"HDRabcdwx");
        // Subsequent appends keep failing at the zero budget.
        assert!(f.append(b"!").is_err());
    }

    #[test]
    fn failpoint_nth_sync_fails() {
        let (mut f, state) = FailpointFile::new(b"");
        state.lock().unwrap().fail_on_sync = Some(2);
        f.append(b"one").unwrap();
        f.sync().unwrap();
        assert_eq!(state.lock().unwrap().synced_len, 3);
        f.append(b"two").unwrap();
        assert!(f.sync().is_err());
        assert_eq!(
            state.lock().unwrap().synced_len,
            3,
            "failed sync must not advance the durable prefix"
        );
        f.sync().unwrap();
        assert_eq!(state.lock().unwrap().synced_len, 6);
    }

    #[test]
    fn std_wal_file_appends_and_reopens() {
        let dir = std::env::temp_dir().join(format!("minidb-walfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        {
            let mut f = StdWalFile::create(&path, b"HDR8bytegen64bit").unwrap();
            f.append(b"payload").unwrap();
            f.sync().unwrap();
            assert_eq!(f.len(), 23);
        }
        // Reopen truncating a "torn" byte off the end.
        {
            let mut f = StdWalFile::open_append(&path, 22).unwrap();
            f.append(b"Z").unwrap();
            f.sync().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes, b"HDR8bytegen64bitpayloaZ");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
