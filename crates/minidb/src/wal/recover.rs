//! Crash recovery: snapshot load + log replay.
//!
//! A durable data directory holds:
//!
//! * `snapshot.db` — the latest checkpoint: a wrapper header (magic,
//!   generation, length, CRC) around the [`crate::storage`] snapshot
//!   bytes, written via tmp-file + rename so it is always either the old
//!   or the new checkpoint, never a torn mix.
//! * `wal.log` — the live log (header stamps its generation).
//! * `wal.log.new` — transient: the next log, mid-checkpoint. A crash
//!   can leave it behind; its generation decides whether it replays.
//!
//! Recovery loads the snapshot (generation `S`), then replays every log
//! whose generation is `>= S` in ascending order. Only complete
//! BEGIN..COMMIT transactions apply; an uncommitted tail is discarded
//! and reported. A torn tail (crash mid-append) is tolerated; a bad
//! record *followed by* valid data is mid-log corruption and fails the
//! open loudly. Replay of a record the snapshot already contains is
//! idempotent (inserts re-place by explicit rowid), which is what makes
//! the checkpoint protocol safe without freezing writers.

use super::record::{self, ScanEnd, WalRecord};
use super::RecoveryReport;
use crate::error::{DbError, DbResult};
use crate::session::Database;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefix of the `snapshot.db` wrapper.
pub const SNAPSHOT_FILE_MAGIC: &[u8; 8] = b"TIPCKPT1";
/// Wrapper header: magic + generation u64le + payload len u64le + crc u32le.
const SNAPSHOT_FILE_HEADER: usize = 8 + 8 + 8 + 4;

/// Live log file name inside a data directory.
pub const WAL_FILE: &str = "wal.log";
/// Transient next-log name used while a checkpoint is in flight.
pub const WAL_FILE_NEW: &str = "wal.log.new";
/// Checkpoint file name.
pub const SNAPSHOT_FILE: &str = "snapshot.db";

fn persist_io(what: &str, e: std::io::Error) -> DbError {
    DbError::Persist {
        message: format!("{what}: {e}"),
    }
}

/// Writes `snapshot.db` atomically (tmp file + fsync + rename).
pub(crate) fn write_snapshot_file(dir: &Path, generation: u64, payload: &[u8]) -> DbResult<()> {
    use bytes::BufMut;
    let mut bytes = Vec::with_capacity(SNAPSHOT_FILE_HEADER + payload.len());
    bytes.put_slice(SNAPSHOT_FILE_MAGIC);
    bytes.put_u64_le(generation);
    bytes.put_u64_le(payload.len() as u64);
    bytes.put_u32_le(record::crc32(payload));
    bytes.put_slice(payload);
    let tmp = dir.join("snapshot.tmp");
    let path = dir.join(SNAPSHOT_FILE);
    std::fs::write(&tmp, &bytes).map_err(|e| persist_io("write snapshot.tmp", e))?;
    let f = std::fs::File::open(&tmp).map_err(|e| persist_io("open snapshot.tmp", e))?;
    f.sync_all()
        .map_err(|e| persist_io("sync snapshot.tmp", e))?;
    std::fs::rename(&tmp, &path).map_err(|e| persist_io("rename snapshot.tmp", e))?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all(); // best-effort directory fsync
    }
    Ok(())
}

/// Reads and validates `snapshot.db`; `Ok(None)` when absent.
pub(crate) fn read_snapshot_file(dir: &Path) -> DbResult<Option<(u64, Vec<u8>)>> {
    use bytes::Buf;
    let path = dir.join(SNAPSHOT_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(persist_io("read snapshot.db", e)),
    };
    if bytes.len() < SNAPSHOT_FILE_HEADER || &bytes[..8] != SNAPSHOT_FILE_MAGIC {
        return Err(DbError::Persist {
            message: "snapshot.db: bad magic".into(),
        });
    }
    let mut buf = &bytes[8..SNAPSHOT_FILE_HEADER];
    let generation = buf.get_u64_le();
    let len = buf.get_u64_le() as usize;
    let crc = buf.get_u32_le();
    let payload = &bytes[SNAPSHOT_FILE_HEADER..];
    if payload.len() != len || record::crc32(payload) != crc {
        return Err(DbError::Persist {
            message: "snapshot.db: length/CRC mismatch (corrupt checkpoint)".into(),
        });
    }
    Ok(Some((generation, payload.to_vec())))
}

struct FoundLog {
    path: PathBuf,
    generation: u64,
    region: Vec<u8>,
}

/// Reads `wal.log` and `wal.log.new`, keeping those with a parseable
/// header. A file too short or with a broken header is the residue of a
/// crash during log creation: it contains no committed records (the
/// header is synced before any append) and is counted as discarded.
fn collect_logs(dir: &Path, report: &mut RecoveryReport) -> DbResult<Vec<FoundLog>> {
    let mut logs = Vec::new();
    for name in [WAL_FILE, WAL_FILE_NEW] {
        let path = dir.join(name);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(persist_io("read log", e)),
        };
        match record::decode_header(&bytes) {
            Ok(generation) => logs.push(FoundLog {
                path,
                generation,
                region: bytes[record::LOG_HEADER_LEN..].to_vec(),
            }),
            Err(_) => {
                report.torn_tail = true;
                report.bytes_discarded += bytes.len() as u64;
            }
        }
    }
    logs.sort_by_key(|l| l.generation);
    Ok(logs)
}

/// Recovers a database from `dir`: loads the snapshot, replays every log
/// with generation `>= snapshot generation` in ascending order. Returns
/// the report and the next log generation to create
/// (`max(snapshot, logs) + 1`). Must run *before* durability is attached
/// to the database, so DDL replay does not re-log itself.
pub(crate) fn recover(db: &Arc<Database>, dir: &Path) -> DbResult<(RecoveryReport, u64)> {
    let mut report = RecoveryReport::default();
    let mut max_gen = 0u64;
    let snapshot_gen = match read_snapshot_file(dir)? {
        Some((generation, payload)) => {
            db.load_snapshot(&payload)?;
            report.snapshot_loaded = true;
            max_gen = generation;
            generation
        }
        None => 0,
    };
    let logs = collect_logs(dir, &mut report)?;
    for log in &logs {
        max_gen = max_gen.max(log.generation);
        if log.generation < snapshot_gen {
            continue; // fully absorbed by the checkpoint
        }
        replay_region(db, &log.path, &log.region, &mut report)?;
        report.logs_replayed += 1;
    }
    Ok((report, max_gen + 1))
}

/// Replays one log's record region into the database.
fn replay_region(
    db: &Arc<Database>,
    path: &Path,
    region: &[u8],
    report: &mut RecoveryReport,
) -> DbResult<()> {
    let scan = record::scan_records(region);
    match &scan.end {
        ScanEnd::Clean => {}
        ScanEnd::TornTail { bytes, .. } => {
            report.torn_tail = true;
            report.bytes_discarded += *bytes as u64;
        }
        ScanEnd::Corrupt { offset, reason } => {
            return Err(DbError::Persist {
                message: format!(
                    "{}: corrupt WAL record at byte {} of record region: {reason}",
                    path.display(),
                    offset
                ),
            });
        }
    }
    let session = db.session();
    // Chunks are appended atomically, so records of one transaction are
    // contiguous: buffer from BEGIN and apply on COMMIT. Anything left
    // unbuffered at end-of-log (or outside a BEGIN) is an uncommitted
    // remnant and is discarded.
    let mut pending: Option<Vec<WalRecord>> = None;
    let mut stray = 0u64;
    for payload in &scan.payloads {
        let rec = db.with_catalog(|cat| record::decode_payload(cat, payload))?;
        match rec {
            WalRecord::Begin { .. } => {
                if let Some(p) = pending.take() {
                    stray += p.len() as u64; // BEGIN without COMMIT
                }
                pending = Some(vec![rec]);
            }
            WalRecord::Commit { .. } => match pending.take() {
                Some(ops) => {
                    let n = ops.len() as u64 + 1;
                    for op in ops {
                        apply(db, &session, op, report);
                    }
                    report.records_replayed += n;
                    report.txns_applied += 1;
                }
                None => stray += 1,
            },
            other => match &mut pending {
                Some(ops) => ops.push(other),
                None => stray += 1,
            },
        }
    }
    if let Some(p) = pending {
        stray += p.len() as u64;
    }
    report.records_discarded += stray;
    Ok(())
}

/// Applies one committed record. Semantic failures (a table the log
/// mentions but the database lacks — possible only under a lossy sync
/// mode, or on idempotent re-application over a checkpoint) are counted,
/// not fatal: the rest of the log still carries committed data.
/// Also the per-record half of continuous replica apply
/// ([`crate::repl::ReplicaApplier`]).
pub(crate) fn apply(
    db: &Arc<Database>,
    session: &crate::session::Session,
    rec: WalRecord,
    report: &mut RecoveryReport,
) {
    match rec {
        WalRecord::Begin { .. } | WalRecord::Commit { .. } => {}
        WalRecord::Ddl { sql } => {
            if session.execute(&sql).is_err() {
                // Idempotent re-application over a checkpoint that
                // already contains this DDL lands here (AlreadyExists /
                // NotFound); genuinely lost context does too.
                report.ops_skipped += 1;
            }
        }
        WalRecord::Insert { table, rowid, row } => {
            match db.with_storage(|s| s.shared_table(&table)) {
                Ok(shared) => {
                    let mut t = shared.write();
                    if row.len() != t.schema.columns.len()
                        || t.restore_insert_at(rowid as usize, row).is_err()
                    {
                        report.ops_skipped += 1;
                    }
                }
                Err(_) => report.ops_skipped += 1,
            }
        }
        WalRecord::Update { table, rowid, row } => {
            match db.with_storage(|s| s.shared_table(&table)) {
                Ok(shared) => {
                    let mut t = shared.write();
                    if row.len() != t.schema.columns.len()
                        || !t.update(rowid as usize, row).unwrap_or(false)
                    {
                        report.ops_skipped += 1;
                    }
                }
                Err(_) => report.ops_skipped += 1,
            }
        }
        WalRecord::Delete { table, rowid } => {
            match db.with_storage(|s| s.shared_table(&table)) {
                // A false return is legal idempotent re-application
                // (already deleted), not a skip.
                Ok(shared) => {
                    if shared.write().delete(rowid as usize).is_err() {
                        report.ops_skipped += 1;
                    }
                }
                Err(_) => report.ops_skipped += 1,
            }
        }
    }
}
