//! Decoder robustness: arbitrary bytes must decode to `Ok` or a clean
//! `Corrupt` error — never panic, never over-allocate.

use proptest::prelude::*;
use tip_core::binary;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn decode_element_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = binary::decode_element(&mut bytes.as_slice());
    }

    #[test]
    fn decode_chronon_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let _ = binary::decode_chronon(&mut bytes.as_slice());
        let _ = binary::decode_span(&mut bytes.as_slice());
        let _ = binary::decode_instant(&mut bytes.as_slice());
        let _ = binary::decode_period(&mut bytes.as_slice());
    }

    /// Decoding whatever was encoded, with a corrupted tail, still never
    /// panics (valid prefix + garbage).
    #[test]
    fn decode_corrupted_valid_encoding(
        n in 0usize..5,
        garbage in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut periods = Vec::new();
        for k in 0..n {
            let s = tip_core::Chronon::from_raw(k as i64 * 100).unwrap();
            periods.push(tip_core::Period::fixed(s, s));
        }
        let e = tip_core::Element::from_periods(periods);
        let mut bytes = binary::element_to_vec(&e);
        bytes.extend_from_slice(&garbage);
        // A clean or dirty result, but no panic; the valid prefix decodes.
        let decoded = binary::decode_element(&mut bytes.as_slice());
        prop_assert!(decoded.is_ok());
        prop_assert_eq!(decoded.unwrap(), e);
    }

    /// Text parsers never panic on arbitrary input either.
    #[test]
    fn text_parsers_never_panic(s in "[ -~]{0,60}") {
        let _ = s.parse::<tip_core::Chronon>();
        let _ = s.parse::<tip_core::Span>();
        let _ = s.parse::<tip_core::Instant>();
        let _ = s.parse::<tip_core::Period>();
        let _ = s.parse::<tip_core::Element>();
    }

    /// Unicode soup for the text parsers (multi-byte boundary safety).
    #[test]
    fn text_parsers_survive_unicode(s in "\\PC{0,40}") {
        let _ = s.parse::<tip_core::Element>();
        let _ = s.parse::<tip_core::Period>();
    }
}
