//! Decoder robustness: arbitrary bytes must decode to `Ok` or a clean
//! `Corrupt` error — never panic, never over-allocate.

use proptest::prelude::*;
use tip_core::binary;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn decode_element_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = binary::decode_element(&mut bytes.as_slice());
    }

    #[test]
    fn decode_chronon_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let _ = binary::decode_chronon(&mut bytes.as_slice());
        let _ = binary::decode_span(&mut bytes.as_slice());
        let _ = binary::decode_instant(&mut bytes.as_slice());
        let _ = binary::decode_period(&mut bytes.as_slice());
    }

    /// Decoding whatever was encoded, with a corrupted tail, still never
    /// panics (valid prefix + garbage).
    #[test]
    fn decode_corrupted_valid_encoding(
        n in 0usize..5,
        garbage in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut periods = Vec::new();
        for k in 0..n {
            let s = tip_core::Chronon::from_raw(k as i64 * 100).unwrap();
            periods.push(tip_core::Period::fixed(s, s));
        }
        let e = tip_core::Element::from_periods(periods);
        let mut bytes = binary::element_to_vec(&e);
        bytes.extend_from_slice(&garbage);
        // A clean or dirty result, but no panic; the valid prefix decodes.
        let decoded = binary::decode_element(&mut bytes.as_slice());
        prop_assert!(decoded.is_ok());
        prop_assert_eq!(decoded.unwrap(), e);
    }

    /// Text parsers never panic on arbitrary input either.
    #[test]
    fn text_parsers_never_panic(s in "[ -~]{0,60}") {
        let _ = s.parse::<tip_core::Chronon>();
        let _ = s.parse::<tip_core::Span>();
        let _ = s.parse::<tip_core::Instant>();
        let _ = s.parse::<tip_core::Period>();
        let _ = s.parse::<tip_core::Element>();
    }

    /// Unicode soup for the text parsers (multi-byte boundary safety).
    #[test]
    fn text_parsers_survive_unicode(s in "\\PC{0,40}") {
        let _ = s.parse::<tip_core::Element>();
        let _ = s.parse::<tip_core::Period>();
    }
}

// ----- round-trip identity for every codec -------------------------------
//
// The wire protocol (tip-client/tip-server) ships every value through
// these codecs, so encode→decode must be the identity for arbitrary
// values, and decoding any strict prefix of an encoding must return a
// clean `Err` — never panic, never succeed with a different value.

use tip_core::{Chronon, Element, Instant, Period, Span};

fn arb_chronon() -> impl Strategy<Value = Chronon> {
    (Chronon::BEGINNING.raw()..=Chronon::FOREVER.raw())
        .prop_map(|raw| Chronon::from_raw(raw).unwrap())
}

fn arb_span() -> impl Strategy<Value = Span> {
    (i64::MIN..=i64::MAX).prop_map(Span::from_seconds)
}

fn arb_instant() -> impl Strategy<Value = Instant> {
    (0u8..2, arb_chronon(), arb_span()).prop_map(|(tag, c, s)| {
        if tag == 0 {
            Instant::Fixed(c)
        } else {
            Instant::NowRelative(s)
        }
    })
}

fn arb_raw_period() -> impl Strategy<Value = Period> {
    (arb_instant(), arb_instant()).prop_map(|(a, b)| Period::new(a, b))
}

fn arb_raw_element() -> impl Strategy<Value = Element> {
    proptest::collection::vec(arb_raw_period(), 0..8).prop_map(Element::from_periods)
}

/// Every strict prefix of `bytes` must fail to decode (and not panic).
fn assert_prefixes_err(bytes: &[u8], decode_is_err: impl Fn(&[u8]) -> bool) {
    for cut in 0..bytes.len() {
        assert!(
            decode_is_err(&bytes[..cut]),
            "decoder accepted a {cut}-byte prefix of a {}-byte encoding",
            bytes.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn chronon_codec_round_trips(c in arb_chronon()) {
        let mut buf = Vec::new();
        binary::encode_chronon(c, &mut buf);
        prop_assert_eq!(binary::decode_chronon(&mut buf.as_slice()).unwrap(), c);
        assert_prefixes_err(&buf, |b| binary::decode_chronon(&mut &*b).is_err());
    }

    #[test]
    fn span_codec_round_trips(s in arb_span()) {
        let mut buf = Vec::new();
        binary::encode_span(s, &mut buf);
        prop_assert_eq!(binary::decode_span(&mut buf.as_slice()).unwrap(), s);
        assert_prefixes_err(&buf, |b| binary::decode_span(&mut &*b).is_err());
    }

    #[test]
    fn instant_codec_round_trips(i in arb_instant()) {
        let mut buf = Vec::new();
        binary::encode_instant(i, &mut buf);
        prop_assert_eq!(binary::decode_instant(&mut buf.as_slice()).unwrap(), i);
        assert_prefixes_err(&buf, |b| binary::decode_instant(&mut &*b).is_err());
    }

    #[test]
    fn period_codec_round_trips(p in arb_raw_period()) {
        let mut buf = Vec::new();
        binary::encode_period(p, &mut buf);
        prop_assert_eq!(binary::decode_period(&mut buf.as_slice()).unwrap(), p);
        assert_prefixes_err(&buf, |b| binary::decode_period(&mut &*b).is_err());
    }

    #[test]
    fn element_codec_round_trips(e in arb_raw_element()) {
        let buf = binary::element_to_vec(&e);
        prop_assert_eq!(binary::decode_element(&mut buf.as_slice()).unwrap(), e.clone());
        assert_prefixes_err(&buf, |b| binary::decode_element(&mut &*b).is_err());
    }
}
