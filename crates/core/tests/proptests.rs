//! Property-based tests for the TIP temporal algebra.
//!
//! `ResolvedElement` under union/intersect/complement is a Boolean algebra
//! over sets of chronons; these properties pin the algebraic laws, the
//! normalization invariant, and codec/text round-trips.

use proptest::prelude::*;
use tip_core::{
    agg, allen, binary, Chronon, Element, Instant, Period, ResolvedElement, ResolvedPeriod, Span,
};

fn rp(a: i64, b: i64) -> ResolvedPeriod {
    ResolvedPeriod::new(Chronon::from_raw(a).unwrap(), Chronon::from_raw(b).unwrap()).unwrap()
}

/// Strategy: arbitrary small resolved period within a window, so overlaps
/// are common.
fn arb_period() -> impl Strategy<Value = ResolvedPeriod> {
    (0i64..500, 0i64..50).prop_map(|(s, len)| rp(s, s + len))
}

fn arb_element() -> impl Strategy<Value = ResolvedElement> {
    proptest::collection::vec(arb_period(), 0..12).prop_map(ResolvedElement::normalize)
}

/// Reference model: the set of covered chronons, materialized.
fn model(e: &ResolvedElement) -> std::collections::BTreeSet<i64> {
    let mut s = std::collections::BTreeSet::new();
    for p in e.periods() {
        for t in p.start().raw()..=p.end().raw() {
            s.insert(t);
        }
    }
    s
}

fn from_model(s: &std::collections::BTreeSet<i64>) -> ResolvedElement {
    ResolvedElement::normalize(s.iter().map(|&t| rp(t, t)).collect())
}

proptest! {
    #[test]
    fn normalization_invariant_always_holds(e in arb_element()) {
        e.check_invariant().unwrap();
    }

    #[test]
    fn normalization_is_idempotent(e in arb_element()) {
        let again = ResolvedElement::normalize(e.periods().to_vec());
        prop_assert_eq!(again, e);
    }

    #[test]
    fn union_matches_set_model(a in arb_element(), b in arb_element()) {
        let got = model(&a.union(&b));
        let want: std::collections::BTreeSet<_> =
            model(&a).union(&model(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn intersect_matches_set_model(a in arb_element(), b in arb_element()) {
        let got = model(&a.intersect(&b));
        let want: std::collections::BTreeSet<_> =
            model(&a).intersection(&model(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn difference_matches_set_model(a in arb_element(), b in arb_element()) {
        let got = model(&a.difference(&b));
        let want: std::collections::BTreeSet<_> =
            model(&a).difference(&model(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn union_commutative_associative(a in arb_element(), b in arb_element(), c in arb_element()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn intersect_commutative_associative(a in arb_element(), b in arb_element(), c in arb_element()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
    }

    #[test]
    fn distributivity(a in arb_element(), b in arb_element(), c in arb_element()) {
        prop_assert_eq!(
            a.intersect(&b.union(&c)),
            a.intersect(&b).union(&a.intersect(&c))
        );
    }

    #[test]
    fn de_morgan(a in arb_element(), b in arb_element()) {
        prop_assert_eq!(
            a.union(&b).complement(),
            a.complement().intersect(&b.complement())
        );
    }

    #[test]
    fn complement_involution(a in arb_element()) {
        prop_assert_eq!(a.complement().complement(), a.clone());
        prop_assert!(a.intersect(&a.complement()).is_empty());
    }

    #[test]
    fn difference_is_intersect_complement(a in arb_element(), b in arb_element()) {
        prop_assert_eq!(a.difference(&b), a.intersect(&b.complement()));
    }

    #[test]
    fn overlaps_iff_nonempty_intersection(a in arb_element(), b in arb_element()) {
        prop_assert_eq!(a.overlaps(&b), !a.intersect(&b).is_empty());
    }

    #[test]
    fn contains_iff_union_absorbs(a in arb_element(), b in arb_element()) {
        prop_assert_eq!(a.contains_element(&b), a.union(&b) == a);
    }

    #[test]
    fn length_matches_model_cardinality(a in arb_element()) {
        prop_assert_eq!(a.length().seconds(), model(&a).len() as i64);
    }

    #[test]
    fn length_union_inclusion_exclusion(a in arb_element(), b in arb_element()) {
        let lhs = a.union(&b).length() + a.intersect(&b).length();
        prop_assert_eq!(lhs, a.length() + b.length());
    }

    #[test]
    fn group_union_equals_folded_union(elems in proptest::collection::vec(arb_element(), 0..6)) {
        let folded = elems.iter().fold(ResolvedElement::empty(), |acc, e| acc.union(e));
        prop_assert_eq!(agg::union_all(elems.iter()), folded);
    }

    #[test]
    fn model_round_trip(a in arb_element()) {
        prop_assert_eq!(from_model(&model(&a)), a);
    }

    #[test]
    fn allen_relation_partition(p in arb_period(), q in arb_period()) {
        let r = allen::relation(p, q);
        prop_assert_eq!(allen::relation(q, p), r.inverse());
        // Exactly one named predicate family matches.
        let share = p.overlaps(q);
        let rel_shares = !matches!(
            r,
            tip_core::AllenRelation::Before
                | tip_core::AllenRelation::After
                | tip_core::AllenRelation::Meets
                | tip_core::AllenRelation::MetBy
        );
        prop_assert_eq!(share, rel_shares);
    }

    #[test]
    fn chronon_civil_round_trip(secs in Chronon::BEGINNING.raw()..=Chronon::FOREVER.raw()) {
        let c = Chronon::from_raw(secs).unwrap();
        let (y, mo, d, h, mi, s) = c.to_civil();
        prop_assert_eq!(Chronon::from_ymd_hms(y, mo, d, h, mi, s).unwrap(), c);
    }

    #[test]
    fn chronon_text_round_trip(secs in Chronon::BEGINNING.raw()..=Chronon::FOREVER.raw()) {
        let c = Chronon::from_raw(secs).unwrap();
        prop_assert_eq!(c.to_string().parse::<Chronon>().unwrap(), c);
    }

    #[test]
    fn span_text_round_trip(secs in any::<i32>()) {
        let s = Span::from_seconds(secs as i64);
        prop_assert_eq!(s.to_string().parse::<Span>().unwrap(), s);
    }

    #[test]
    fn instant_text_round_trip(off in any::<i32>(), fixed in proptest::bool::ANY) {
        let i = if fixed {
            Instant::Fixed(Chronon::from_raw(off as i64).unwrap())
        } else {
            Instant::NowRelative(Span::from_seconds(off as i64))
        };
        prop_assert_eq!(i.to_string().parse::<Instant>().unwrap(), i);
    }

    #[test]
    fn element_text_round_trip(e in arb_element()) {
        let raw: Element = e.clone().into();
        let parsed: Element = raw.to_string().parse().unwrap();
        prop_assert_eq!(parsed.resolve(Chronon::EPOCH).unwrap(), e);
    }

    #[test]
    fn element_binary_round_trip(e in arb_element()) {
        let raw: Element = e.clone().into();
        let bytes = binary::element_to_vec(&raw);
        let back = binary::decode_element(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(back, raw);
    }

    #[test]
    fn now_relative_resolution_shifts_with_now(
        off in -1000i64..1000,
        now_secs in -100_000i64..100_000,
    ) {
        let i = Instant::NowRelative(Span::from_seconds(off));
        let now = Chronon::from_raw(now_secs).unwrap();
        prop_assert_eq!(i.resolve(now).unwrap().raw(), now_secs + off);
    }

    #[test]
    fn restrict_equals_intersect_with_window(a in arb_element(), p in arb_period()) {
        prop_assert_eq!(a.restrict(p), a.intersect(&ResolvedElement::from_period(p)));
    }

    #[test]
    fn shift_preserves_length_and_gaps(a in arb_element(), by in -3000i64..3000) {
        let shifted = a.shift(Span::from_seconds(by));
        prop_assert_eq!(shifted.length(), a.length());
        prop_assert_eq!(shifted.period_count(), a.period_count());
        prop_assert_eq!(shifted.shift(Span::from_seconds(-by)), a);
    }

    #[test]
    fn period_duration_positive(p in arb_period()) {
        prop_assert!(p.duration().seconds() >= 1);
    }

    #[test]
    fn coalesce_periods_equals_union_of_singletons(ps in proptest::collection::vec(arb_period(), 0..10)) {
        let coalesced = agg::coalesce_periods(ps.iter().copied());
        let unioned = ps
            .iter()
            .fold(ResolvedElement::empty(), |acc, &p| acc.union(&ResolvedElement::from_period(p)));
        prop_assert_eq!(coalesced, unioned);
    }
}

/// Non-proptest sanity check that the Period parser accepts whitespace
/// variants produced by SQL literal quoting.
#[test]
fn period_parse_whitespace_tolerant() {
    let a: Period = "[ 1999-01-01 ,  NOW ]".parse().unwrap();
    let b: Period = "[1999-01-01, NOW]".parse().unwrap();
    assert_eq!(a, b);
}

// ----- granularity and temporal aggregation properties ----------------------

use tip_core::{granularity, tagg};

fn arb_granularity() -> impl Strategy<Value = tip_core::Granularity> {
    proptest::sample::select(tip_core::Granularity::ALL.to_vec())
}

/// Chronons within a few decades of the epoch (keeps granule iteration
/// fast while covering leap years and month-length variation).
fn arb_chronon() -> impl Strategy<Value = Chronon> {
    (-1_000_000_000i64..1_000_000_000).prop_map(|s| Chronon::from_raw(s).unwrap())
}

proptest! {
    #[test]
    fn truncate_idempotent_and_bounded(c in arb_chronon(), g in arb_granularity()) {
        let t = granularity::truncate(c, g);
        prop_assert_eq!(granularity::truncate(t, g), t);
        prop_assert!(t <= c);
        prop_assert!(granularity::next_granule(c, g) > c);
    }

    #[test]
    fn granule_contains_its_chronon(c in arb_chronon(), g in arb_granularity()) {
        let cell = granularity::granule_of(c, g);
        prop_assert!(cell.contains_chronon(c));
        prop_assert_eq!(cell.start(), granularity::truncate(c, g));
    }

    #[test]
    fn granules_partition_a_period(
        s in -500_000i64..500_000,
        raw_len in 0i64..5_000_000,
        g in arb_granularity(),
    ) {
        // Keep the granule count tractable for fine granularities.
        let len = match g {
            tip_core::Granularity::Second => raw_len % 2_000,
            tip_core::Granularity::Minute => raw_len % 100_000,
            _ => raw_len,
        };
        let p = ResolvedPeriod::new(
            Chronon::from_raw(s).unwrap(),
            Chronon::from_raw(s + len).unwrap(),
        )
        .unwrap();
        let cells: Vec<ResolvedPeriod> = granularity::granules_in(p, g).collect();
        prop_assert_eq!(cells.len() as u64, granularity::granule_count(p, g).unwrap());
        // Cells are adjacent and cover the expansion exactly.
        for w in cells.windows(2) {
            prop_assert_eq!(w[0].end().succ(), w[1].start());
        }
        let expanded = granularity::expand_to(p, g);
        prop_assert_eq!(cells.first().unwrap().start(), expanded.start());
        prop_assert_eq!(cells.last().unwrap().end(), expanded.end());
        prop_assert!(expanded.contains_period(p));
    }

    #[test]
    fn temporal_count_conservation(ps in proptest::collection::vec(arb_period(), 0..12)) {
        let cis = tagg::temporal_count(&ps);
        // Weighted area equals total input duration.
        let area: i64 =
            cis.iter().map(|ci| ci.count as i64 * ci.period.duration().seconds()).sum();
        let total: i64 = ps.iter().map(|p| p.duration().seconds()).sum();
        prop_assert_eq!(area, total);
        // The union of intervals is the coalesced input.
        let union: ResolvedElement = cis.iter().map(|ci| ci.period).collect();
        let coalesced: ResolvedElement = ps.iter().copied().collect();
        prop_assert_eq!(union, coalesced);
        // Intervals are disjoint, ordered, and maximal.
        for w in cis.windows(2) {
            prop_assert!(w[0].period.end() < w[1].period.start());
            if w[0].period.end().succ() == w[1].period.start() {
                prop_assert!((w[0].count, w[0].sum) != (w[1].count, w[1].sum));
            }
        }
    }

    #[test]
    fn at_least_is_monotone_decreasing(ps in proptest::collection::vec(arb_period(), 0..10)) {
        let mut prev = tagg::at_least(&ps, 1);
        for k in 2..=4u64 {
            let cur = tagg::at_least(&ps, k);
            prop_assert!(prev.contains_element(&cur), "k={k}");
            prev = cur;
        }
        // at_least(1) is exactly the coalesced input.
        let coalesced: ResolvedElement = ps.iter().copied().collect();
        prop_assert_eq!(tagg::at_least(&ps, 1), coalesced);
    }

    #[test]
    fn max_overlap_matches_brute_force(ps in proptest::collection::vec(arb_period(), 1..8)) {
        let (k, witness) = tagg::max_overlap(&ps).unwrap();
        // Brute force at the witness start.
        let at_witness =
            ps.iter().filter(|p| p.contains_chronon(witness.start())).count() as u64;
        prop_assert_eq!(at_witness, k);
        // No chronon (sampled at all period endpoints) exceeds k.
        for p in &ps {
            for probe in [p.start(), p.end()] {
                let c = ps.iter().filter(|q| q.contains_chronon(probe)).count() as u64;
                prop_assert!(c <= k);
            }
        }
    }
}

// ---- normalize over the full timeline (FOREVER endings, adjacency) -----

/// Strategy: periods spread across the entire supported timeline, biased
/// toward the cases normalization must get right — grid-aligned blocks
/// (adjacent, so they must merge) and periods ending exactly at
/// `Chronon::FOREVER`.
fn arb_extreme_period() -> impl Strategy<Value = ResolvedPeriod> {
    let lo = Chronon::BEGINNING.raw();
    let hi = Chronon::FOREVER.raw();
    (0u64..4, lo..hi, 0i64..10_000).prop_map(move |(kind, s, len)| match kind {
        // Grid-aligned block: [10g, 10g + 9]; neighbours touch exactly.
        0 => {
            let g = s.rem_euclid(1_000);
            rp(g * 10, g * 10 + 9)
        }
        // Ends exactly at the last representable chronon.
        1 => rp((hi - len.min(hi - lo)).max(lo), hi),
        // Single chronon anywhere (also hits both timeline bounds).
        2 => rp(s, s),
        // Arbitrary bounded-length period.
        _ => rp(s, (s.saturating_add(len)).min(hi)),
    })
}

/// Independent reference: total chronons covered by a bag of periods,
/// via an i128 sweep (safe for full-timeline endpoints).
fn covered_chronons(ps: &[ResolvedPeriod]) -> i128 {
    let mut v: Vec<(i64, i64)> = ps
        .iter()
        .map(|p| (p.start().raw(), p.end().raw()))
        .collect();
    v.sort_unstable();
    let mut total: i128 = 0;
    let mut cur: Option<(i64, i64)> = None;
    for (s, e) in v {
        match &mut cur {
            Some((_, ce)) if i128::from(s) <= i128::from(*ce) + 1 => *ce = (*ce).max(e),
            _ => {
                if let Some((cs, ce)) = cur.take() {
                    total += i128::from(ce) - i128::from(cs) + 1;
                }
                cur = Some((s, e));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += i128::from(ce) - i128::from(cs) + 1;
    }
    total
}

proptest! {
    #[test]
    fn normalize_invariant_holds_across_full_timeline(
        ps in proptest::collection::vec(arb_extreme_period(), 0..16)
    ) {
        let e = ResolvedElement::normalize(ps.clone());
        e.check_invariant().unwrap();
        // Normalization neither drops nor invents chronons.
        let got: i128 = e
            .periods()
            .iter()
            .map(|p| i128::from(p.end().raw()) - i128::from(p.start().raw()) + 1)
            .sum();
        prop_assert_eq!(got, covered_chronons(&ps));
        // Idempotence on the hostile inputs too.
        prop_assert_eq!(ResolvedElement::normalize(e.periods().to_vec()), e);
    }

    #[test]
    fn adjacent_blocks_merge_into_one_period(start in -500_000i64..500_000, n in 1usize..10) {
        // n back-to-back ten-chronon blocks: [s, s+9], [s+10, s+19], ...
        let blocks: Vec<ResolvedPeriod> = (0..n)
            .map(|i| rp(start + 10 * i as i64, start + 10 * i as i64 + 9))
            .collect();
        let e = ResolvedElement::normalize(blocks);
        prop_assert_eq!(e.period_count(), 1);
        prop_assert_eq!(e.periods()[0], rp(start, start + 10 * n as i64 - 1));
        e.check_invariant().unwrap();
    }

    #[test]
    fn periods_ending_at_forever_collapse(k in 1usize..6, back in 0i64..1_000_000) {
        // Several periods all running to the end of the timeline must
        // merge into a single one that still ends at FOREVER.
        let hi = Chronon::FOREVER.raw();
        let ps: Vec<ResolvedPeriod> = (0..k)
            .map(|i| rp(hi - back - i as i64, hi))
            .collect();
        let e = ResolvedElement::normalize(ps);
        e.check_invariant().unwrap();
        prop_assert_eq!(e.period_count(), 1);
        prop_assert_eq!(e.periods()[0].end(), Chronon::FOREVER);
    }
}
