//! `Element`: a set of `Period`s — TIP's general tuple timestamp.
//!
//! The paper calls `Element` the most challenging of the five datatypes to
//! implement, "because it contains a variable number of periods whose
//! representation could feasibly grow quite large", and notes that the
//! set operations "execute in time linear in the number of periods". This
//! module reproduces that design:
//!
//! * [`Element`] holds raw (possibly NOW-relative, possibly overlapping)
//!   periods exactly as written, e.g. `{[1999-10-01, NOW]}`.
//! * [`ResolvedElement`] is the normal form after substituting the
//!   transaction time for `NOW`: a sorted list of pairwise-disjoint,
//!   non-adjacent, nonempty periods. All set algebra — union, intersect,
//!   difference, complement — runs as a single linear merge-sweep over the
//!   normalized period lists.

use crate::chronon::Chronon;
use crate::error::{Result, TemporalError};
use crate::period::{Period, ResolvedPeriod};
use crate::span::Span;
use std::fmt;
use std::str::FromStr;

/// A set of (possibly NOW-relative) periods, in the paper's notation
/// `{[a, b], [c, d], …}`.
///
/// ```
/// use tip_core::{Chronon, Element};
/// let e: Element = "{[1999-01-01, 1999-04-30], [1999-07-01, 1999-10-31]}"
///     .parse()
///     .unwrap();
/// let r = e.resolve(Chronon::EPOCH).unwrap();
/// assert_eq!(r.period_count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Element {
    periods: Vec<Period>,
}

impl Element {
    /// The empty element (no valid time at all).
    pub fn empty() -> Element {
        Element {
            periods: Vec::new(),
        }
    }

    /// Builds an element from raw periods, preserving their order and any
    /// NOW-relative endpoints (normalization happens at resolution).
    pub fn from_periods(periods: Vec<Period>) -> Element {
        Element { periods }
    }

    /// The single-period element (the paper's `Period → Element` cast).
    pub fn from_period(p: Period) -> Element {
        Element { periods: vec![p] }
    }

    /// The raw periods as written.
    pub fn raw_periods(&self) -> &[Period] {
        &self.periods
    }

    /// `true` when any contained instant is NOW-relative.
    pub fn is_now_relative(&self) -> bool {
        self.periods.iter().any(|p| p.is_now_relative())
    }

    /// `true` when the element contains no periods at all (before
    /// resolution; a non-empty raw element can still resolve to empty).
    pub fn is_raw_empty(&self) -> bool {
        self.periods.is_empty()
    }

    /// Substitutes the transaction time for `NOW` and normalizes.
    pub fn resolve(&self, now: Chronon) -> Result<ResolvedElement> {
        let mut rs = Vec::with_capacity(self.periods.len());
        for p in &self.periods {
            if let Some(r) = p.resolve(now)? {
                rs.push(r);
            }
        }
        Ok(ResolvedElement::normalize(rs))
    }

    /// Shifts every period by a span, preserving NOW-relativity.
    pub fn shift(&self, s: Span) -> Result<Element> {
        let mut periods = Vec::with_capacity(self.periods.len());
        for p in &self.periods {
            periods.push(p.shift(s)?);
        }
        Ok(Element { periods })
    }
}

impl From<ResolvedElement> for Element {
    fn from(r: ResolvedElement) -> Element {
        Element {
            periods: r.periods.into_iter().map(Period::from).collect(),
        }
    }
}

impl From<Period> for Element {
    fn from(p: Period) -> Element {
        Element::from_period(p)
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, p) in self.periods.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str("}")
    }
}

impl fmt::Debug for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Element{self}")
    }
}

impl FromStr for Element {
    type Err = TemporalError;
    fn from_str(text: &str) -> Result<Element> {
        let err = |reason: &str| TemporalError::Parse {
            what: "Element",
            input: text.to_owned(),
            reason: reason.to_owned(),
        };
        let t = text.trim();
        let inner = t
            .strip_prefix('{')
            .and_then(|x| x.strip_suffix('}'))
            .ok_or_else(|| err("expected {…}"))?
            .trim();
        if inner.is_empty() {
            return Ok(Element::empty());
        }
        // Split on commas that sit between ']' and '[' — commas inside a
        // period literal separate its two instants.
        let mut periods = Vec::new();
        let mut depth = 0usize;
        let mut piece_start = 0usize;
        for (i, ch) in inner.char_indices() {
            match ch {
                '[' => depth += 1,
                ']' => depth = depth.checked_sub(1).ok_or_else(|| err("unbalanced ']'"))?,
                ',' if depth == 0 => {
                    periods.push(inner[piece_start..i].trim().parse::<Period>()?);
                    piece_start = i + 1;
                }
                _ => {}
            }
        }
        if depth != 0 {
            return Err(err("unbalanced '['"));
        }
        periods.push(inner[piece_start..].trim().parse::<Period>()?);
        Ok(Element { periods })
    }
}

/// A fixed, normalized temporal element: sorted, pairwise-disjoint,
/// non-adjacent, nonempty periods.
///
/// All operations preserve the normalization invariant and the set ones
/// run in time linear in the total number of periods.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct ResolvedElement {
    periods: Vec<ResolvedPeriod>,
}

impl ResolvedElement {
    /// The empty set of chronons.
    pub fn empty() -> ResolvedElement {
        ResolvedElement {
            periods: Vec::new(),
        }
    }

    /// The element covering the whole supported timeline.
    pub fn all_time() -> ResolvedElement {
        ResolvedElement {
            periods: vec![ResolvedPeriod::ALL_TIME],
        }
    }

    /// A single-period element.
    pub fn from_period(p: ResolvedPeriod) -> ResolvedElement {
        ResolvedElement { periods: vec![p] }
    }

    /// Normalizes an arbitrary bag of periods: sort by start, then merge
    /// every overlapping or adjacent pair. `O(n log n)` for unsorted
    /// input; the merge pass itself is linear.
    pub fn normalize(mut periods: Vec<ResolvedPeriod>) -> ResolvedElement {
        if periods.is_empty() {
            return ResolvedElement::empty();
        }
        periods.sort_unstable_by_key(|p| (p.start(), p.end()));
        let mut out: Vec<ResolvedPeriod> = Vec::with_capacity(periods.len());
        for p in periods {
            match out.last_mut() {
                Some(last) => match last.merge(p) {
                    Some(m) => *last = m,
                    None => out.push(p),
                },
                None => out.push(p),
            }
        }
        ResolvedElement { periods: out }
    }

    /// Builds from periods already known to satisfy the invariant;
    /// debug-asserts it.
    pub fn from_normalized(periods: Vec<ResolvedPeriod>) -> ResolvedElement {
        let e = ResolvedElement { periods };
        debug_assert!(e.check_invariant().is_ok());
        e
    }

    /// Verifies the normalization invariant (used by tests and by the
    /// binary decoder on untrusted input).
    pub fn check_invariant(&self) -> Result<()> {
        for w in self.periods.windows(2) {
            let gap_ok = w[0].end() < Chronon::FOREVER && w[0].end().succ() < w[1].start();
            if !gap_ok {
                return Err(TemporalError::Corrupt {
                    what: "ResolvedElement",
                    reason: format!("periods {} and {} are not separated", w[0], w[1]),
                });
            }
        }
        Ok(())
    }

    /// The normalized periods, sorted by start.
    pub fn periods(&self) -> &[ResolvedPeriod] {
        &self.periods
    }

    /// Number of maximal periods.
    pub fn period_count(&self) -> usize {
        self.periods.len()
    }

    /// `true` when the element denotes the empty set of chronons.
    pub fn is_empty(&self) -> bool {
        self.periods.is_empty()
    }

    /// The first period, or an error on the empty element.
    pub fn first(&self) -> Result<ResolvedPeriod> {
        self.periods
            .first()
            .copied()
            .ok_or(TemporalError::EmptyElement { what: "first" })
    }

    /// The last period.
    pub fn last(&self) -> Result<ResolvedPeriod> {
        self.periods
            .last()
            .copied()
            .ok_or(TemporalError::EmptyElement { what: "last" })
    }

    /// The `i`-th period (0-based).
    pub fn nth(&self, i: usize) -> Result<ResolvedPeriod> {
        self.periods
            .get(i)
            .copied()
            .ok_or(TemporalError::IndexOutOfBounds {
                index: i,
                len: self.periods.len(),
            })
    }

    /// The start of the first period — the paper's `start(valid)` routine.
    pub fn start(&self) -> Result<Chronon> {
        self.first().map(|p| p.start())
    }

    /// The end of the last period.
    pub fn end(&self) -> Result<Chronon> {
        self.last().map(|p| p.end())
    }

    /// Total covered time — the paper's `length(…)` routine. Sums the
    /// durations of the (disjoint) periods.
    pub fn length(&self) -> Span {
        self.periods.iter().map(|p| p.duration()).sum()
    }

    /// Set union via a linear merge of the two sorted period lists.
    pub fn union(&self, other: &ResolvedElement) -> ResolvedElement {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut out: Vec<ResolvedPeriod> =
            Vec::with_capacity(self.periods.len() + other.periods.len());
        let (mut i, mut j) = (0, 0);
        let push = |out: &mut Vec<ResolvedPeriod>, p: ResolvedPeriod| match out.last_mut() {
            Some(last) => match last.merge(p) {
                Some(m) => *last = m,
                None => out.push(p),
            },
            None => out.push(p),
        };
        while i < self.periods.len() && j < other.periods.len() {
            if self.periods[i].start() <= other.periods[j].start() {
                push(&mut out, self.periods[i]);
                i += 1;
            } else {
                push(&mut out, other.periods[j]);
                j += 1;
            }
        }
        for &p in &self.periods[i..] {
            push(&mut out, p);
        }
        for &p in &other.periods[j..] {
            push(&mut out, p);
        }
        ResolvedElement { periods: out }
    }

    /// Set intersection via a linear two-pointer sweep.
    pub fn intersect(&self, other: &ResolvedElement) -> ResolvedElement {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.periods.len() && j < other.periods.len() {
            let a = self.periods[i];
            let b = other.periods[j];
            if let Some(x) = a.intersect(b) {
                out.push(x);
            }
            // Advance whichever period ends first.
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        // The pieces come out sorted and disjoint but may abut; normalize
        // cheaply with the same merge pass (already sorted, so linear).
        let mut merged: Vec<ResolvedPeriod> = Vec::with_capacity(out.len());
        for p in out {
            match merged.last_mut().and_then(|last| last.merge(p)) {
                Some(m) => *merged.last_mut().unwrap() = m,
                None => merged.push(p),
            }
        }
        ResolvedElement { periods: merged }
    }

    /// Set difference `self \ other` via a linear sweep.
    pub fn difference(&self, other: &ResolvedElement) -> ResolvedElement {
        let mut out = Vec::new();
        let mut j = 0;
        for &a in &self.periods {
            let mut cur_start = a.start();
            while j < other.periods.len() && other.periods[j].end() < cur_start {
                j += 1;
            }
            let mut k = j;
            let mut alive = true;
            while alive && k < other.periods.len() && other.periods[k].start() <= a.end() {
                let b = other.periods[k];
                if b.start() > cur_start {
                    // Keep the uncovered prefix [cur_start, b.start - 1].
                    out.push(
                        ResolvedPeriod::new(cur_start, b.start().pred())
                            .expect("prefix is nonempty"),
                    );
                }
                if b.end() >= a.end() {
                    alive = false;
                } else {
                    cur_start = cur_start.max(b.end().succ());
                    k += 1;
                }
            }
            if alive && cur_start <= a.end() {
                out.push(ResolvedPeriod::new(cur_start, a.end()).expect("suffix is nonempty"));
            }
        }
        ResolvedElement { periods: out }
    }

    /// Complement within the whole supported timeline.
    pub fn complement(&self) -> ResolvedElement {
        ResolvedElement::all_time().difference(self)
    }

    /// Do the two elements share at least one chronon? (The paper's
    /// `overlaps(p1.valid, p2.valid)` predicate.) Linear sweep with early
    /// exit.
    pub fn overlaps(&self, other: &ResolvedElement) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.periods.len() && j < other.periods.len() {
            let a = self.periods[i];
            let b = other.periods[j];
            if a.overlaps(b) {
                return true;
            }
            if a.end() < b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Does `self` cover every chronon of `other`?
    pub fn contains_element(&self, other: &ResolvedElement) -> bool {
        other.difference(self).is_empty()
    }

    /// Does `self` cover the whole period `p`?
    pub fn contains_period(&self, p: ResolvedPeriod) -> bool {
        // Invariant: periods are disjoint and non-adjacent, so p must sit
        // inside a single one. Binary search by start.
        let idx = self.periods.partition_point(|q| q.start() <= p.start());
        idx > 0 && self.periods[idx - 1].contains_period(p)
    }

    /// Does `self` contain the chronon `c`?
    pub fn contains_chronon(&self, c: Chronon) -> bool {
        self.contains_period(ResolvedPeriod::at(c))
    }

    /// Restricts the element to a window (intersection with one period).
    pub fn restrict(&self, window: ResolvedPeriod) -> ResolvedElement {
        self.intersect(&ResolvedElement::from_period(window))
    }

    /// The gaps *between* the element's periods: the uncovered time
    /// within `[start, end]`. Empty for elements with fewer than two
    /// periods.
    pub fn gaps(&self) -> ResolvedElement {
        match (self.periods.first(), self.periods.last()) {
            (Some(first), Some(last)) if self.periods.len() >= 2 => {
                let extent =
                    ResolvedPeriod::new(first.start(), last.end()).expect("extent ordered");
                ResolvedElement::from_period(extent).difference(self)
            }
            _ => ResolvedElement::empty(),
        }
    }

    /// Shifts every period by a span (saturating at timeline bounds).
    pub fn shift(&self, s: Span) -> ResolvedElement {
        ResolvedElement::normalize(self.periods.iter().map(|p| p.shift(s)).collect())
    }

    /// Grows each period by `s` on both sides (a morphological dilation;
    /// with a negative span, an erosion).
    pub fn extend(&self, s: Span) -> ResolvedElement {
        ResolvedElement::normalize(self.periods.iter().filter_map(|p| p.extend(s)).collect())
    }
}

impl fmt::Display for ResolvedElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, p) in self.periods.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str("}")
    }
}

impl fmt::Debug for ResolvedElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ResolvedElement{self}")
    }
}

impl FromIterator<ResolvedPeriod> for ResolvedElement {
    fn from_iter<T: IntoIterator<Item = ResolvedPeriod>>(iter: T) -> ResolvedElement {
        ResolvedElement::normalize(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Chronon {
        s.parse().unwrap()
    }

    fn re(text: &str) -> ResolvedElement {
        text.parse::<Element>()
            .unwrap()
            .resolve(Chronon::EPOCH)
            .unwrap()
    }

    fn rp(a: i64, b: i64) -> ResolvedPeriod {
        ResolvedPeriod::new(Chronon::from_raw(a).unwrap(), Chronon::from_raw(b).unwrap()).unwrap()
    }

    fn rel(pairs: &[(i64, i64)]) -> ResolvedElement {
        ResolvedElement::normalize(pairs.iter().map(|&(a, b)| rp(a, b)).collect())
    }

    #[test]
    fn parse_paper_example() {
        // "{[1999-01-01, 1999-04-30], [1999-07-01, 1999-10-31]} denotes
        //  from January to April, and then from July to October"
        let e: Element = "{[1999-01-01, 1999-04-30], [1999-07-01, 1999-10-31]}"
            .parse()
            .unwrap();
        assert_eq!(e.raw_periods().len(), 2);
        assert_eq!(
            e.to_string(),
            "{[1999-01-01, 1999-04-30], [1999-07-01, 1999-10-31]}"
        );
    }

    #[test]
    fn parse_with_now() {
        let e: Element = "{[1999-10-01, NOW]}".parse().unwrap();
        assert!(e.is_now_relative());
        let r = e.resolve(c("1999-12-01")).unwrap();
        assert_eq!(r.start().unwrap(), c("1999-10-01"));
        assert_eq!(r.end().unwrap(), c("1999-12-01"));
    }

    #[test]
    fn parse_empty_and_garbage() {
        assert!("{}".parse::<Element>().unwrap().is_raw_empty());
        assert!("{ }".parse::<Element>().unwrap().is_raw_empty());
        for bad in ["", "{", "}", "{[a,b]}", "{[1999-01-01, 1999-02-01]", "{]}"] {
            assert!(bad.parse::<Element>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn normalize_sorts_merges_and_drops_empties() {
        let e = ResolvedElement::normalize(vec![rp(50, 60), rp(0, 10), rp(5, 20), rp(21, 30)]);
        // [0,10] ∪ [5,20] overlap; [21,30] abuts [.,20]; [50,60] separate.
        assert_eq!(e.periods(), &[rp(0, 30), rp(50, 60)]);
        e.check_invariant().unwrap();
    }

    #[test]
    fn resolution_drops_inverted_periods() {
        let e: Element = "{[1999-01-01, NOW], [2005-01-01, 2006-01-01]}"
            .parse()
            .unwrap();
        let r = e.resolve(c("1998-01-01")).unwrap();
        assert_eq!(r.period_count(), 1);
        assert_eq!(r.start().unwrap(), c("2005-01-01"));
    }

    #[test]
    fn union_linear_merge() {
        let a = rel(&[(0, 10), (20, 30), (100, 110)]);
        let b = rel(&[(5, 25), (40, 50)]);
        let u = a.union(&b);
        assert_eq!(u.periods(), &[rp(0, 30), rp(40, 50), rp(100, 110)]);
        u.check_invariant().unwrap();
        // Union with empty is identity.
        assert_eq!(a.union(&ResolvedElement::empty()), a);
        assert_eq!(ResolvedElement::empty().union(&a), a);
    }

    #[test]
    fn union_merges_adjacent_across_sides() {
        let a = rel(&[(0, 9)]);
        let b = rel(&[(10, 20)]);
        assert_eq!(a.union(&b).periods(), &[rp(0, 20)]);
    }

    #[test]
    fn intersect_sweep() {
        let a = rel(&[(0, 10), (20, 30), (50, 60)]);
        let b = rel(&[(5, 25), (55, 100)]);
        let i = a.intersect(&b);
        assert_eq!(i.periods(), &[rp(5, 10), rp(20, 25), rp(55, 60)]);
        assert!(a.intersect(&ResolvedElement::empty()).is_empty());
    }

    #[test]
    fn difference_cases() {
        let a = rel(&[(0, 100)]);
        let b = rel(&[(10, 20), (40, 50)]);
        let d = a.difference(&b);
        assert_eq!(d.periods(), &[rp(0, 9), rp(21, 39), rp(51, 100)]);

        // Subtrahend covers everything.
        assert!(rel(&[(5, 8)]).difference(&rel(&[(0, 10)])).is_empty());
        // Subtrahend disjoint.
        assert_eq!(rel(&[(5, 8)]).difference(&rel(&[(20, 30)])), rel(&[(5, 8)]));
        // Subtract from both ends.
        let d = rel(&[(10, 20)]).difference(&rel(&[(0, 12), (18, 30)]));
        assert_eq!(d.periods(), &[rp(13, 17)]);
        // Multiple minuend periods against one subtrahend.
        let d = rel(&[(0, 5), (10, 15), (20, 25)]).difference(&rel(&[(3, 22)]));
        assert_eq!(d.periods(), &[rp(0, 2), rp(23, 25)]);
    }

    #[test]
    fn complement_involution() {
        let a = rel(&[(0, 10), (20, 30)]);
        assert_eq!(a.complement().complement(), a);
        assert!(ResolvedElement::all_time().complement().is_empty());
        assert_eq!(
            ResolvedElement::empty().complement(),
            ResolvedElement::all_time()
        );
    }

    #[test]
    fn overlaps_predicate() {
        let a = rel(&[(0, 10), (100, 110)]);
        assert!(a.overlaps(&rel(&[(50, 105)])));
        assert!(!a.overlaps(&rel(&[(11, 99)])));
        assert!(!a.overlaps(&ResolvedElement::empty()));
    }

    #[test]
    fn contains_queries() {
        let a = rel(&[(0, 10), (20, 30)]);
        assert!(a.contains_period(rp(2, 8)));
        assert!(!a.contains_period(rp(8, 22)));
        assert!(a.contains_chronon(Chronon::from_raw(25).unwrap()));
        assert!(!a.contains_chronon(Chronon::from_raw(15).unwrap()));
        assert!(a.contains_element(&rel(&[(0, 5), (25, 30)])));
        assert!(!a.contains_element(&rel(&[(0, 15)])));
        assert!(a.contains_element(&ResolvedElement::empty()));
    }

    #[test]
    fn length_sums_disjoint_periods() {
        let e = re("{[1999-01-01, 1999-01-01 23:59:59], [1999-03-01, 1999-03-02 23:59:59]}");
        assert_eq!(e.length(), Span::from_days(3));
        assert_eq!(ResolvedElement::empty().length(), Span::ZERO);
    }

    #[test]
    fn accessors() {
        let e = re("{[1999-01-01, 1999-04-30], [1999-07-01, 1999-10-31]}");
        assert_eq!(e.start().unwrap(), c("1999-01-01"));
        assert_eq!(e.end().unwrap(), c("1999-10-31"));
        assert_eq!(e.first().unwrap().end(), c("1999-04-30"));
        assert_eq!(e.last().unwrap().start(), c("1999-07-01"));
        assert_eq!(e.nth(1).unwrap().start(), c("1999-07-01"));
        assert!(e.nth(2).is_err());
        assert!(ResolvedElement::empty().start().is_err());
    }

    #[test]
    fn gaps_between_periods() {
        let e = rel(&[(0, 10), (20, 30), (50, 60)]);
        assert_eq!(e.gaps().periods(), &[rp(11, 19), rp(31, 49)]);
        // Gaps of the gaps are the interior periods.
        assert_eq!(e.gaps().gaps().periods(), &[rp(20, 30)]);
        assert!(rel(&[(0, 10)]).gaps().is_empty());
        assert!(ResolvedElement::empty().gaps().is_empty());
        // Union of element and its gaps is one solid period.
        let solid = e.union(&e.gaps());
        assert_eq!(solid.periods(), &[rp(0, 60)]);
    }

    #[test]
    fn restrict_window() {
        let e = rel(&[(0, 10), (20, 30)]);
        let w = e.restrict(rp(5, 25));
        assert_eq!(w.periods(), &[rp(5, 10), rp(20, 25)]);
    }

    #[test]
    fn shift_and_extend() {
        let e = rel(&[(0, 10), (20, 30)]);
        assert_eq!(e.shift(Span::from_seconds(5)), rel(&[(5, 15), (25, 35)]));
        // Extending by 5 merges the two periods (gap of 9 < 2*5+1).
        assert_eq!(e.extend(Span::from_seconds(5)), rel(&[(-5, 35)]));
        // Eroding by 6 kills both 11-chronon periods.
        assert!(e.extend(Span::from_seconds(-6)).is_empty());
    }

    #[test]
    fn round_trip_through_raw_element() {
        let r = rel(&[(0, 10), (20, 30)]);
        let raw: Element = r.clone().into();
        assert_eq!(raw.resolve(Chronon::EPOCH).unwrap(), r);
    }

    #[test]
    fn from_iterator_normalizes() {
        let e: ResolvedElement = [rp(5, 10), rp(0, 6)].into_iter().collect();
        assert_eq!(e.periods(), &[rp(0, 10)]);
    }
}
