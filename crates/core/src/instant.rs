//! `Instant`: a `Chronon` or a NOW-relative time.
//!
//! A NOW-relative `Instant` is an offset of type [`Span`] from the special
//! symbol `NOW`, whose interpretation changes as time advances: `NOW-1`
//! denotes yesterday (paper §2). Comparing a NOW-relative instant against a
//! fixed one therefore requires a transaction time; see
//! [`Instant::cmp_at`] and [`Instant::partial_cmp_static`].

use crate::chronon::{parse_chronon_str, Chronon};
use crate::error::{Result, TemporalError};
use crate::span::Span;
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// A point in time that is either fixed or NOW-relative.
///
/// ```
/// use tip_core::{Chronon, Instant, Span};
/// let yesterday: Instant = "NOW-1".parse().unwrap();
/// let now = Chronon::from_ymd(1999, 9, 23).unwrap();
/// assert_eq!(yesterday.resolve(now).unwrap().to_string(), "1999-09-22");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instant {
    /// A fixed point in time.
    Fixed(Chronon),
    /// `NOW + offset`; the offset may be negative (`NOW-1` = yesterday).
    NowRelative(Span),
}

impl Instant {
    /// The unshifted `NOW`.
    pub const NOW: Instant = Instant::NowRelative(Span::ZERO);

    /// `true` when the instant depends on the current transaction time.
    pub fn is_now_relative(self) -> bool {
        matches!(self, Instant::NowRelative(_))
    }

    /// Substitutes `now` for the symbol `NOW` (the paper's
    /// `Instant → Chronon` cast). Saturates at the timeline bounds so that
    /// e.g. `NOW + 20000 years` degrades to `FOREVER` rather than failing.
    pub fn resolve(self, now: Chronon) -> Result<Chronon> {
        match self {
            Instant::Fixed(c) => Ok(c),
            Instant::NowRelative(off) => Ok(now.saturating_add(off)),
        }
    }

    /// The fixed chronon, or an error if the instant is NOW-relative.
    pub fn as_fixed(self) -> Result<Chronon> {
        match self {
            Instant::Fixed(c) => Ok(c),
            Instant::NowRelative(_) => Err(TemporalError::UnresolvedNow { what: "Instant" }),
        }
    }

    /// Compares two instants under a given transaction time. The paper
    /// notes that the result "may change as time advances" when one side
    /// is NOW-relative.
    pub fn cmp_at(self, other: Instant, now: Chronon) -> Ordering {
        let a = self.resolve(now).expect("resolve is infallible");
        let b = other.resolve(now).expect("resolve is infallible");
        a.cmp(&b)
    }

    /// Compares two instants *without* a transaction time, when possible:
    /// two fixed instants or two NOW-relative instants are always
    /// comparable, a mixed pair is not.
    pub fn partial_cmp_static(self, other: Instant) -> Option<Ordering> {
        match (self, other) {
            (Instant::Fixed(a), Instant::Fixed(b)) => Some(a.cmp(&b)),
            (Instant::NowRelative(a), Instant::NowRelative(b)) => Some(a.cmp(&b)),
            _ => None,
        }
    }

    /// Shifts the instant by a span, preserving NOW-relativity.
    pub fn shift(self, s: Span) -> Result<Instant> {
        match self {
            Instant::Fixed(c) => c.checked_add(s).map(Instant::Fixed),
            Instant::NowRelative(off) => off.checked_add(s).map(Instant::NowRelative),
        }
    }
}

impl From<Chronon> for Instant {
    fn from(c: Chronon) -> Instant {
        Instant::Fixed(c)
    }
}

impl std::ops::Add<Span> for Instant {
    type Output = Instant;
    fn add(self, rhs: Span) -> Instant {
        self.shift(rhs).expect("Instant + Span out of range")
    }
}

impl std::ops::Sub<Span> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Span) -> Instant {
        self.shift(-rhs).expect("Instant - Span out of range")
    }
}

impl fmt::Display for Instant {
    /// `NOW`, `NOW-7`, `NOW+0 12:00:00`, or a chronon literal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instant::Fixed(c) => write!(f, "{c}"),
            Instant::NowRelative(off) if off.is_zero() => write!(f, "NOW"),
            Instant::NowRelative(off) if off.is_negative() => write!(f, "NOW-{}", off.abs()),
            Instant::NowRelative(off) => write!(f, "NOW+{off}"),
        }
    }
}

impl fmt::Debug for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Instant({self})")
    }
}

impl FromStr for Instant {
    type Err = TemporalError;
    fn from_str(text: &str) -> Result<Instant> {
        let t = text.trim();
        let upper_is_now = t.len() >= 3 && t[..3].eq_ignore_ascii_case("now");
        if upper_is_now {
            let rest = t[3..].trim_start();
            if rest.is_empty() {
                return Ok(Instant::NOW);
            }
            let (sign, body) = match rest.as_bytes()[0] {
                b'+' => (1, &rest[1..]),
                b'-' => (-1, &rest[1..]),
                _ => {
                    return Err(TemporalError::Parse {
                        what: "Instant",
                        input: text.to_owned(),
                        reason: "expected '+' or '-' after NOW".to_owned(),
                    })
                }
            };
            let off: Span = body.trim().parse().map_err(|_| TemporalError::Parse {
                what: "Instant",
                input: text.to_owned(),
                reason: "invalid Span offset after NOW".to_owned(),
            })?;
            return Ok(Instant::NowRelative(if sign < 0 { -off } else { off }));
        }
        parse_chronon_str(t)
            .map(Instant::Fixed)
            .map_err(|_| TemporalError::Parse {
                what: "Instant",
                input: text.to_owned(),
                reason: "expected NOW[+|-span] or a Chronon literal".to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Chronon {
        s.parse().unwrap()
    }

    #[test]
    fn parse_now_variants() {
        assert_eq!("NOW".parse::<Instant>().unwrap(), Instant::NOW);
        assert_eq!("now".parse::<Instant>().unwrap(), Instant::NOW);
        assert_eq!(
            "NOW-1".parse::<Instant>().unwrap(),
            Instant::NowRelative(Span::from_days(-1))
        );
        assert_eq!(
            "NOW+7 12:00:00".parse::<Instant>().unwrap(),
            Instant::NowRelative("7 12:00:00".parse().unwrap())
        );
        assert_eq!(
            "NOW - 2".parse::<Instant>().unwrap(),
            Instant::NowRelative(Span::from_days(-2))
        );
    }

    #[test]
    fn parse_fixed() {
        assert_eq!(
            "1999-09-01".parse::<Instant>().unwrap(),
            Instant::Fixed(c("1999-09-01"))
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "NOW*3", "NOWX", "nowhere-1", "1999"] {
            assert!(bad.parse::<Instant>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_round_trip() {
        for text in [
            "NOW",
            "NOW-1",
            "NOW+7 12:00:00",
            "1999-09-01",
            "1999-09-01 08:00:00",
        ] {
            let i: Instant = text.parse().unwrap();
            assert_eq!(i.to_string(), text);
        }
    }

    #[test]
    fn resolve_paper_example() {
        // "NOW-1 becomes 1999-09-22 if today's date is 1999-09-23"
        let i: Instant = "NOW-1".parse().unwrap();
        assert_eq!(i.resolve(c("1999-09-23")).unwrap(), c("1999-09-22"));
    }

    #[test]
    fn resolve_fixed_ignores_now() {
        let i: Instant = "1999-09-01".parse().unwrap();
        assert_eq!(i.resolve(c("2020-01-01")).unwrap(), c("1999-09-01"));
    }

    #[test]
    fn resolve_saturates_at_bounds() {
        let i = Instant::NowRelative(Span::from_days(10_000_000));
        assert_eq!(i.resolve(Chronon::EPOCH).unwrap(), Chronon::FOREVER);
        let i = Instant::NowRelative(Span::from_days(-10_000_000));
        assert_eq!(i.resolve(Chronon::EPOCH).unwrap(), Chronon::BEGINNING);
    }

    #[test]
    fn as_fixed() {
        assert!(Instant::NOW.as_fixed().is_err());
        assert_eq!(
            Instant::Fixed(Chronon::EPOCH).as_fixed().unwrap(),
            Chronon::EPOCH
        );
    }

    #[test]
    fn comparison_changes_as_time_advances() {
        // Paper §2: "the result of comparing a Chronon to a NOW-relative
        // Instant may change as time advances."
        let fixed = Instant::Fixed(c("1999-09-23"));
        let week_ago: Instant = "NOW-7".parse().unwrap();
        assert_eq!(week_ago.cmp_at(fixed, c("1999-09-01")), Ordering::Less);
        assert_eq!(week_ago.cmp_at(fixed, c("1999-09-30")), Ordering::Equal);
        assert_eq!(week_ago.cmp_at(fixed, c("1999-12-01")), Ordering::Greater);
    }

    #[test]
    fn static_comparison() {
        let a = Instant::Fixed(c("1999-01-01"));
        let b = Instant::Fixed(c("1999-02-01"));
        assert_eq!(a.partial_cmp_static(b), Some(Ordering::Less));
        let x: Instant = "NOW-7".parse().unwrap();
        let y: Instant = "NOW-1".parse().unwrap();
        assert_eq!(x.partial_cmp_static(y), Some(Ordering::Less));
        assert_eq!(a.partial_cmp_static(x), None);
    }

    #[test]
    fn shift_preserves_relativity() {
        let i: Instant = "NOW-1".parse().unwrap();
        assert_eq!((i + Span::from_days(1)).to_string(), "NOW");
        let f: Instant = "1999-09-01".parse().unwrap();
        assert_eq!((f + Span::from_days(1)).to_string(), "1999-09-02");
        assert_eq!((f - Span::from_days(1)).to_string(), "1999-08-31");
    }
}
