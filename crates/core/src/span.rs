//! `Span`: a signed duration of time between two `Chronon`s.
//!
//! The paper's notation is `[+|-]days[ hours:minutes:seconds]`; for
//! example `7 12:00:00` is seven and a half days and `-7` is seven days
//! back. Internally a `Span` is a signed count of seconds.

use crate::error::{Result, TemporalError};
use std::fmt;
use std::str::FromStr;

/// A signed duration at one-second granularity.
///
/// ```
/// use tip_core::Span;
/// let s: Span = "7 12:00:00".parse().unwrap();
/// assert_eq!(s, Span::from_days(7) + Span::from_hours(12));
/// assert_eq!((-s).to_string(), "-7 12:00:00");
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span(i64);

impl Span {
    /// The zero-length span.
    pub const ZERO: Span = Span(0);
    /// One second.
    pub const SECOND: Span = Span(1);
    /// One minute.
    pub const MINUTE: Span = Span(60);
    /// One hour.
    pub const HOUR: Span = Span(3600);
    /// One day.
    pub const DAY: Span = Span(86_400);
    /// One week.
    pub const WEEK: Span = Span(7 * 86_400);

    /// Builds a span from a raw second count.
    pub const fn from_seconds(secs: i64) -> Span {
        Span(secs)
    }

    /// Builds a span of whole minutes.
    pub const fn from_minutes(m: i64) -> Span {
        Span(m * 60)
    }

    /// Builds a span of whole hours.
    pub const fn from_hours(h: i64) -> Span {
        Span(h * 3600)
    }

    /// Builds a span of whole days.
    pub const fn from_days(d: i64) -> Span {
        Span(d * 86_400)
    }

    /// Builds a span of whole weeks.
    pub const fn from_weeks(w: i64) -> Span {
        Span(w * 7 * 86_400)
    }

    /// Builds a span from day and time-of-day components, all applied with
    /// the given overall sign (mirroring the textual notation).
    ///
    /// Panics when the total second count overflows; parsing user input
    /// goes through [`Span::try_from_parts`] instead.
    pub fn from_parts(negative: bool, days: i64, hours: i64, minutes: i64, seconds: i64) -> Span {
        Span::try_from_parts(negative, days, hours, minutes, seconds)
            .expect("Span components out of range")
    }

    /// Checked variant of [`Span::from_parts`] — the entry point for text
    /// parsing, where a hostile day count must not panic.
    pub fn try_from_parts(
        negative: bool,
        days: i64,
        hours: i64,
        minutes: i64,
        seconds: i64,
    ) -> Result<Span> {
        let out_of_range = || TemporalError::OutOfRange { what: "Span" };
        let magnitude = days
            .checked_mul(86_400)
            .and_then(|d| d.checked_add(hours.checked_mul(3600)?))
            .and_then(|t| t.checked_add(minutes.checked_mul(60)?))
            .and_then(|t| t.checked_add(seconds))
            .ok_or_else(out_of_range)?;
        if negative {
            magnitude.checked_neg().map(Span).ok_or_else(out_of_range)
        } else {
            Ok(Span(magnitude))
        }
    }

    /// The total number of seconds (signed).
    pub const fn seconds(self) -> i64 {
        self.0
    }

    /// The number of whole days (truncated toward zero).
    pub const fn whole_days(self) -> i64 {
        self.0 / 86_400
    }

    /// `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` when the duration is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// The absolute duration.
    pub const fn abs(self) -> Span {
        Span(self.0.abs())
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Span) -> Result<Span> {
        self.0
            .checked_add(rhs.0)
            .map(Span)
            .ok_or(TemporalError::OutOfRange {
                what: "Span + Span",
            })
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Span) -> Result<Span> {
        self.0
            .checked_sub(rhs.0)
            .map(Span)
            .ok_or(TemporalError::OutOfRange {
                what: "Span - Span",
            })
    }

    /// Checked negation (fails only for the most negative span, which is
    /// constructible from SQL via `INT::Span`).
    pub fn checked_neg(self) -> Result<Span> {
        self.0
            .checked_neg()
            .map(Span)
            .ok_or(TemporalError::OutOfRange { what: "-Span" })
    }

    /// Checked multiplication by an integer scale factor (the paper's
    /// `'7 00:00:00'::Span * :w` idiom).
    pub fn checked_mul(self, k: i64) -> Result<Span> {
        self.0
            .checked_mul(k)
            .map(Span)
            .ok_or(TemporalError::OutOfRange { what: "Span * INT" })
    }

    /// Integer division by a scale factor.
    pub fn checked_div(self, k: i64) -> Result<Span> {
        if k == 0 {
            Err(TemporalError::DivisionByZero)
        } else {
            Ok(Span(self.0 / k))
        }
    }

    /// The ratio of two spans as a floating-point number
    /// (`Span / Span` in SQL).
    pub fn ratio(self, rhs: Span) -> Result<f64> {
        if rhs.0 == 0 {
            Err(TemporalError::DivisionByZero)
        } else {
            Ok(self.0 as f64 / rhs.0 as f64)
        }
    }
}

impl std::ops::Add for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Span {
    type Output = Span;
    fn sub(self, rhs: Span) -> Span {
        Span(self.0 - rhs.0)
    }
}

impl std::ops::Neg for Span {
    type Output = Span;
    fn neg(self) -> Span {
        Span(-self.0)
    }
}

impl std::ops::Mul<i64> for Span {
    type Output = Span;
    fn mul(self, rhs: i64) -> Span {
        Span(self.0 * rhs)
    }
}

impl std::ops::Mul<Span> for i64 {
    type Output = Span;
    fn mul(self, rhs: Span) -> Span {
        Span(self * rhs.0)
    }
}

impl std::ops::Div<i64> for Span {
    type Output = Span;
    fn div(self, rhs: i64) -> Span {
        Span(self.0 / rhs)
    }
}

impl std::iter::Sum for Span {
    fn sum<I: Iterator<Item = Span>>(iter: I) -> Span {
        Span(iter.map(|s| s.0).sum())
    }
}

impl fmt::Display for Span {
    /// Paper notation: `[+|-]days[ hours:minutes:seconds]`, omitting the
    /// time part when it is zero.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let mag = self.0.unsigned_abs();
        let days = mag / 86_400;
        let tod = mag % 86_400;
        if tod == 0 {
            write!(f, "{sign}{days}")
        } else {
            write!(
                f,
                "{sign}{days} {:02}:{:02}:{:02}",
                tod / 3600,
                (tod % 3600) / 60,
                tod % 60
            )
        }
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Span({self})")
    }
}

impl FromStr for Span {
    type Err = TemporalError;
    fn from_str(text: &str) -> Result<Span> {
        let err = |reason: &str| TemporalError::Parse {
            what: "Span",
            input: text.to_owned(),
            reason: reason.to_owned(),
        };
        let t = text.trim();
        let (negative, t) = match t.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, t.strip_prefix('+').unwrap_or(t)),
        };
        let (day_part, time_part) = match t.split_once(' ') {
            Some((d, rest)) => (d, Some(rest.trim())),
            None => (t, None),
        };
        if day_part.is_empty() || !day_part.bytes().all(|b| b.is_ascii_digit()) {
            return Err(err("expected a day count"));
        }
        let days: i64 = day_part
            .parse()
            .map_err(|_| err("day count out of range"))?;
        let (h, m, s) = match time_part {
            None | Some("") => (0, 0, 0),
            Some(tp) => {
                let mut it = tp.split(':');
                let mut next = |what: &str| -> Result<i64> {
                    let piece = it.next().ok_or_else(|| err(what))?;
                    if piece.is_empty() || !piece.bytes().all(|b| b.is_ascii_digit()) {
                        return Err(err(what));
                    }
                    piece.parse().map_err(|_| err(what))
                };
                let h = next("expected hours")?;
                let m = next("expected minutes")?;
                let s = next("expected seconds")?;
                if it.next().is_some() {
                    return Err(err("trailing time components"));
                }
                if m > 59 || s > 59 {
                    return Err(err("minutes/seconds must be 0-59"));
                }
                (h, m, s)
            }
        };
        Span::try_from_parts(negative, days, h, m, s).map_err(|_| err("span out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_examples() {
        // "7 12:00:00 denotes seven and a half days"
        let s: Span = "7 12:00:00".parse().unwrap();
        assert_eq!(s.seconds(), 7 * 86_400 + 12 * 3600);
        // "-7 denotes seven days back"
        let s: Span = "-7".parse().unwrap();
        assert_eq!(s, Span::from_days(-7));
        // dosage frequency "0 08:00:00"
        let s: Span = "0 08:00:00".parse().unwrap();
        assert_eq!(s, Span::from_hours(8));
    }

    #[test]
    fn display_round_trip() {
        for text in ["0", "7", "-7", "7 12:00:00", "-3 01:02:03", "36500"] {
            let s: Span = text.parse().unwrap();
            assert_eq!(s.to_string(), text);
            let back: Span = s.to_string().parse().unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn plus_sign_is_accepted_but_not_printed() {
        let s: Span = "+7".parse().unwrap();
        assert_eq!(s.to_string(), "7");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "x",
            "7 12:00",
            "7 12:00:00:00",
            "7 12:60:00",
            "7 -1:00:00",
            "--7",
        ] {
            assert!(bad.parse::<Span>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn negative_span_applies_sign_to_whole_value() {
        // "-1 12:00:00" is minus (1 day + 12 hours), not (-1 day) + 12h.
        let s: Span = "-1 12:00:00".parse().unwrap();
        assert_eq!(s.seconds(), -(86_400 + 12 * 3600));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Span::DAY + Span::HOUR, Span::from_seconds(90_000));
        assert_eq!(Span::DAY - Span::DAY, Span::ZERO);
        assert_eq!(-Span::DAY, Span::from_days(-1));
        assert_eq!(Span::WEEK, Span::DAY * 7);
        assert_eq!(7 * Span::DAY, Span::WEEK);
        assert_eq!(Span::WEEK / 7, Span::DAY);
        assert_eq!(Span::from_days(3).abs(), Span::from_days(3));
        assert_eq!(Span::from_days(-3).abs(), Span::from_days(3));
    }

    #[test]
    fn checked_ops() {
        assert!(Span::from_seconds(i64::MAX)
            .checked_add(Span::SECOND)
            .is_err());
        assert!(Span::from_seconds(i64::MAX).checked_mul(2).is_err());
        assert!(Span::DAY.checked_div(0).is_err());
        assert_eq!(Span::WEEK.checked_div(7).unwrap(), Span::DAY);
        // Paper Tylenol query: '7 00:00:00'::Span * :w
        assert_eq!(Span::WEEK.checked_mul(6).unwrap(), Span::from_weeks(6));
    }

    #[test]
    fn ratio() {
        assert_eq!(Span::WEEK.ratio(Span::DAY).unwrap(), 7.0);
        assert!(Span::DAY.ratio(Span::ZERO).is_err());
    }

    #[test]
    fn sum_iterator() {
        let total: Span = [Span::DAY, Span::HOUR, Span::MINUTE].into_iter().sum();
        assert_eq!(total.seconds(), 86_400 + 3600 + 60);
    }

    #[test]
    fn whole_days_truncates_toward_zero() {
        assert_eq!("1 12:00:00".parse::<Span>().unwrap().whole_days(), 1);
        assert_eq!("-1 12:00:00".parse::<Span>().unwrap().whole_days(), -1);
    }

    #[test]
    fn predicates() {
        assert!(Span::ZERO.is_zero());
        assert!(Span::from_days(-1).is_negative());
        assert!(!Span::DAY.is_negative());
    }
}
