//! Error types for the TIP temporal type library.

use std::fmt;

/// Errors produced by temporal-type construction, parsing, and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalError {
    /// A textual literal could not be parsed into the requested type.
    Parse {
        /// The type that was being parsed (e.g. `"Chronon"`).
        what: &'static str,
        /// The offending input (possibly truncated).
        input: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// A civil date component was out of range (bad month, day, …).
    InvalidDate { year: i32, month: u32, day: u32 },
    /// A time-of-day component was out of range.
    InvalidTime { hour: u32, minute: u32, second: u32 },
    /// Arithmetic moved a value outside the supported timeline
    /// (year 1 through year 9999) or overflowed.
    OutOfRange { what: &'static str },
    /// Division of a `Span` by zero.
    DivisionByZero,
    /// An operation required a fixed (non-NOW-relative) value but the
    /// input still contained `NOW`.
    UnresolvedNow { what: &'static str },
    /// An index into an `Element`'s periods was out of bounds.
    IndexOutOfBounds { index: usize, len: usize },
    /// An operation on an empty `Element` that requires at least one period.
    EmptyElement { what: &'static str },
    /// Binary decoding failed (truncated or corrupt payload).
    Corrupt { what: &'static str, reason: String },
}

impl fmt::Display for TemporalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalError::Parse {
                what,
                input,
                reason,
            } => {
                write!(f, "cannot parse {what} from {input:?}: {reason}")
            }
            TemporalError::InvalidDate { year, month, day } => {
                write!(f, "invalid civil date {year:04}-{month:02}-{day:02}")
            }
            TemporalError::InvalidTime {
                hour,
                minute,
                second,
            } => {
                write!(f, "invalid time of day {hour:02}:{minute:02}:{second:02}")
            }
            TemporalError::OutOfRange { what } => {
                write!(f, "{what} is outside the supported timeline (years 1-9999)")
            }
            TemporalError::DivisionByZero => write!(f, "division of a Span by zero"),
            TemporalError::UnresolvedNow { what } => {
                write!(
                    f,
                    "{what} requires a fixed value but the input contains NOW"
                )
            }
            TemporalError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "period index {index} out of bounds for Element with {len} period(s)"
                )
            }
            TemporalError::EmptyElement { what } => {
                write!(f, "{what} is undefined on an empty Element")
            }
            TemporalError::Corrupt { what, reason } => {
                write!(f, "corrupt binary encoding of {what}: {reason}")
            }
        }
    }
}

impl std::error::Error for TemporalError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TemporalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TemporalError::Parse {
            what: "Chronon",
            input: "199x".into(),
            reason: "bad year".into(),
        };
        let s = e.to_string();
        assert!(s.contains("Chronon"));
        assert!(s.contains("199x"));
        assert!(s.contains("bad year"));
    }

    #[test]
    fn invalid_date_formats_with_zero_padding() {
        let e = TemporalError::InvalidDate {
            year: 5,
            month: 2,
            day: 30,
        };
        assert_eq!(e.to_string(), "invalid civil date 0005-02-30");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TemporalError::DivisionByZero);
    }
}
