//! Allen's interval operators for `Period`s (paper §2: "TIP supports
//! Allen's operators \[1\] for Periods").
//!
//! The thirteen relations of Allen's interval algebra (Allen, CACM 1983)
//! partition all possible configurations of two nonempty intervals. On the
//! discrete closed-closed chronon timeline, "meets" is interpreted as
//! abutting with no gap: `a meets b` iff `a.end + 1 = b.start`.

use crate::period::ResolvedPeriod;
use std::fmt;

/// One of Allen's thirteen basic interval relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllenRelation {
    /// `a` ends before `b` starts, with a gap.
    Before,
    /// `a` ends exactly one chronon before `b` starts.
    Meets,
    /// `a` starts first, they share chronons, `b` ends last.
    Overlaps,
    /// Same start, `a` ends first.
    Starts,
    /// `a` strictly inside `b` (later start, earlier end).
    During,
    /// Same end, `a` starts later.
    Finishes,
    /// Identical intervals.
    Equals,
    /// Inverse of `Finishes`.
    FinishedBy,
    /// Inverse of `During`.
    Contains,
    /// Inverse of `Starts`.
    StartedBy,
    /// Inverse of `Overlaps`.
    OverlappedBy,
    /// Inverse of `Meets`.
    MetBy,
    /// Inverse of `Before`.
    After,
}

impl AllenRelation {
    /// The inverse relation (swap the roles of the two intervals).
    pub fn inverse(self) -> AllenRelation {
        use AllenRelation::*;
        match self {
            Before => After,
            Meets => MetBy,
            Overlaps => OverlappedBy,
            Starts => StartedBy,
            During => Contains,
            Finishes => FinishedBy,
            Equals => Equals,
            FinishedBy => Finishes,
            Contains => During,
            StartedBy => Starts,
            OverlappedBy => Overlaps,
            MetBy => Meets,
            After => Before,
        }
    }

    /// The canonical lowercase name used by the SQL routines.
    pub fn name(self) -> &'static str {
        use AllenRelation::*;
        match self {
            Before => "before",
            Meets => "meets",
            Overlaps => "overlaps",
            Starts => "starts",
            During => "during",
            Finishes => "finishes",
            Equals => "equals",
            FinishedBy => "finished_by",
            Contains => "contains",
            StartedBy => "started_by",
            OverlappedBy => "overlapped_by",
            MetBy => "met_by",
            After => "after",
        }
    }

    /// All thirteen relations, in canonical order.
    pub const ALL: [AllenRelation; 13] = {
        use AllenRelation::*;
        [
            Before,
            Meets,
            Overlaps,
            Starts,
            During,
            Finishes,
            Equals,
            FinishedBy,
            Contains,
            StartedBy,
            OverlappedBy,
            MetBy,
            After,
        ]
    };
}

impl fmt::Display for AllenRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Classifies the configuration of two periods into exactly one of
/// Allen's thirteen relations.
pub fn relation(a: ResolvedPeriod, b: ResolvedPeriod) -> AllenRelation {
    use std::cmp::Ordering::*;
    use AllenRelation::*;
    match (a.start().cmp(&b.start()), a.end().cmp(&b.end())) {
        (Equal, Equal) => Equals,
        (Equal, Less) => Starts,
        (Equal, Greater) => StartedBy,
        (Less, Equal) => FinishedBy,
        (Greater, Equal) => Finishes,
        (Less, Greater) => Contains,
        (Greater, Less) => During,
        (Less, Less) => {
            if a.end() >= b.start() {
                Overlaps
            } else if a.end().succ() == b.start() {
                Meets
            } else {
                Before
            }
        }
        (Greater, Greater) => {
            if b.end() >= a.start() {
                OverlappedBy
            } else if b.end().succ() == a.start() {
                MetBy
            } else {
                After
            }
        }
    }
}

/// `a` ends strictly before `b` starts (with a gap of at least one chronon).
pub fn before(a: ResolvedPeriod, b: ResolvedPeriod) -> bool {
    relation(a, b) == AllenRelation::Before
}

/// `a` abuts `b` on the left.
pub fn meets(a: ResolvedPeriod, b: ResolvedPeriod) -> bool {
    relation(a, b) == AllenRelation::Meets
}

/// Strict Allen overlap: `a` starts first, they share chronons, `b` ends last.
/// (For the reflexive "share any chronon" predicate used in SQL's
/// `overlaps(p1, p2)` see [`ResolvedPeriod::overlaps`].)
pub fn overlaps(a: ResolvedPeriod, b: ResolvedPeriod) -> bool {
    relation(a, b) == AllenRelation::Overlaps
}

/// Same start, `a` ends first.
pub fn starts(a: ResolvedPeriod, b: ResolvedPeriod) -> bool {
    relation(a, b) == AllenRelation::Starts
}

/// `a` lies strictly within `b`.
pub fn during(a: ResolvedPeriod, b: ResolvedPeriod) -> bool {
    relation(a, b) == AllenRelation::During
}

/// Same end, `a` starts later.
pub fn finishes(a: ResolvedPeriod, b: ResolvedPeriod) -> bool {
    relation(a, b) == AllenRelation::Finishes
}

/// The two periods are identical.
pub fn equals(a: ResolvedPeriod, b: ResolvedPeriod) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chronon::Chronon;

    fn rp(a: i64, b: i64) -> ResolvedPeriod {
        ResolvedPeriod::new(Chronon::from_raw(a).unwrap(), Chronon::from_raw(b).unwrap()).unwrap()
    }

    #[test]
    fn all_thirteen_relations_reachable() {
        use AllenRelation::*;
        let b = rp(10, 20);
        let cases = [
            (rp(0, 5), Before),
            (rp(0, 9), Meets),
            (rp(5, 15), Overlaps),
            (rp(10, 15), Starts),
            (rp(12, 18), During),
            (rp(15, 20), Finishes),
            (rp(10, 20), Equals),
            (rp(5, 20), FinishedBy),
            (rp(5, 25), Contains),
            (rp(10, 25), StartedBy),
            (rp(15, 25), OverlappedBy),
            (rp(21, 30), MetBy),
            (rp(25, 30), After),
        ];
        for (a, expected) in cases {
            assert_eq!(relation(a, b), expected, "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn relation_is_a_partition() {
        // Every pair of small periods lands in exactly one relation, and
        // inverse(relation(a,b)) == relation(b,a).
        let bound = 6_i64;
        for s1 in 0..bound {
            for e1 in s1..bound {
                for s2 in 0..bound {
                    for e2 in s2..bound {
                        let a = rp(s1, e1);
                        let b = rp(s2, e2);
                        let r = relation(a, b);
                        assert_eq!(relation(b, a), r.inverse());
                        assert_eq!(r.inverse().inverse(), r);
                    }
                }
            }
        }
    }

    #[test]
    fn single_chronon_touch_is_overlap_not_meets() {
        // In closed-closed semantics [0,10] and [10,20] share chronon 10.
        let r = relation(rp(0, 10), rp(10, 20));
        assert_eq!(r, AllenRelation::Overlaps);
    }

    #[test]
    fn meets_requires_exact_abutment() {
        assert!(meets(rp(0, 9), rp(10, 20)));
        assert!(!meets(rp(0, 8), rp(10, 20)));
        assert!(!meets(rp(0, 10), rp(10, 20)));
    }

    #[test]
    fn named_predicates_agree_with_relation() {
        let a = rp(5, 15);
        let b = rp(10, 20);
        assert!(overlaps(a, b));
        assert!(!overlaps(b, a));
        assert!(before(rp(0, 3), b));
        assert!(starts(rp(10, 12), b));
        assert!(during(rp(12, 15), b));
        assert!(finishes(rp(15, 20), b));
        assert!(equals(b, b));
    }

    #[test]
    fn names_and_display() {
        assert_eq!(AllenRelation::OverlappedBy.name(), "overlapped_by");
        assert_eq!(AllenRelation::Before.to_string(), "before");
        assert_eq!(AllenRelation::ALL.len(), 13);
    }

    #[test]
    fn equals_is_its_own_inverse() {
        assert_eq!(AllenRelation::Equals.inverse(), AllenRelation::Equals);
    }
}
