//! `Chronon`: a specific point in time at one-second granularity.
//!
//! A `Chronon` is the TIP analogue of SQL's `DATE`/`DATETIME`: an
//! indivisible granule on the time line. Following the paper, the notation
//! is `year-month-day[ hour:minute:second]`, and the most famous `Chronon`
//! is `2000-01-01 00:00:00` — which this implementation uses as its epoch.
//!
//! Internally a `Chronon` is a count of seconds relative to
//! `2000-01-01 00:00:00` in the proleptic Gregorian calendar (no time
//! zones, no leap seconds — the standard temporal-database simplification).
//! The supported timeline runs from `0001-01-01 00:00:00` ([`Chronon::BEGINNING`])
//! through `9999-12-31 23:59:59` ([`Chronon::FOREVER`]).

use crate::error::{Result, TemporalError};
use crate::span::Span;
use std::fmt;
use std::str::FromStr;

/// Number of seconds in a civil day.
pub const SECS_PER_DAY: i64 = 86_400;

/// Days from the civil epoch 1970-01-01 to 2000-01-01 (the TIP epoch).
const EPOCH_2000_DAYS_FROM_1970: i64 = 10_957;

/// A specific point in time, at one-second granularity.
///
/// ```
/// use tip_core::Chronon;
/// let y2k: Chronon = "2000-01-01".parse().unwrap();
/// assert_eq!(y2k, Chronon::EPOCH);
/// assert_eq!(y2k.to_string(), "2000-01-01");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Chronon(i64);

/// Computes the day count since 1970-01-01 for a civil date.
///
/// This is Howard Hinnant's `days_from_civil` algorithm, valid for the
/// proleptic Gregorian calendar over the full `i32` year range.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`]: day count since 1970-01-01 → `(y, m, d)`.
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

/// Is `y` a leap year in the proleptic Gregorian calendar?
pub fn is_leap_year(y: i32) -> bool {
    y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
}

/// Number of days in month `m` of year `y`.
pub fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Chronon {
    /// The TIP epoch, `2000-01-01 00:00:00`.
    pub const EPOCH: Chronon = Chronon(0);

    /// The first representable point in time, `0001-01-01 00:00:00`.
    pub const BEGINNING: Chronon = Chronon(-63_082_281_600);

    /// The last representable point in time, `9999-12-31 23:59:59`.
    pub const FOREVER: Chronon = Chronon(252_455_615_999);

    /// Builds a `Chronon` from a raw count of seconds since the TIP epoch,
    /// returning an error if the result lies outside the supported timeline.
    pub fn from_raw(secs: i64) -> Result<Chronon> {
        let c = Chronon(secs);
        if c < Chronon::BEGINNING || c > Chronon::FOREVER {
            Err(TemporalError::OutOfRange { what: "Chronon" })
        } else {
            Ok(c)
        }
    }

    /// The raw count of seconds since the TIP epoch (`2000-01-01 00:00:00`).
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Builds a `Chronon` at midnight of the given civil date.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Chronon> {
        Chronon::from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// Builds a `Chronon` from full civil date and time-of-day components.
    pub fn from_ymd_hms(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Result<Chronon> {
        if !(1..=9999).contains(&year)
            || !(1..=12).contains(&month)
            || day < 1
            || day > days_in_month(year, month)
        {
            return Err(TemporalError::InvalidDate { year, month, day });
        }
        if hour > 23 || minute > 59 || second > 59 {
            return Err(TemporalError::InvalidTime {
                hour,
                minute,
                second,
            });
        }
        let days = days_from_civil(year, month, day) - EPOCH_2000_DAYS_FROM_1970;
        let secs = days * SECS_PER_DAY
            + i64::from(hour) * 3600
            + i64::from(minute) * 60
            + i64::from(second);
        Ok(Chronon(secs))
    }

    /// Decomposes into `(year, month, day, hour, minute, second)`.
    pub fn to_civil(self) -> (i32, u32, u32, u32, u32, u32) {
        let days = self.0.div_euclid(SECS_PER_DAY);
        let tod = self.0.rem_euclid(SECS_PER_DAY);
        let (y, m, d) = civil_from_days(days + EPOCH_2000_DAYS_FROM_1970);
        (
            y,
            m,
            d,
            (tod / 3600) as u32,
            ((tod % 3600) / 60) as u32,
            (tod % 60) as u32,
        )
    }

    /// The civil year, in `1..=9999`.
    pub fn year(self) -> i32 {
        self.to_civil().0
    }

    /// The civil month, in `1..=12`.
    pub fn month(self) -> u32 {
        self.to_civil().1
    }

    /// The civil day of month, in `1..=31`.
    pub fn day(self) -> u32 {
        self.to_civil().2
    }

    /// The hour of day, in `0..=23`.
    pub fn hour(self) -> u32 {
        self.to_civil().3
    }

    /// The minute, in `0..=59`.
    pub fn minute(self) -> u32 {
        self.to_civil().4
    }

    /// The second, in `0..=59`.
    pub fn second(self) -> u32 {
        self.to_civil().5
    }

    /// Day of week, `0 = Monday … 6 = Sunday` (ISO).
    pub fn weekday(self) -> u32 {
        let days = self.0.div_euclid(SECS_PER_DAY) + EPOCH_2000_DAYS_FROM_1970;
        // 1970-01-01 was a Thursday (ISO index 3).
        (days + 3).rem_euclid(7) as u32
    }

    /// `true` when the time-of-day component is exactly midnight.
    pub fn is_midnight(self) -> bool {
        self.0.rem_euclid(SECS_PER_DAY) == 0
    }

    /// Checked addition of a [`Span`].
    pub fn checked_add(self, s: Span) -> Result<Chronon> {
        self.0
            .checked_add(s.seconds())
            .ok_or(TemporalError::OutOfRange {
                what: "Chronon + Span",
            })
            .and_then(Chronon::from_raw)
    }

    /// Checked subtraction of a [`Span`].
    pub fn checked_sub(self, s: Span) -> Result<Chronon> {
        self.0
            .checked_sub(s.seconds())
            .ok_or(TemporalError::OutOfRange {
                what: "Chronon - Span",
            })
            .and_then(Chronon::from_raw)
    }

    /// Addition of a [`Span`], clamped to the supported timeline.
    pub fn saturating_add(self, s: Span) -> Chronon {
        let raw = self.0.saturating_add(s.seconds());
        Chronon(raw.clamp(Chronon::BEGINNING.0, Chronon::FOREVER.0))
    }

    /// The chronon immediately after this one, saturating at [`Chronon::FOREVER`].
    pub fn succ(self) -> Chronon {
        if self >= Chronon::FOREVER {
            Chronon::FOREVER
        } else {
            Chronon(self.0 + 1)
        }
    }

    /// The chronon immediately before this one, saturating at [`Chronon::BEGINNING`].
    pub fn pred(self) -> Chronon {
        if self <= Chronon::BEGINNING {
            Chronon::BEGINNING
        } else {
            Chronon(self.0 - 1)
        }
    }

    /// Formats with the full `YYYY-MM-DD HH:MM:SS` notation even at midnight.
    pub fn to_string_full(self) -> String {
        let (y, mo, d, h, mi, s) = self.to_civil();
        format!("{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    }
}

impl std::ops::Sub for Chronon {
    type Output = Span;
    /// The signed duration from `rhs` to `self` — a `Chronon` minus a
    /// `Chronon` returns a [`Span`] (paper §2).
    fn sub(self, rhs: Chronon) -> Span {
        Span::from_seconds(self.0 - rhs.0)
    }
}

impl std::ops::Add<Span> for Chronon {
    type Output = Chronon;
    /// Panics when the result leaves the supported timeline; use
    /// [`Chronon::checked_add`] for a fallible variant.
    fn add(self, rhs: Span) -> Chronon {
        self.checked_add(rhs).expect("Chronon + Span out of range")
    }
}

impl std::ops::Sub<Span> for Chronon {
    type Output = Chronon;
    fn sub(self, rhs: Span) -> Chronon {
        self.checked_sub(rhs).expect("Chronon - Span out of range")
    }
}

impl fmt::Display for Chronon {
    /// Uses the paper's notation: the time of day is omitted at midnight.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi, s) = self.to_civil();
        if (h, mi, s) == (0, 0, 0) {
            write!(f, "{y:04}-{mo:02}-{d:02}")
        } else {
            write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
        }
    }
}

impl fmt::Debug for Chronon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Chronon({self})")
    }
}

fn parse_fixed_u32(s: &str) -> Option<u32> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

/// Parses the date-and-optional-time notation shared by `Chronon` and the
/// fixed arm of `Instant`. Exposed for the crate's other parsers.
pub(crate) fn parse_chronon_str(text: &str) -> Result<Chronon> {
    let err = |reason: &str| TemporalError::Parse {
        what: "Chronon",
        input: text.to_owned(),
        reason: reason.to_owned(),
    };
    let text = text.trim();
    let (date_part, time_part) = match text.split_once(' ') {
        Some((d, t)) => (d, Some(t.trim())),
        None => (text, None),
    };
    let mut it = date_part.split('-');
    let y = it
        .next()
        .and_then(parse_fixed_u32)
        .ok_or_else(|| err("expected year"))?;
    let mo = it
        .next()
        .and_then(parse_fixed_u32)
        .ok_or_else(|| err("expected month"))?;
    let d = it
        .next()
        .and_then(parse_fixed_u32)
        .ok_or_else(|| err("expected day"))?;
    if it.next().is_some() {
        return Err(err("trailing date components"));
    }
    let (h, mi, s) = match time_part {
        None | Some("") => (0, 0, 0),
        Some(t) => {
            let mut jt = t.split(':');
            let h = jt
                .next()
                .and_then(parse_fixed_u32)
                .ok_or_else(|| err("expected hour"))?;
            let mi = jt
                .next()
                .and_then(parse_fixed_u32)
                .ok_or_else(|| err("expected minute"))?;
            let s = jt
                .next()
                .and_then(parse_fixed_u32)
                .ok_or_else(|| err("expected second"))?;
            if jt.next().is_some() {
                return Err(err("trailing time components"));
            }
            (h, mi, s)
        }
    };
    let y = i32::try_from(y).map_err(|_| err("year out of range"))?;
    Chronon::from_ymd_hms(y, mo, d, h, mi, s)
}

impl FromStr for Chronon {
    type Err = TemporalError;
    fn from_str(s: &str) -> Result<Chronon> {
        parse_chronon_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_y2k() {
        let c = Chronon::from_ymd_hms(2000, 1, 1, 0, 0, 0).unwrap();
        assert_eq!(c, Chronon::EPOCH);
        assert_eq!(c.raw(), 0);
    }

    #[test]
    fn beginning_and_forever_constants_match_civil() {
        assert_eq!(Chronon::BEGINNING.to_civil(), (1, 1, 1, 0, 0, 0));
        assert_eq!(Chronon::FOREVER.to_civil(), (9999, 12, 31, 23, 59, 59));
    }

    #[test]
    fn civil_round_trip_known_dates() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1999, 12, 31),
            (2000, 1, 1),
            (2000, 2, 29), // Y2K is a leap year
            (1900, 2, 28), // 1900 is not
            (2024, 2, 29),
            (1, 1, 1),
            (9999, 12, 31),
        ] {
            let c = Chronon::from_ymd(y, m, d).unwrap();
            let (yy, mm, dd, ..) = c.to_civil();
            assert_eq!((yy, mm, dd), (y, m, d));
        }
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Chronon::from_ymd(1900, 2, 29).is_err());
        assert!(Chronon::from_ymd(2001, 2, 29).is_err());
        assert!(Chronon::from_ymd(2000, 13, 1).is_err());
        assert!(Chronon::from_ymd(2000, 0, 1).is_err());
        assert!(Chronon::from_ymd(2000, 4, 31).is_err());
        assert!(Chronon::from_ymd(0, 1, 1).is_err());
        assert!(Chronon::from_ymd(10000, 1, 1).is_err());
    }

    #[test]
    fn rejects_invalid_times() {
        assert!(Chronon::from_ymd_hms(2000, 1, 1, 24, 0, 0).is_err());
        assert!(Chronon::from_ymd_hms(2000, 1, 1, 0, 60, 0).is_err());
        assert!(Chronon::from_ymd_hms(2000, 1, 1, 0, 0, 60).is_err());
    }

    #[test]
    fn parse_and_display_round_trip() {
        let c: Chronon = "1999-09-01".parse().unwrap();
        assert_eq!(c.to_civil(), (1999, 9, 1, 0, 0, 0));
        assert_eq!(c.to_string(), "1999-09-01");

        let c: Chronon = "1999-09-01 08:30:05".parse().unwrap();
        assert_eq!(c.to_civil(), (1999, 9, 1, 8, 30, 5));
        assert_eq!(c.to_string(), "1999-09-01 08:30:05");
        assert_eq!(c.to_string_full(), "1999-09-01 08:30:05");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "1999",
            "1999-09",
            "1999-09-01-02",
            "1999-9x-01",
            "1999-09-01 25:00:00",
            "1999-09-01 08:30",
            "1999-09-01 08:30:00:11",
            "now",
            "-5",
        ] {
            assert!(bad.parse::<Chronon>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn chronon_minus_chronon_is_span() {
        let a: Chronon = "2000-01-08".parse().unwrap();
        let b: Chronon = "2000-01-01".parse().unwrap();
        assert_eq!(a - b, Span::from_days(7));
        assert_eq!(b - a, Span::from_days(-7));
    }

    #[test]
    fn add_sub_span() {
        let c: Chronon = "1999-12-31 23:59:59".parse().unwrap();
        let next = c + Span::from_seconds(1);
        assert_eq!(next.to_string(), "2000-01-01");
        assert_eq!(next - Span::from_seconds(1), c);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(Chronon::FOREVER.checked_add(Span::from_seconds(1)).is_err());
        assert!(Chronon::BEGINNING
            .checked_sub(Span::from_seconds(1))
            .is_err());
        assert!(Chronon::EPOCH
            .checked_add(Span::from_seconds(i64::MAX))
            .is_err());
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(
            Chronon::FOREVER.saturating_add(Span::from_days(10)),
            Chronon::FOREVER
        );
        assert_eq!(
            Chronon::BEGINNING.saturating_add(Span::from_days(-10)),
            Chronon::BEGINNING
        );
    }

    #[test]
    fn succ_pred() {
        let c = Chronon::EPOCH;
        assert_eq!(c.succ().raw(), 1);
        assert_eq!(c.pred().raw(), -1);
        assert_eq!(Chronon::FOREVER.succ(), Chronon::FOREVER);
        assert_eq!(Chronon::BEGINNING.pred(), Chronon::BEGINNING);
    }

    #[test]
    fn weekday_known_values() {
        // 2000-01-01 was a Saturday (ISO index 5).
        assert_eq!(Chronon::EPOCH.weekday(), 5);
        // 1970-01-01 was a Thursday (ISO index 3).
        assert_eq!(Chronon::from_ymd(1970, 1, 1).unwrap().weekday(), 3);
        // 2026-07-07 is a Tuesday (ISO index 1).
        assert_eq!(Chronon::from_ymd(2026, 7, 7).unwrap().weekday(), 1);
    }

    #[test]
    fn accessors() {
        let c: Chronon = "1987-06-05 04:03:02".parse().unwrap();
        assert_eq!(c.year(), 1987);
        assert_eq!(c.month(), 6);
        assert_eq!(c.day(), 5);
        assert_eq!(c.hour(), 4);
        assert_eq!(c.minute(), 3);
        assert_eq!(c.second(), 2);
        assert!(!c.is_midnight());
        assert!(Chronon::EPOCH.is_midnight());
    }

    #[test]
    fn ordering_follows_time() {
        let a: Chronon = "1999-01-01".parse().unwrap();
        let b: Chronon = "1999-01-01 00:00:01".parse().unwrap();
        assert!(a < b);
        assert!(Chronon::BEGINNING < a && b < Chronon::FOREVER);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1999));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
    }
}
