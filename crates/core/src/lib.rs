//! # tip-core — the TIP temporal type library
//!
//! A from-scratch Rust implementation of the temporal datatypes of
//! **TIP (Temporal Information Processor)**, the temporal extension to
//! Informix demonstrated by Yang, Ying and Widom at SIGMOD 2000. This
//! crate corresponds to the *TIP C library* of the paper's Figure 1: the
//! core support for the five datatypes that the DataBlade, the client
//! libraries and the Browser all build on.
//!
//! ## The five datatypes (paper §2)
//!
//! | Type | Meaning | Example notation |
//! |---|---|---|
//! | [`Chronon`] | a specific point in time | `2000-01-01 00:00:00` |
//! | [`Span`] | a signed duration | `7 12:00:00`, `-7` |
//! | [`Instant`] | a `Chronon` or a NOW-relative time | `NOW-1` |
//! | [`Period`] | a pair of `Instant`s | `[NOW-7, NOW]` |
//! | [`Element`] | a set of `Period`s | `{[1999-01-01, 1999-04-30], …}` |
//!
//! `NOW` is interpreted as the current transaction time at query
//! evaluation; [`NowContext`] carries that interpretation and
//! [`Element::resolve`]/[`Period::resolve`]/[`Instant::resolve`]
//! substitute it, producing the fixed [`ResolvedElement`]/
//! [`ResolvedPeriod`]/[`Chronon`] values the set algebra operates on.
//!
//! ## Quick start
//!
//! ```
//! use tip_core::{Chronon, Element, NowContext};
//!
//! let valid: Element = "{[1999-10-01, NOW]}".parse().unwrap();
//! let now = NowContext::fixed(Chronon::from_ymd(1999, 12, 25).unwrap());
//! let resolved = valid.resolve(now.now()).unwrap();
//! assert_eq!(resolved.to_string(), "{[1999-10-01, 1999-12-25]}");
//! assert!(resolved.contains_chronon(Chronon::from_ymd(1999, 11, 11).unwrap()));
//! ```
//!
//! Set operations on [`ResolvedElement`] — [`ResolvedElement::union`],
//! [`ResolvedElement::intersect`], [`ResolvedElement::difference`],
//! [`ResolvedElement::complement`] — run in time linear in the number of
//! periods (paper §3). Allen's thirteen interval relations are in
//! [`allen`], temporal coalescing and the `group_union`/`group_intersect`
//! aggregates in [`agg`], and the storage codec in [`binary`].

pub mod agg;
pub mod allen;
pub mod binary;
mod chronon;
mod element;
mod error;
pub mod granularity;
mod instant;
mod nowctx;
mod period;
mod span;
pub mod tagg;

pub use allen::AllenRelation;
pub use chronon::{
    civil_from_days, days_from_civil, days_in_month, is_leap_year, Chronon, SECS_PER_DAY,
};
pub use element::{Element, ResolvedElement};
pub use error::{Result, TemporalError};
pub use granularity::Granularity;
pub use instant::Instant;
pub use nowctx::NowContext;
pub use period::{Period, ResolvedPeriod};
pub use span::Span;
pub use tagg::ConstantInterval;
