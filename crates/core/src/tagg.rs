//! Temporal aggregation: aggregate values *per point of time*.
//!
//! The authors built TIP to experiment with temporal warehousing and
//! temporal aggregate maintenance (paper §1 and refs [9, 10]; see also
//! Yang & Widom, "Incremental Computation and Maintenance of Temporal
//! Aggregates"). The core operator: given tuples timestamped with
//! periods, compute for every instant the aggregate of the tuples valid
//! at that instant, returned as *constant intervals* — maximal periods
//! over which the aggregate value does not change.
//!
//! This module implements the classic sweep-line evaluation:
//! `O(n log n)` over `n` input periods, producing at most `2n + 1`
//! constant intervals.

use crate::chronon::Chronon;
use crate::element::ResolvedElement;
use crate::period::ResolvedPeriod;

/// One constant interval of a temporal aggregate: over `period`, exactly
/// `count` input tuples were valid (and `sum` is the sum of their
/// weights, for the weighted variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantInterval {
    pub period: ResolvedPeriod,
    pub count: u64,
    pub sum: i64,
}

/// Computes the temporal `COUNT` (and weighted `SUM`) over weighted
/// periods: for every chronon covered by at least one input, the number
/// of valid inputs and the sum of their weights, as maximal constant
/// intervals in timeline order. Chronons covered by no input are simply
/// absent (count 0 intervals are not materialized).
pub fn temporal_count_sum(inputs: &[(ResolvedPeriod, i64)]) -> Vec<ConstantInterval> {
    if inputs.is_empty() {
        return Vec::new();
    }
    // Event list: +1/+w at start, -1/-w just after end.
    // Using i128 for positions lets "end + 1" avoid overflow at FOREVER.
    let mut events: Vec<(i128, i64, i64)> = Vec::with_capacity(inputs.len() * 2);
    for (p, w) in inputs {
        events.push((i128::from(p.start().raw()), 1, *w));
        events.push((i128::from(p.end().raw()) + 1, -1, -*w));
    }
    events.sort_unstable_by_key(|&(pos, ..)| pos);

    let mut out = Vec::new();
    let mut count: i64 = 0;
    let mut sum: i64 = 0;
    let mut i = 0usize;
    let mut seg_start: Option<i128> = None;
    while i < events.len() {
        let pos = events[i].0;
        // Close the running segment at pos - 1.
        if let Some(start) = seg_start {
            if count > 0 && pos > start {
                push_merged(&mut out, make_interval(start, pos - 1, count as u64, sum));
            }
        }
        // Apply every event at this position.
        while i < events.len() && events[i].0 == pos {
            count += events[i].1;
            sum += events[i].2;
            i += 1;
        }
        seg_start = if count > 0 { Some(pos) } else { None };
    }
    debug_assert!(count == 0, "every interval closes");
    out
}

/// Appends an interval, merging with the previous one when they abut
/// with identical aggregate values (keeps intervals *maximal*).
fn push_merged(out: &mut Vec<ConstantInterval>, ci: ConstantInterval) {
    if let Some(last) = out.last_mut() {
        if last.count == ci.count
            && last.sum == ci.sum
            && last.period.end().succ() == ci.period.start()
        {
            if let Some(merged) = last.period.merge(ci.period) {
                last.period = merged;
                return;
            }
        }
    }
    out.push(ci);
}

fn make_interval(start: i128, end: i128, count: u64, sum: i64) -> ConstantInterval {
    let s = Chronon::from_raw(start as i64).expect("event position in range");
    let e = Chronon::from_raw(end as i64).expect("event position in range");
    ConstantInterval {
        period: ResolvedPeriod::new(s, e).expect("start <= end"),
        count,
        sum,
    }
}

/// Temporal COUNT over unweighted periods.
pub fn temporal_count(periods: &[ResolvedPeriod]) -> Vec<ConstantInterval> {
    let weighted: Vec<(ResolvedPeriod, i64)> = periods.iter().map(|&p| (p, 1)).collect();
    temporal_count_sum(&weighted)
}

/// The chronons where at least `k` inputs are simultaneously valid
/// (e.g. "when were at least 3 prescriptions active?").
pub fn at_least(inputs: &[ResolvedPeriod], k: u64) -> ResolvedElement {
    let periods = temporal_count(inputs)
        .into_iter()
        .filter(|ci| ci.count >= k)
        .map(|ci| ci.period)
        .collect();
    ResolvedElement::normalize(periods)
}

/// The maximum number of simultaneously valid inputs, with one witness
/// period where that maximum is attained.
pub fn max_overlap(inputs: &[ResolvedPeriod]) -> Option<(u64, ResolvedPeriod)> {
    temporal_count(inputs)
        .into_iter()
        .max_by_key(|ci| ci.count)
        .map(|ci| (ci.count, ci.period))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rp(a: i64, b: i64) -> ResolvedPeriod {
        ResolvedPeriod::new(Chronon::from_raw(a).unwrap(), Chronon::from_raw(b).unwrap()).unwrap()
    }

    #[test]
    fn empty_input() {
        assert!(temporal_count(&[]).is_empty());
        assert!(at_least(&[], 1).is_empty());
        assert!(max_overlap(&[]).is_none());
    }

    #[test]
    fn single_period() {
        let cis = temporal_count(&[rp(10, 20)]);
        assert_eq!(cis.len(), 1);
        assert_eq!(cis[0].period, rp(10, 20));
        assert_eq!(cis[0].count, 1);
    }

    #[test]
    fn classic_staircase() {
        //   [10        30]
        //        [20        40]
        // counts: [10,19]=1 [20,30]=2 [31,40]=1
        let cis = temporal_count(&[rp(10, 30), rp(20, 40)]);
        assert_eq!(
            cis,
            vec![
                ConstantInterval {
                    period: rp(10, 19),
                    count: 1,
                    sum: 1
                },
                ConstantInterval {
                    period: rp(20, 30),
                    count: 2,
                    sum: 2
                },
                ConstantInterval {
                    period: rp(31, 40),
                    count: 1,
                    sum: 1
                },
            ]
        );
    }

    #[test]
    fn gap_produces_no_zero_interval() {
        let cis = temporal_count(&[rp(0, 5), rp(10, 15)]);
        assert_eq!(cis.len(), 2);
        assert_eq!(cis[0].period, rp(0, 5));
        assert_eq!(cis[1].period, rp(10, 15));
    }

    #[test]
    fn identical_periods_stack() {
        let cis = temporal_count(&[rp(5, 9), rp(5, 9), rp(5, 9)]);
        assert_eq!(
            cis,
            vec![ConstantInterval {
                period: rp(5, 9),
                count: 3,
                sum: 3
            }]
        );
    }

    #[test]
    fn weighted_sum() {
        // Dosage-weighted: 2 units on [0,10], 5 units on [5,20].
        let cis = temporal_count_sum(&[(rp(0, 10), 2), (rp(5, 20), 5)]);
        assert_eq!(
            cis,
            vec![
                ConstantInterval {
                    period: rp(0, 4),
                    count: 1,
                    sum: 2
                },
                ConstantInterval {
                    period: rp(5, 10),
                    count: 2,
                    sum: 7
                },
                ConstantInterval {
                    period: rp(11, 20),
                    count: 1,
                    sum: 5
                },
            ]
        );
    }

    #[test]
    fn at_least_k() {
        let inputs = [rp(0, 10), rp(5, 15), rp(8, 20)];
        assert_eq!(at_least(&inputs, 1).periods(), &[rp(0, 20)]);
        assert_eq!(at_least(&inputs, 2).periods(), &[rp(5, 15)]);
        assert_eq!(at_least(&inputs, 3).periods(), &[rp(8, 10)]);
        assert!(at_least(&inputs, 4).is_empty());
    }

    #[test]
    fn max_overlap_witness() {
        let inputs = [rp(0, 10), rp(5, 15), rp(8, 20)];
        let (k, witness) = max_overlap(&inputs).unwrap();
        assert_eq!(k, 3);
        assert_eq!(witness, rp(8, 10));
    }

    #[test]
    fn conservation_laws() {
        // Sum over intervals of count * duration == sum of input durations,
        // and the union of intervals == the coalesced input.
        let inputs = [rp(0, 10), rp(5, 15), rp(30, 40), rp(35, 36)];
        let cis = temporal_count(&inputs);
        let weighted_total: i64 = cis
            .iter()
            .map(|ci| ci.count as i64 * ci.period.duration().seconds())
            .sum();
        let input_total: i64 = inputs.iter().map(|p| p.duration().seconds()).sum();
        assert_eq!(weighted_total, input_total);

        let union_of_intervals: ResolvedElement = cis.iter().map(|ci| ci.period).collect();
        let coalesced: ResolvedElement = inputs.iter().copied().collect();
        assert_eq!(union_of_intervals, coalesced);
    }

    #[test]
    fn intervals_are_disjoint_ordered_and_maximal() {
        let inputs = [
            rp(0, 100),
            rp(10, 20),
            rp(15, 60),
            rp(90, 150),
            rp(200, 210),
        ];
        let cis = temporal_count(&inputs);
        for w in cis.windows(2) {
            assert!(w[0].period.end() < w[1].period.start());
            // Maximality: if two intervals abut, their aggregates differ.
            if w[0].period.end().succ() == w[1].period.start() {
                assert!(
                    (w[0].count, w[0].sum) != (w[1].count, w[1].sum),
                    "abutting intervals with equal aggregates must be merged"
                );
            }
        }
    }

    #[test]
    fn abutting_equal_counts_merge_but_sums_can_split() {
        // Same count either side of the boundary -> merged.
        let cis = temporal_count(&[rp(0, 9), rp(10, 19)]);
        assert_eq!(
            cis,
            vec![ConstantInterval {
                period: rp(0, 19),
                count: 1,
                sum: 1
            }]
        );
        // Same count but different weights -> two maximal intervals.
        let cis = temporal_count_sum(&[(rp(0, 9), 1), (rp(10, 19), 7)]);
        assert_eq!(
            cis,
            vec![
                ConstantInterval {
                    period: rp(0, 9),
                    count: 1,
                    sum: 1
                },
                ConstantInterval {
                    period: rp(10, 19),
                    count: 1,
                    sum: 7
                },
            ]
        );
    }
}
