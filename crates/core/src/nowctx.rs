//! `NowContext`: the source of the current transaction time.
//!
//! The special symbol `NOW` is interpreted as the current *transaction*
//! time during query evaluation (paper §2), and the TIP Browser lets the
//! user "enter a different value for NOW to override its default
//! interpretation, which provides what-if analysis" (paper §4). A
//! `NowContext` captures one interpretation of `NOW`; the DBMS session
//! freezes one per statement.

use crate::chronon::Chronon;
use std::time::{SystemTime, UNIX_EPOCH};

/// Seconds between the Unix epoch (1970-01-01) and the TIP epoch
/// (2000-01-01).
const UNIX_TO_TIP_EPOCH_SECS: i64 = 946_684_800;

/// An interpretation of the symbol `NOW`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NowContext {
    now: Chronon,
}

impl NowContext {
    /// A context with a fixed, explicit `NOW` — used for statement-time
    /// freezing and for the Browser's what-if override.
    pub fn fixed(now: Chronon) -> NowContext {
        NowContext { now }
    }

    /// A context bound to the machine's wall clock, sampled once (clamped
    /// to the supported timeline).
    pub fn system() -> NowContext {
        let unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs() as i64)
            .unwrap_or(0);
        let raw = unix - UNIX_TO_TIP_EPOCH_SECS;
        let clamped = raw.clamp(Chronon::BEGINNING.raw(), Chronon::FOREVER.raw());
        NowContext {
            now: Chronon::from_raw(clamped).expect("clamped into range"),
        }
    }

    /// The chronon this context substitutes for `NOW`.
    pub fn now(self) -> Chronon {
        self.now
    }
}

impl Default for NowContext {
    fn default() -> NowContext {
        NowContext::system()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_context_returns_its_chronon() {
        let c = Chronon::from_ymd(1999, 9, 23).unwrap();
        assert_eq!(NowContext::fixed(c).now(), c);
    }

    #[test]
    fn system_context_is_in_range_and_plausible() {
        let n = NowContext::system().now();
        assert!(n > Chronon::from_ymd(2020, 1, 1).unwrap());
        assert!(n < Chronon::from_ymd(2200, 1, 1).unwrap());
    }

    #[test]
    fn unix_offset_constant_is_correct() {
        // 2000-01-01 minus 1970-01-01 is 10957 days.
        assert_eq!(UNIX_TO_TIP_EPOCH_SECS, 10_957 * 86_400);
    }
}
