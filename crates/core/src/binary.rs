//! The "efficient binary format" (paper §2) for TIP values.
//!
//! The paper notes that TIP "internally stores Chronons (and other
//! datatypes …) in an efficient binary format" rather than text. This
//! module provides that wire/storage codec:
//!
//! * `Chronon` — 8 bytes, little-endian second count.
//! * `Span` — 8 bytes.
//! * `Instant` — 1 tag byte + 8 bytes.
//! * `Period` — two instants.
//! * `Element` — u32 period count + periods.
//!
//! The module also provides codecs for the builtin scalar types
//! (`bool`, `i64`, `f64`, strings) so a wire protocol can ship whole
//! rows in the same format the storage layer uses.
//!
//! Decoding validates untrusted input and reports
//! [`TemporalError::Corrupt`] instead of panicking.

use crate::chronon::Chronon;
use crate::element::Element;
use crate::error::{Result, TemporalError};
use crate::instant::Instant;
use crate::period::Period;
use crate::span::Span;
use bytes::{Buf, BufMut};

const TAG_FIXED: u8 = 0;
const TAG_NOW_RELATIVE: u8 = 1;

fn need(buf: &impl Buf, n: usize, what: &'static str) -> Result<()> {
    if buf.remaining() < n {
        Err(TemporalError::Corrupt {
            what,
            reason: format!("need {n} more bytes"),
        })
    } else {
        Ok(())
    }
}

/// Encodes a [`Chronon`] (8 bytes).
pub fn encode_chronon(c: Chronon, out: &mut impl BufMut) {
    out.put_i64_le(c.raw());
}

/// Decodes a [`Chronon`], validating the timeline bounds.
pub fn decode_chronon(buf: &mut impl Buf) -> Result<Chronon> {
    need(buf, 8, "Chronon")?;
    Chronon::from_raw(buf.get_i64_le()).map_err(|_| TemporalError::Corrupt {
        what: "Chronon",
        reason: "second count outside the supported timeline".into(),
    })
}

/// Encodes a [`Span`] (8 bytes).
pub fn encode_span(s: Span, out: &mut impl BufMut) {
    out.put_i64_le(s.seconds());
}

/// Decodes a [`Span`].
pub fn decode_span(buf: &mut impl Buf) -> Result<Span> {
    need(buf, 8, "Span")?;
    Ok(Span::from_seconds(buf.get_i64_le()))
}

/// Encodes an [`Instant`] (9 bytes).
pub fn encode_instant(i: Instant, out: &mut impl BufMut) {
    match i {
        Instant::Fixed(c) => {
            out.put_u8(TAG_FIXED);
            encode_chronon(c, out);
        }
        Instant::NowRelative(off) => {
            out.put_u8(TAG_NOW_RELATIVE);
            encode_span(off, out);
        }
    }
}

/// Decodes an [`Instant`].
pub fn decode_instant(buf: &mut impl Buf) -> Result<Instant> {
    need(buf, 1, "Instant")?;
    match buf.get_u8() {
        TAG_FIXED => decode_chronon(buf).map(Instant::Fixed),
        TAG_NOW_RELATIVE => decode_span(buf).map(Instant::NowRelative),
        t => Err(TemporalError::Corrupt {
            what: "Instant",
            reason: format!("unknown tag {t}"),
        }),
    }
}

/// Encodes a [`Period`] (18 bytes).
pub fn encode_period(p: Period, out: &mut impl BufMut) {
    encode_instant(p.start(), out);
    encode_instant(p.end(), out);
}

/// Decodes a [`Period`].
pub fn decode_period(buf: &mut impl Buf) -> Result<Period> {
    let start = decode_instant(buf)?;
    let end = decode_instant(buf)?;
    Ok(Period::new(start, end))
}

/// Encodes an [`Element`] (4 + 18·n bytes).
pub fn encode_element(e: &Element, out: &mut impl BufMut) {
    let n = u32::try_from(e.raw_periods().len()).expect("Element with > u32::MAX periods");
    out.put_u32_le(n);
    for &p in e.raw_periods() {
        encode_period(p, out);
    }
}

/// Decodes an [`Element`].
pub fn decode_element(buf: &mut impl Buf) -> Result<Element> {
    need(buf, 4, "Element")?;
    let n = buf.get_u32_le() as usize;
    // Guard against a corrupt length field demanding absurd allocation:
    // every period needs 18 bytes, so the buffer bounds n.
    if buf.remaining() < n.saturating_mul(18) {
        return Err(TemporalError::Corrupt {
            what: "Element",
            reason: format!("claimed {n} periods but buffer is too short"),
        });
    }
    let mut periods = Vec::with_capacity(n);
    for _ in 0..n {
        periods.push(decode_period(buf)?);
    }
    Ok(Element::from_periods(periods))
}

/// Convenience: encodes any TIP value into a fresh byte vector.
pub fn element_to_vec(e: &Element) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 18 * e.raw_periods().len());
    encode_element(e, &mut out);
    out
}

// ----- builtin scalar codecs ---------------------------------------------

/// Encodes a `bool` (1 byte).
pub fn encode_bool(b: bool, out: &mut impl BufMut) {
    out.put_u8(b as u8);
}

/// Decodes a `bool`, rejecting anything but 0/1.
pub fn decode_bool(buf: &mut impl Buf) -> Result<bool> {
    need(buf, 1, "bool")?;
    match buf.get_u8() {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(TemporalError::Corrupt {
            what: "bool",
            reason: format!("invalid byte {t}"),
        }),
    }
}

/// Encodes an `i64` (8 bytes, little-endian).
pub fn encode_i64(v: i64, out: &mut impl BufMut) {
    out.put_i64_le(v);
}

/// Decodes an `i64`.
pub fn decode_i64(buf: &mut impl Buf) -> Result<i64> {
    need(buf, 8, "i64")?;
    Ok(buf.get_i64_le())
}

/// Encodes an `f64` (8 bytes, IEEE-754 bits, little-endian).
pub fn encode_f64(v: f64, out: &mut impl BufMut) {
    out.put_f64_le(v);
}

/// Decodes an `f64` (any bit pattern, including NaN payloads, is valid).
pub fn decode_f64(buf: &mut impl Buf) -> Result<f64> {
    need(buf, 8, "f64")?;
    Ok(buf.get_f64_le())
}

/// Encodes a string (u32 byte length + UTF-8 bytes).
///
/// # Panics
/// Panics when the string is longer than `u32::MAX` bytes.
pub fn encode_str(s: &str, out: &mut impl BufMut) {
    let n = u32::try_from(s.len()).expect("string longer than u32::MAX bytes");
    out.put_u32_le(n);
    out.put_slice(s.as_bytes());
}

/// Decodes a string, validating the length field and UTF-8.
pub fn decode_str(buf: &mut impl Buf) -> Result<String> {
    need(buf, 4, "string")?;
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(TemporalError::Corrupt {
            what: "string",
            reason: format!("claimed {n} bytes but buffer is too short"),
        });
    }
    let mut bytes = vec![0u8; n];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| TemporalError::Corrupt {
        what: "string",
        reason: "invalid UTF-8".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_element(text: &str) {
        let e: Element = text.parse().unwrap();
        let bytes = element_to_vec(&e);
        let back = decode_element(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, e, "round trip of {text}");
    }

    #[test]
    fn chronon_round_trip() {
        for c in [Chronon::BEGINNING, Chronon::EPOCH, Chronon::FOREVER] {
            let mut buf = Vec::new();
            encode_chronon(c, &mut buf);
            assert_eq!(buf.len(), 8);
            assert_eq!(decode_chronon(&mut buf.as_slice()).unwrap(), c);
        }
    }

    #[test]
    fn chronon_rejects_out_of_range() {
        let mut buf = Vec::new();
        buf.put_i64_le(i64::MAX);
        assert!(decode_chronon(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn span_round_trip() {
        for s in [
            Span::ZERO,
            Span::from_days(-7),
            Span::from_seconds(i64::MAX),
        ] {
            let mut buf = Vec::new();
            encode_span(s, &mut buf);
            assert_eq!(decode_span(&mut buf.as_slice()).unwrap(), s);
        }
    }

    #[test]
    fn instant_round_trip() {
        for text in ["NOW", "NOW-7", "1999-09-01 08:00:00"] {
            let i: Instant = text.parse().unwrap();
            let mut buf = Vec::new();
            encode_instant(i, &mut buf);
            assert_eq!(decode_instant(&mut buf.as_slice()).unwrap(), i);
        }
    }

    #[test]
    fn instant_rejects_bad_tag() {
        let buf = [7u8, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(decode_instant(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn element_round_trips() {
        round_trip_element("{}");
        round_trip_element("{[1999-10-01, NOW]}");
        round_trip_element("{[1999-01-01, 1999-04-30], [1999-07-01, 1999-10-31]}");
        round_trip_element("{[NOW-7, NOW]}");
    }

    #[test]
    fn element_rejects_truncation() {
        let e: Element = "{[1999-01-01, NOW]}".parse().unwrap();
        let bytes = element_to_vec(&e);
        for cut in 0..bytes.len() {
            assert!(
                decode_element(&mut &bytes[..cut]).is_err(),
                "accepted truncation at {cut}"
            );
        }
    }

    #[test]
    fn element_rejects_absurd_count() {
        let mut buf = Vec::new();
        buf.put_u32_le(u32::MAX);
        assert!(decode_element(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn scalar_round_trips() {
        for b in [false, true] {
            let mut buf = Vec::new();
            encode_bool(b, &mut buf);
            assert_eq!(decode_bool(&mut buf.as_slice()).unwrap(), b);
        }
        for v in [0i64, -1, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            encode_i64(v, &mut buf);
            assert_eq!(decode_i64(&mut buf.as_slice()).unwrap(), v);
        }
        for v in [0.0f64, -2.5, f64::INFINITY, f64::MIN_POSITIVE] {
            let mut buf = Vec::new();
            encode_f64(v, &mut buf);
            assert_eq!(decode_f64(&mut buf.as_slice()).unwrap(), v);
        }
        let mut buf = Vec::new();
        encode_f64(f64::NAN, &mut buf);
        assert!(decode_f64(&mut buf.as_slice()).unwrap().is_nan());
        for s in ["", "Mr.Showbiz", "naïve — ünïcode"] {
            let mut buf = Vec::new();
            encode_str(s, &mut buf);
            assert_eq!(decode_str(&mut buf.as_slice()).unwrap(), s);
        }
    }

    #[test]
    fn scalar_decoders_reject_truncation_and_garbage() {
        assert!(decode_bool(&mut [].as_slice()).is_err());
        assert!(decode_bool(&mut [7u8].as_slice()).is_err(), "bad bool byte");
        assert!(decode_i64(&mut [0u8; 7].as_slice()).is_err());
        assert!(decode_f64(&mut [0u8; 3].as_slice()).is_err());
        // String whose length field overruns the buffer.
        let mut buf = Vec::new();
        buf.put_u32_le(100);
        buf.put_slice(b"short");
        assert!(decode_str(&mut buf.as_slice()).is_err());
        // Invalid UTF-8 payload.
        let mut buf = Vec::new();
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        assert!(decode_str(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn binary_is_smaller_than_text_for_big_elements() {
        // Supports the paper's "efficient binary format" claim (E8).
        let mut periods = Vec::new();
        for i in 0..100 {
            let s = Chronon::from_ymd(1999, 1, 1).unwrap() + Span::from_days(i * 10);
            periods.push(Period::fixed(s, s + Span::from_days(5)));
        }
        let e = Element::from_periods(periods);
        let bin = element_to_vec(&e).len();
        let txt = e.to_string().len();
        assert!(bin < txt, "binary {bin} >= text {txt}");
    }
}
