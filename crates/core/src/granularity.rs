//! Time granularities — coarser views of the chronon timeline.
//!
//! TIP fixes the chronon at one second, but the paper's future-work
//! section aims at TSQL2-class expressive power, and TSQL2's model is
//! granularity-aware: instants can be truncated to days, months, or
//! years, and periods aligned to granule boundaries. This module
//! provides that layer on top of the second-granularity core.

use crate::chronon::{days_in_month, Chronon};
use crate::error::Result;
use crate::period::ResolvedPeriod;
use crate::span::Span;

/// A calendar granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Granularity {
    Second,
    Minute,
    Hour,
    Day,
    /// ISO weeks (Monday-based).
    Week,
    Month,
    Year,
}

impl Granularity {
    /// The canonical lowercase name (used by the SQL `trunc` routine).
    pub fn name(self) -> &'static str {
        match self {
            Granularity::Second => "second",
            Granularity::Minute => "minute",
            Granularity::Hour => "hour",
            Granularity::Day => "day",
            Granularity::Week => "week",
            Granularity::Month => "month",
            Granularity::Year => "year",
        }
    }

    /// Parses a granularity name (case-insensitive, singular or plural).
    pub fn parse(name: &str) -> Option<Granularity> {
        let l = name.trim().to_ascii_lowercase();
        Some(match l.trim_end_matches('s') {
            "second" | "sec" => Granularity::Second,
            "minute" | "min" => Granularity::Minute,
            "hour" => Granularity::Hour,
            "day" => Granularity::Day,
            "week" => Granularity::Week,
            "month" => Granularity::Month,
            "year" => Granularity::Year,
            _ => return None,
        })
    }

    /// All granularities, finest first.
    pub const ALL: [Granularity; 7] = [
        Granularity::Second,
        Granularity::Minute,
        Granularity::Hour,
        Granularity::Day,
        Granularity::Week,
        Granularity::Month,
        Granularity::Year,
    ];
}

/// Truncates a chronon down to the start of its enclosing granule.
pub fn truncate(c: Chronon, g: Granularity) -> Chronon {
    let (y, mo, d, h, mi, _s) = c.to_civil();
    let build = |y, mo, d, h, mi, s| {
        Chronon::from_ymd_hms(y, mo, d, h, mi, s).expect("truncation stays in range")
    };
    match g {
        Granularity::Second => c,
        Granularity::Minute => build(y, mo, d, h, mi, 0),
        Granularity::Hour => build(y, mo, d, h, 0, 0),
        Granularity::Day => build(y, mo, d, 0, 0, 0),
        Granularity::Week => {
            let midnight = build(y, mo, d, 0, 0, 0);
            let weekday = i64::from(midnight.weekday()); // 0 = Monday
            midnight.saturating_add(Span::from_days(-weekday))
        }
        Granularity::Month => build(y, mo, 1, 0, 0, 0),
        Granularity::Year => build(y, 1, 1, 0, 0, 0),
    }
}

/// The first chronon of the *next* granule (saturating at the end of the
/// timeline).
pub fn next_granule(c: Chronon, g: Granularity) -> Chronon {
    let t = truncate(c, g);
    let (y, mo, ..) = t.to_civil();
    match g {
        Granularity::Second => t.succ(),
        Granularity::Minute => t.saturating_add(Span::MINUTE),
        Granularity::Hour => t.saturating_add(Span::HOUR),
        Granularity::Day => t.saturating_add(Span::DAY),
        Granularity::Week => t.saturating_add(Span::WEEK),
        Granularity::Month => {
            let (ny, nmo) = if mo == 12 { (y + 1, 1) } else { (y, mo + 1) };
            Chronon::from_ymd(ny.min(9999), nmo, 1).unwrap_or(Chronon::FOREVER)
        }
        Granularity::Year => Chronon::from_ymd((y + 1).min(9999), 1, 1).unwrap_or(Chronon::FOREVER),
    }
}

/// The granule (as a closed period) containing a chronon.
pub fn granule_of(c: Chronon, g: Granularity) -> ResolvedPeriod {
    let start = truncate(c, g);
    let next = next_granule(c, g);
    let end = if next > start { next.pred() } else { start };
    ResolvedPeriod::new(start, end).expect("granule is nonempty")
}

/// Expands a period outward to whole granule boundaries (the TSQL2
/// "cast to coarser granularity" on periods): the result covers every
/// granule the input touches.
pub fn expand_to(p: ResolvedPeriod, g: Granularity) -> ResolvedPeriod {
    let start = truncate(p.start(), g);
    let end = granule_of(p.end(), g).end();
    ResolvedPeriod::new(start, end).expect("expansion preserves order")
}

/// The number of granules a period touches (e.g. "how many distinct
/// months does this period span?").
pub fn granule_count(p: ResolvedPeriod, g: Granularity) -> Result<u64> {
    let mut cursor = truncate(p.start(), g);
    let mut n = 0u64;
    while cursor <= p.end() {
        n += 1;
        let next = next_granule(cursor, g);
        if next <= cursor {
            break; // saturated at FOREVER
        }
        cursor = next;
    }
    Ok(n)
}

/// Iterates the granules (as closed periods) that a period touches.
pub fn granules_in(p: ResolvedPeriod, g: Granularity) -> GranuleIter {
    GranuleIter {
        cursor: Some(truncate(p.start(), g)),
        end: p.end(),
        g,
    }
}

/// Iterator over the granules touching a period; see [`granules_in`].
pub struct GranuleIter {
    cursor: Option<Chronon>,
    end: Chronon,
    g: Granularity,
}

impl Iterator for GranuleIter {
    type Item = ResolvedPeriod;

    fn next(&mut self) -> Option<ResolvedPeriod> {
        let start = self.cursor?;
        if start > self.end {
            return None;
        }
        let granule = granule_of(start, self.g);
        let next = next_granule(start, self.g);
        self.cursor = if next > start { Some(next) } else { None };
        Some(granule)
    }
}

/// Days in the month containing `c` (convenience re-export at the
/// granularity level).
pub fn month_length(c: Chronon) -> u32 {
    days_in_month(c.year(), c.month())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Chronon {
        s.parse().unwrap()
    }

    #[test]
    fn truncate_all_granularities() {
        let x = c("1999-09-23 14:35:27");
        assert_eq!(truncate(x, Granularity::Second), x);
        assert_eq!(truncate(x, Granularity::Minute), c("1999-09-23 14:35:00"));
        assert_eq!(truncate(x, Granularity::Hour), c("1999-09-23 14:00:00"));
        assert_eq!(truncate(x, Granularity::Day), c("1999-09-23"));
        // 1999-09-23 was a Thursday; the ISO week starts Monday 09-20.
        assert_eq!(truncate(x, Granularity::Week), c("1999-09-20"));
        assert_eq!(truncate(x, Granularity::Month), c("1999-09-01"));
        assert_eq!(truncate(x, Granularity::Year), c("1999-01-01"));
    }

    #[test]
    fn truncation_is_idempotent_and_monotone() {
        for g in Granularity::ALL {
            for s in ["1999-02-28 23:59:59", "2000-02-29", "1999-12-31 00:00:01"] {
                let x = c(s);
                let t = truncate(x, g);
                assert_eq!(truncate(t, g), t, "{g:?} {s}");
                assert!(t <= x, "{g:?} {s}");
            }
        }
    }

    #[test]
    fn next_granule_crosses_boundaries() {
        assert_eq!(
            next_granule(c("1999-12-31 23:59:59"), Granularity::Day),
            c("2000-01-01")
        );
        assert_eq!(
            next_granule(c("1999-12-15"), Granularity::Month),
            c("2000-01-01")
        );
        assert_eq!(
            next_granule(c("1999-06-06"), Granularity::Year),
            c("2000-01-01")
        );
        // Leap-year February.
        assert_eq!(
            next_granule(c("2000-02-10"), Granularity::Month),
            c("2000-03-01")
        );
    }

    #[test]
    fn granule_of_is_a_partition_cell() {
        let x = c("1999-09-23 14:35:27");
        let m = granule_of(x, Granularity::Month);
        assert_eq!(m.start(), c("1999-09-01"));
        assert_eq!(m.end(), c("1999-09-30 23:59:59"));
        assert!(m.contains_chronon(x));
    }

    #[test]
    fn expand_covers_touched_granules() {
        let p = ResolvedPeriod::new(c("1999-01-15"), c("1999-03-02")).unwrap();
        let e = expand_to(p, Granularity::Month);
        assert_eq!(e.start(), c("1999-01-01"));
        assert_eq!(e.end(), c("1999-03-31 23:59:59"));
        assert!(e.contains_period(p));
    }

    #[test]
    fn granule_count_and_iteration() {
        let p = ResolvedPeriod::new(c("1999-01-15"), c("1999-03-02")).unwrap();
        assert_eq!(granule_count(p, Granularity::Month).unwrap(), 3);
        let months: Vec<_> = granules_in(p, Granularity::Month).collect();
        assert_eq!(months.len(), 3);
        assert_eq!(months[0].start(), c("1999-01-01"));
        assert_eq!(months[2].end(), c("1999-03-31 23:59:59"));
        // A single-chronon period touches exactly one granule.
        let single = ResolvedPeriod::at(c("1999-06-15 12:00:00"));
        assert_eq!(granule_count(single, Granularity::Day).unwrap(), 1);
    }

    #[test]
    fn parse_names() {
        assert_eq!(Granularity::parse("DAY"), Some(Granularity::Day));
        assert_eq!(Granularity::parse("months"), Some(Granularity::Month));
        assert_eq!(Granularity::parse("sec"), Some(Granularity::Second));
        assert_eq!(Granularity::parse("fortnight"), None);
        for g in Granularity::ALL {
            assert_eq!(Granularity::parse(g.name()), Some(g));
        }
    }

    #[test]
    fn month_length_helper() {
        assert_eq!(month_length(c("2000-02-15")), 29);
        assert_eq!(month_length(c("1999-02-15")), 28);
        assert_eq!(month_length(c("1999-09-15")), 30);
    }

    #[test]
    fn week_truncation_is_monday() {
        // 2026-07-07 is a Tuesday; its week starts Monday 2026-07-06.
        assert_eq!(
            truncate(c("2026-07-07"), Granularity::Week),
            c("2026-07-06")
        );
        // A Monday truncates to itself.
        assert_eq!(
            truncate(c("2026-07-06 10:00:00"), Granularity::Week),
            c("2026-07-06")
        );
    }
}
