//! Temporal aggregation and coalescing.
//!
//! The paper's `group_union` aggregate "computes the union of a collection
//! of Elements and returns a single Element", which is exactly the
//! *temporal coalescing* operation of Böhlen/Snodgrass/Soo: overlapping
//! and adjacent validity periods of value-equivalent tuples are merged.
//! The paper's worked example shows why coalescing matters:
//! `length(group_union(valid))` counts each covered chronon once, whereas
//! `SUM(length(valid))` double-counts periods during which a patient took
//! several medicines simultaneously.
//!
//! The aggregators here follow the classic init/step/merge/finish shape so
//! the DataBlade layer can expose them as SQL aggregates, and so a
//! parallel or partitioned executor could combine partial states.

use crate::element::ResolvedElement;
use crate::period::ResolvedPeriod;

/// Incremental set-union aggregate over `ResolvedElement`s
/// (the SQL `group_union`).
///
/// Periods are accumulated and normalized once at `finish`, so aggregating
/// `n` total periods costs `O(n log n)` regardless of how they arrive.
#[derive(Debug, Default, Clone)]
pub struct ElementUnionAggregate {
    periods: Vec<ResolvedPeriod>,
}

impl ElementUnionAggregate {
    /// A fresh (empty) aggregate state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one element into the state.
    pub fn step(&mut self, e: &ResolvedElement) {
        self.periods.extend_from_slice(e.periods());
    }

    /// Folds a bare period into the state.
    pub fn step_period(&mut self, p: ResolvedPeriod) {
        self.periods.push(p);
    }

    /// Combines two partial states (for partitioned evaluation).
    pub fn merge(&mut self, other: ElementUnionAggregate) {
        self.periods.extend(other.periods);
    }

    /// Produces the coalesced union.
    pub fn finish(self) -> ResolvedElement {
        ResolvedElement::normalize(self.periods)
    }
}

/// Incremental set-intersection aggregate over `ResolvedElement`s
/// (the SQL `group_intersect`).
///
/// The intersection of zero elements is undefined in set terms; following
/// SQL aggregate convention the empty group yields the empty element.
#[derive(Debug, Default, Clone)]
pub struct ElementIntersectAggregate {
    acc: Option<ResolvedElement>,
}

impl ElementIntersectAggregate {
    /// A fresh aggregate state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one element into the state.
    pub fn step(&mut self, e: &ResolvedElement) {
        self.acc = Some(match self.acc.take() {
            Some(acc) => acc.intersect(e),
            None => e.clone(),
        });
    }

    /// Combines two partial states.
    pub fn merge(&mut self, other: ElementIntersectAggregate) {
        if let Some(o) = other.acc {
            self.step(&o);
        }
    }

    /// Produces the intersection (empty when the group was empty).
    pub fn finish(self) -> ResolvedElement {
        self.acc.unwrap_or_else(ResolvedElement::empty)
    }
}

/// Coalesces an arbitrary collection of periods into a normalized element —
/// the standalone form of temporal coalescing.
pub fn coalesce_periods<I: IntoIterator<Item = ResolvedPeriod>>(periods: I) -> ResolvedElement {
    ResolvedElement::normalize(periods.into_iter().collect())
}

/// Unions an arbitrary collection of elements (convenience wrapper over
/// [`ElementUnionAggregate`]).
pub fn union_all<'a, I: IntoIterator<Item = &'a ResolvedElement>>(elems: I) -> ResolvedElement {
    let mut agg = ElementUnionAggregate::new();
    for e in elems {
        agg.step(e);
    }
    agg.finish()
}

/// Intersects an arbitrary collection of elements.
pub fn intersect_all<'a, I: IntoIterator<Item = &'a ResolvedElement>>(elems: I) -> ResolvedElement {
    let mut agg = ElementIntersectAggregate::new();
    for e in elems {
        agg.step(e);
    }
    agg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chronon::Chronon;
    use crate::span::Span;

    fn rp(a: i64, b: i64) -> ResolvedPeriod {
        ResolvedPeriod::new(Chronon::from_raw(a).unwrap(), Chronon::from_raw(b).unwrap()).unwrap()
    }

    fn rel(pairs: &[(i64, i64)]) -> ResolvedElement {
        ResolvedElement::normalize(pairs.iter().map(|&(a, b)| rp(a, b)).collect())
    }

    #[test]
    fn group_union_coalesces() {
        let a = rel(&[(0, 10)]);
        let b = rel(&[(5, 20)]);
        let c = rel(&[(21, 30)]);
        let u = union_all([&a, &b, &c]);
        assert_eq!(u.periods(), &[rp(0, 30)]);
    }

    #[test]
    fn paper_sum_vs_group_union_discrepancy() {
        // A patient takes two drugs over the *same* 10-chronon window.
        let d1 = rel(&[(0, 9)]);
        let d2 = rel(&[(0, 9)]);
        let sum_of_lengths = d1.length() + d2.length();
        let coalesced_length = union_all([&d1, &d2]).length();
        assert_eq!(sum_of_lengths, Span::from_seconds(20)); // double counted
        assert_eq!(coalesced_length, Span::from_seconds(10)); // correct
    }

    #[test]
    fn union_aggregate_step_merge_finish() {
        let mut left = ElementUnionAggregate::new();
        left.step(&rel(&[(0, 5)]));
        let mut right = ElementUnionAggregate::new();
        right.step(&rel(&[(6, 10)]));
        right.step_period(rp(100, 110));
        left.merge(right);
        let r = left.finish();
        assert_eq!(r.periods(), &[rp(0, 10), rp(100, 110)]);
    }

    #[test]
    fn empty_group_yields_empty_element() {
        assert!(ElementUnionAggregate::new().finish().is_empty());
        assert!(ElementIntersectAggregate::new().finish().is_empty());
    }

    #[test]
    fn group_intersect() {
        let a = rel(&[(0, 20)]);
        let b = rel(&[(10, 30)]);
        let c = rel(&[(15, 40)]);
        let i = intersect_all([&a, &b, &c]);
        assert_eq!(i.periods(), &[rp(15, 20)]);
    }

    #[test]
    fn intersect_aggregate_merge() {
        let mut left = ElementIntersectAggregate::new();
        left.step(&rel(&[(0, 20)]));
        let mut right = ElementIntersectAggregate::new();
        right.step(&rel(&[(10, 30)]));
        left.merge(right);
        assert_eq!(left.finish().periods(), &[rp(10, 20)]);
    }

    #[test]
    fn coalesce_periods_standalone() {
        let e = coalesce_periods([rp(5, 10), rp(0, 6), rp(11, 12)]);
        assert_eq!(e.periods(), &[rp(0, 12)]);
    }

    #[test]
    fn single_element_group_is_identity() {
        let a = rel(&[(3, 7), (9, 12)]);
        assert_eq!(union_all([&a]), a);
        assert_eq!(intersect_all([&a]), a);
    }
}
