//! `Period`: a pair of `Instant`s marking the start and end of a time
//! period, and `ResolvedPeriod`, its fixed (NOW-free) counterpart.
//!
//! Periods are **closed at both ends** at chronon granularity: the paper's
//! `[1999-01-01, 1999-04-30]` covers every chronon from the first through
//! the last. A period whose endpoints contain `NOW` (e.g. `[NOW-7, NOW]`,
//! "during the past week") is resolved against the transaction time at
//! query-evaluation time; if resolution inverts the endpoints the period
//! denotes the empty set of chronons, following the NOW-semantics
//! literature the paper cites.

use crate::chronon::Chronon;
use crate::error::{Result, TemporalError};
use crate::instant::Instant;
use crate::span::Span;
use std::fmt;
use std::str::FromStr;

/// A (possibly NOW-relative) time period `[start, end]`.
///
/// ```
/// use tip_core::{Chronon, Period};
/// let p: Period = "[NOW-7, NOW]".parse().unwrap();
/// let now = Chronon::from_ymd(1999, 9, 23).unwrap();
/// let r = p.resolve(now).unwrap().expect("nonempty");
/// assert_eq!(r.to_string(), "[1999-09-16, 1999-09-23]");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Period {
    start: Instant,
    end: Instant,
}

impl Period {
    /// Builds a period from two instants. Validity (start ≤ end) can only
    /// be checked at resolution time when `NOW` is involved, so
    /// construction always succeeds; a statically-inverted fixed period
    /// simply resolves to the empty set.
    pub fn new(start: Instant, end: Instant) -> Period {
        Period { start, end }
    }

    /// A fixed period from two chronons.
    pub fn fixed(start: Chronon, end: Chronon) -> Period {
        Period {
            start: Instant::Fixed(start),
            end: Instant::Fixed(end),
        }
    }

    /// The degenerate period containing a single chronon (the paper's
    /// `Chronon → Period` cast: `1999-09-01` becomes
    /// `[1999-09-01, 1999-09-01]`).
    pub fn at(c: Chronon) -> Period {
        Period::fixed(c, c)
    }

    /// The starting instant.
    pub fn start(self) -> Instant {
        self.start
    }

    /// The ending instant.
    pub fn end(self) -> Instant {
        self.end
    }

    /// `true` when either endpoint is NOW-relative.
    pub fn is_now_relative(self) -> bool {
        self.start.is_now_relative() || self.end.is_now_relative()
    }

    /// Substitutes the transaction time for `NOW` in both endpoints.
    /// Returns `Ok(None)` when the resolved period is empty (inverted
    /// endpoints).
    pub fn resolve(self, now: Chronon) -> Result<Option<ResolvedPeriod>> {
        let s = self.start.resolve(now)?;
        let e = self.end.resolve(now)?;
        Ok(ResolvedPeriod::checked(s, e))
    }

    /// Shifts both endpoints by a span.
    pub fn shift(self, s: Span) -> Result<Period> {
        Ok(Period {
            start: self.start.shift(s)?,
            end: self.end.shift(s)?,
        })
    }
}

impl From<ResolvedPeriod> for Period {
    fn from(r: ResolvedPeriod) -> Period {
        Period::fixed(r.start(), r.end())
    }
}

impl fmt::Display for Period {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

impl fmt::Debug for Period {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Period{self}")
    }
}

impl FromStr for Period {
    type Err = TemporalError;
    fn from_str(text: &str) -> Result<Period> {
        let err = |reason: &str| TemporalError::Parse {
            what: "Period",
            input: text.to_owned(),
            reason: reason.to_owned(),
        };
        let t = text.trim();
        let inner = t
            .strip_prefix('[')
            .and_then(|x| x.strip_suffix(']'))
            .ok_or_else(|| err("expected [start, end]"))?;
        let (a, b) = inner
            .split_once(',')
            .ok_or_else(|| err("expected ',' separator"))?;
        let start: Instant = a.trim().parse().map_err(|_| err("invalid start instant"))?;
        let end: Instant = b.trim().parse().map_err(|_| err("invalid end instant"))?;
        Ok(Period::new(start, end))
    }
}

/// A fixed, nonempty, closed period `[start, end]` with `start <= end`.
///
/// This is the type the `Element` algebra and Allen's operators work on,
/// after `NOW` has been substituted away.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResolvedPeriod {
    start: Chronon,
    end: Chronon,
}

impl ResolvedPeriod {
    /// Builds a resolved period, returning an error when `start > end`.
    pub fn new(start: Chronon, end: Chronon) -> Result<ResolvedPeriod> {
        ResolvedPeriod::checked(start, end).ok_or(TemporalError::OutOfRange {
            what: "ResolvedPeriod with start > end",
        })
    }

    /// Builds a resolved period, returning `None` when `start > end`
    /// (the empty period).
    pub fn checked(start: Chronon, end: Chronon) -> Option<ResolvedPeriod> {
        (start <= end).then_some(ResolvedPeriod { start, end })
    }

    /// The single-chronon period `[c, c]`.
    pub fn at(c: Chronon) -> ResolvedPeriod {
        ResolvedPeriod { start: c, end: c }
    }

    /// The whole supported timeline.
    pub const ALL_TIME: ResolvedPeriod = ResolvedPeriod {
        start: Chronon::BEGINNING,
        end: Chronon::FOREVER,
    };

    /// First chronon of the period.
    pub fn start(self) -> Chronon {
        self.start
    }

    /// Last chronon of the period.
    pub fn end(self) -> Chronon {
        self.end
    }

    /// Number of chronons covered, as a [`Span`]: `end - start + 1` second.
    pub fn duration(self) -> Span {
        self.end - self.start + Span::SECOND
    }

    /// Does the period contain the given chronon?
    pub fn contains_chronon(self, c: Chronon) -> bool {
        self.start <= c && c <= self.end
    }

    /// Does the period entirely contain `other`?
    pub fn contains_period(self, other: ResolvedPeriod) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Do the two periods share at least one chronon?
    pub fn overlaps(self, other: ResolvedPeriod) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Are the two periods adjacent (abutting with no gap and no overlap)?
    pub fn adjacent(self, other: ResolvedPeriod) -> bool {
        (self.end < Chronon::FOREVER && self.end.succ() == other.start)
            || (other.end < Chronon::FOREVER && other.end.succ() == self.start)
    }

    /// The common chronons, if any.
    pub fn intersect(self, other: ResolvedPeriod) -> Option<ResolvedPeriod> {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        ResolvedPeriod::checked(s, e)
    }

    /// The merged period, when the two overlap or abut (otherwise the
    /// union is not a single period).
    pub fn merge(self, other: ResolvedPeriod) -> Option<ResolvedPeriod> {
        if self.overlaps(other) || self.adjacent(other) {
            Some(ResolvedPeriod {
                start: self.start.min(other.start),
                end: self.end.max(other.end),
            })
        } else {
            None
        }
    }

    /// Shifts the period by a span, saturating at the timeline bounds.
    pub fn shift(self, s: Span) -> ResolvedPeriod {
        ResolvedPeriod {
            start: self.start.saturating_add(s),
            end: self.end.saturating_add(s),
        }
    }

    /// Grows (or with a negative span shrinks) the period on both sides;
    /// returns `None` when shrinking empties it.
    pub fn extend(self, s: Span) -> Option<ResolvedPeriod> {
        ResolvedPeriod::checked(self.start.saturating_add(-s), self.end.saturating_add(s))
    }
}

impl fmt::Display for ResolvedPeriod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

impl fmt::Debug for ResolvedPeriod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ResolvedPeriod{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Chronon {
        s.parse().unwrap()
    }

    fn rp(a: &str, b: &str) -> ResolvedPeriod {
        ResolvedPeriod::new(c(a), c(b)).unwrap()
    }

    #[test]
    fn parse_paper_examples() {
        // "[1999-01-01, NOW] denotes since 1999"
        let p: Period = "[1999-01-01, NOW]".parse().unwrap();
        assert_eq!(p.start(), Instant::Fixed(c("1999-01-01")));
        assert_eq!(p.end(), Instant::NOW);
        assert!(p.is_now_relative());
        // "[NOW-7, NOW] denotes during the past week"
        let p: Period = "[NOW-7, NOW]".parse().unwrap();
        assert_eq!(p.to_string(), "[NOW-7, NOW]");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "[1999-01-01]",
            "1999-01-01, NOW",
            "[a, b]",
            "[1999-01-01, ]",
        ] {
            assert!(bad.parse::<Period>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_round_trip() {
        for text in [
            "[1999-01-01, NOW]",
            "[NOW-7, NOW]",
            "[1999-01-01, 1999-04-30]",
        ] {
            let p: Period = text.parse().unwrap();
            assert_eq!(p.to_string(), text);
        }
    }

    #[test]
    fn resolve_now_relative() {
        let p: Period = "[NOW-7, NOW]".parse().unwrap();
        let r = p.resolve(c("1999-09-23")).unwrap().unwrap();
        assert_eq!(r.start(), c("1999-09-16"));
        assert_eq!(r.end(), c("1999-09-23"));
    }

    #[test]
    fn resolve_inverted_is_empty() {
        // "since 1999" evaluated in 1998 is empty.
        let p: Period = "[1999-01-01, NOW]".parse().unwrap();
        assert!(p.resolve(c("1998-06-01")).unwrap().is_none());
        assert!(p.resolve(c("1999-01-01")).unwrap().is_some());
    }

    #[test]
    fn chronon_cast_is_singleton_period() {
        let p = Period::at(c("1999-09-01"));
        let r = p.resolve(Chronon::EPOCH).unwrap().unwrap();
        assert_eq!(r.duration(), Span::SECOND);
        assert!(r.contains_chronon(c("1999-09-01")));
    }

    #[test]
    fn duration_counts_chronons() {
        // [00:00:00, 23:59:59] on one day covers exactly one day of chronons.
        let r = ResolvedPeriod::new(c("1999-01-01"), c("1999-01-01 23:59:59")).unwrap();
        assert_eq!(r.duration(), Span::DAY);
    }

    #[test]
    fn overlaps_and_intersect() {
        let a = rp("1999-01-01", "1999-04-30");
        let b = rp("1999-03-01", "1999-07-31");
        assert!(a.overlaps(b) && b.overlaps(a));
        let i = a.intersect(b).unwrap();
        assert_eq!(i, rp("1999-03-01", "1999-04-30"));

        let cseg = rp("1999-07-01", "1999-10-31");
        assert!(!a.overlaps(cseg));
        assert!(a.intersect(cseg).is_none());
    }

    #[test]
    fn single_chronon_touch_counts_as_overlap() {
        let a = rp("1999-01-01", "1999-02-01");
        let b = rp("1999-02-01", "1999-03-01");
        assert!(a.overlaps(b));
        assert_eq!(a.intersect(b).unwrap(), ResolvedPeriod::at(c("1999-02-01")));
    }

    #[test]
    fn adjacency_in_closed_semantics() {
        let a = ResolvedPeriod::new(c("1999-01-01"), c("1999-01-01 23:59:59")).unwrap();
        let b = rp("1999-01-02", "1999-01-03");
        assert!(a.adjacent(b) && b.adjacent(a));
        assert!(!a.overlaps(b));
        let m = a.merge(b).unwrap();
        assert_eq!(m.start(), c("1999-01-01"));
        assert_eq!(m.end(), c("1999-01-03"));
    }

    #[test]
    fn merge_disjoint_fails() {
        let a = rp("1999-01-01", "1999-01-02");
        let b = rp("1999-05-01", "1999-05-02");
        assert!(a.merge(b).is_none());
    }

    #[test]
    fn contains() {
        let outer = rp("1999-01-01", "1999-12-31");
        let inner = rp("1999-03-01", "1999-04-01");
        assert!(outer.contains_period(inner));
        assert!(!inner.contains_period(outer));
        assert!(outer.contains_period(outer));
        assert!(outer.contains_chronon(c("1999-06-15")));
        assert!(!outer.contains_chronon(c("2000-01-01")));
    }

    #[test]
    fn shift_and_extend() {
        let p = rp("1999-01-01", "1999-01-10");
        let q = p.shift(Span::from_days(5));
        assert_eq!(q.start(), c("1999-01-06"));
        assert_eq!(q.end(), c("1999-01-15"));
        let e = p.extend(Span::from_days(1)).unwrap();
        assert_eq!(e.start(), c("1998-12-31"));
        assert_eq!(e.end(), c("1999-01-11"));
        // Shrinking a 1-chronon period empties it.
        assert!(ResolvedPeriod::at(c("1999-01-01"))
            .extend(-Span::SECOND)
            .is_none());
    }

    #[test]
    fn all_time_contains_everything() {
        assert!(ResolvedPeriod::ALL_TIME.contains_chronon(Chronon::BEGINNING));
        assert!(ResolvedPeriod::ALL_TIME.contains_chronon(Chronon::FOREVER));
    }

    #[test]
    fn period_resolved_round_trip() {
        let r = rp("1999-01-01", "1999-04-30");
        let p: Period = r.into();
        assert_eq!(p.resolve(Chronon::EPOCH).unwrap().unwrap(), r);
    }
}
