//! # tip-browser — the TIP Browser, in text mode
//!
//! The paper's §4 demonstrates a Swing GUI for "querying and browsing
//! data stored in a TIP-enabled Informix database":
//!
//! * the user picks any attribute of type `Chronon`, `Instant`, `Period`
//!   or `Element` as the *browsing attribute*;
//! * "there is a time window of adjustable size and position over the
//!   time line";
//! * the browser "automatically highlights all result tuples that are
//!   valid in the window, and graphically displays their valid periods
//!   within the window as segments of the time line";
//! * a slider moves the window; and
//! * the user may "enter a different value for NOW to override its
//!   default interpretation, which provides what-if analysis".
//!
//! This crate reproduces every one of those behaviours over a
//! deterministic text rendering (so the whole interaction is unit
//! testable); the interactive CLI lives in the `tip-browser` binary.

use minidb::{DbError, DbResult, QueryResult, Value};
use tip_blade::{as_chronon, as_element, as_instant, as_period};
use tip_core::{Chronon, Element, Period, ResolvedPeriod, Span};

/// One result tuple in the browser: its rendered cells plus the raw
/// temporal attribute (kept raw so a NOW override can re-resolve it).
#[derive(Debug, Clone)]
struct BrowserRow {
    cells: Vec<String>,
    valid: Element,
}

/// The browser model: a result set, a browsing attribute, a time window,
/// and an interpretation of `NOW`.
#[derive(Debug, Clone)]
pub struct Browser {
    columns: Vec<String>,
    rows: Vec<BrowserRow>,
    window: ResolvedPeriod,
    now: Chronon,
    timeline_width: usize,
}

/// Converts any of the four browsable attribute types into an `Element`
/// (the paper lets the user browse by Chronon, Instant, Period, or
/// Element).
fn value_to_element(v: &Value) -> DbResult<Element> {
    if let Some(e) = as_element(v) {
        return Ok(e.clone());
    }
    if let Some(p) = as_period(v) {
        return Ok(Element::from_period(p));
    }
    if let Some(i) = as_instant(v) {
        return Ok(Element::from_period(Period::new(i, i)));
    }
    if let Some(c) = as_chronon(v) {
        return Ok(Element::from_period(Period::at(c)));
    }
    Err(DbError::exec(
        "browsing attribute must be Chronon, Instant, Period, or Element",
    ))
}

impl Browser {
    /// Builds a browser over a query result. `display` renders cells
    /// (pass the catalog's `display_value`); `temporal_attr` names the
    /// browsing attribute; `now` is the initial interpretation of `NOW`.
    pub fn new(
        result: &QueryResult,
        display: impl Fn(&Value) -> String,
        temporal_attr: &str,
        now: Chronon,
    ) -> DbResult<Browser> {
        let tcol = result
            .col_index(temporal_attr)
            .ok_or_else(|| DbError::exec(format!("no column named {temporal_attr}")))?;
        let columns: Vec<String> = result.columns.iter().map(|(n, _)| n.clone()).collect();
        let mut rows = Vec::with_capacity(result.rows.len());
        for row in &result.rows {
            let valid = value_to_element(&row[tcol])?;
            let cells = row.iter().map(&display).collect();
            rows.push(BrowserRow { cells, valid });
        }
        let mut b = Browser {
            columns,
            rows,
            window: ResolvedPeriod::ALL_TIME,
            now,
            timeline_width: 48,
        };
        b.window = b.extent().unwrap_or(ResolvedPeriod::ALL_TIME);
        Ok(b)
    }

    /// The smallest window covering every tuple's validity (under the
    /// current NOW), used as the initial window.
    pub fn extent(&self) -> Option<ResolvedPeriod> {
        let mut lo: Option<Chronon> = None;
        let mut hi: Option<Chronon> = None;
        for row in &self.rows {
            if let Ok(r) = row.valid.resolve(self.now) {
                if let (Ok(s), Ok(e)) = (r.start(), r.end()) {
                    lo = Some(lo.map_or(s, |x| x.min(s)));
                    hi = Some(hi.map_or(e, |x| x.max(e)));
                }
            }
        }
        ResolvedPeriod::checked(lo?, hi?)
    }

    /// The current window.
    pub fn window(&self) -> ResolvedPeriod {
        self.window
    }

    /// Repositions/resizes the window.
    pub fn set_window(&mut self, window: ResolvedPeriod) {
        self.window = window;
    }

    /// The slider: moves the window along the time line.
    pub fn slide(&mut self, by: Span) {
        self.window = self.window.shift(by);
    }

    /// Grows (positive) or shrinks (negative) the window on both sides;
    /// shrinking below one chronon is ignored.
    pub fn zoom(&mut self, by: Span) {
        if let Some(w) = self.window.extend(by) {
            self.window = w;
        }
    }

    /// The current interpretation of `NOW`.
    pub fn now(&self) -> Chronon {
        self.now
    }

    /// The what-if override: re-interpret `NOW` for every tuple.
    pub fn set_now(&mut self, now: Chronon) {
        self.now = now;
    }

    /// Character width of the timeline column.
    pub fn set_timeline_width(&mut self, width: usize) {
        self.timeline_width = width.clamp(8, 200);
    }

    /// Number of result tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Indexes of tuples valid somewhere inside the current window — the
    /// rows the GUI highlights.
    pub fn highlighted(&self) -> Vec<usize> {
        let win = tip_core::ResolvedElement::from_period(self.window);
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| {
                row.valid
                    .resolve(self.now)
                    .map(|r| r.overlaps(&win))
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Timeslice: indexes of tuples valid at one exact instant — the
    /// degenerate (zero-width) window, i.e. a TSQL2-style snapshot.
    pub fn timeslice(&self, at: Chronon) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| {
                row.valid
                    .resolve(self.now)
                    .map(|r| r.contains_chronon(at))
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The ASCII timeline for one row: the window mapped onto
    /// `timeline_width` characters, `#` where the tuple is valid.
    pub fn timeline(&self, row: usize) -> String {
        let Some(r) = self.rows.get(row) else {
            return String::new();
        };
        let Ok(resolved) = r.valid.resolve(self.now) else {
            return "?".repeat(self.timeline_width);
        };
        let w = self.timeline_width as i64;
        let ws = self.window.start().raw();
        let we = self.window.end().raw();
        let span = (we - ws + 1).max(1);
        let mut out = String::with_capacity(self.timeline_width);
        for k in 0..w {
            // The chronon subrange this character covers.
            let lo = ws + k * span / w;
            let hi = (ws + (k + 1) * span / w - 1).max(lo);
            let cell = ResolvedPeriod::new(
                Chronon::from_raw(lo).unwrap_or(Chronon::BEGINNING),
                Chronon::from_raw(hi).unwrap_or(Chronon::FOREVER),
            )
            .ok();
            let covered =
                cell.is_some_and(|c| resolved.overlaps(&tip_core::ResolvedElement::from_period(c)));
            out.push(if covered { '#' } else { '.' });
        }
        out
    }

    /// Renders the whole browser view: header with window and NOW, the
    /// result grid with `*` highlights, the timeline column, and the
    /// slider track beneath (Figure 2's layout, in text).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.cells.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let highlighted: std::collections::HashSet<usize> =
            self.highlighted().into_iter().collect();
        let mut out = String::new();
        out.push_str(&format!(
            "TIP Browser — window [{}, {}]  NOW = {}\n",
            self.window.start(),
            self.window.end(),
            self.now
        ));
        // Header.
        out.push_str("  | ");
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!("{c:<w$} | "));
        }
        out.push_str("valid in window\n");
        // Rows.
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(if highlighted.contains(&i) {
                "* | "
            } else {
                "  | "
            });
            for (cell, w) in row.cells.iter().zip(&widths) {
                out.push_str(&format!("{cell:<w$} | "));
            }
            out.push_str(&self.timeline(i));
            out.push('\n');
        }
        // Slider track with a NOW marker when NOW falls inside the window.
        let mut track: Vec<char> = vec!['-'; self.timeline_width];
        let (ws, we) = (self.window.start().raw(), self.window.end().raw());
        if self.window.contains_chronon(self.now) {
            let span = (we - ws + 1).max(1);
            let pos = ((self.now.raw() - ws) * self.timeline_width as i64 / span)
                .clamp(0, self.timeline_width as i64 - 1) as usize;
            track[pos] = 'N';
        }
        let indent: usize = 4 + widths.iter().map(|w| w + 3).sum::<usize>();
        out.push_str(&" ".repeat(indent));
        out.push_str(&track.iter().collect::<String>());
        out.push('\n');
        out.push_str(&format!(
            "{} of {} tuple(s) valid in window\n",
            highlighted.len(),
            self.rows.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::Database;
    use tip_blade::TipBlade;

    fn c(s: &str) -> Chronon {
        s.parse().unwrap()
    }

    fn demo_browser() -> Browser {
        let db = Database::new();
        db.install_blade(&TipBlade).unwrap();
        let mut session = db.session();
        session.set_now_unix(Some(tip_blade::chronon_to_unix(c("1999-12-01"))));
        session
            .execute("CREATE TABLE rx (patient CHAR(20), drug CHAR(20), valid Element)")
            .unwrap();
        session
            .execute(
                "INSERT INTO rx VALUES \
                 ('Showbiz', 'Diabeta', '{[1999-10-01, NOW]}'), \
                 ('Showbiz', 'Aspirin', '{[1999-09-15, 1999-10-20]}'), \
                 ('Medley', 'Tylenol', '{[1999-08-20, 1999-08-25]}')",
            )
            .unwrap();
        let result = session
            .query("SELECT patient, drug, valid FROM rx")
            .unwrap();
        let display = |v: &Value| db.with_catalog(|cat| cat.display_value(v));
        Browser::new(&result, display, "valid", c("1999-12-01")).unwrap()
    }

    #[test]
    fn initial_window_covers_all_validity() {
        let b = demo_browser();
        assert_eq!(b.window().start(), c("1999-08-20"));
        assert_eq!(b.window().end(), c("1999-12-01"));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn highlighting_follows_window() {
        let mut b = demo_browser();
        // Full extent: all three tuples valid somewhere in the window.
        assert_eq!(b.highlighted().len(), 3);
        // Narrow to November: only the open-ended Diabeta row remains.
        b.set_window(ResolvedPeriod::new(c("1999-11-01"), c("1999-11-30")).unwrap());
        assert_eq!(b.highlighted(), vec![0]);
        // August: only Tylenol.
        b.set_window(ResolvedPeriod::new(c("1999-08-01"), c("1999-08-31")).unwrap());
        assert_eq!(b.highlighted(), vec![2]);
    }

    #[test]
    fn slider_moves_window() {
        let mut b = demo_browser();
        b.set_window(ResolvedPeriod::new(c("1999-08-01"), c("1999-08-31")).unwrap());
        b.slide(Span::from_days(45));
        assert_eq!(b.window().start(), c("1999-09-15"));
        assert_eq!(b.highlighted(), vec![0, 1], "mid-September window");
    }

    #[test]
    fn zoom_grows_and_shrinks() {
        let mut b = demo_browser();
        b.set_window(ResolvedPeriod::new(c("1999-09-01"), c("1999-09-30")).unwrap());
        b.zoom(Span::from_days(10));
        assert_eq!(b.window().start(), c("1999-08-22"));
        assert_eq!(b.window().end(), c("1999-10-10"));
        // Shrinking to nothing is ignored.
        b.zoom(Span::from_days(-300));
        assert_eq!(b.window().start(), c("1999-08-22"));
    }

    #[test]
    fn now_override_changes_highlighting() {
        let mut b = demo_browser();
        // In a what-if past where NOW = 1999-09-20, the Diabeta
        // prescription ([1999-10-01, NOW]) hasn't started: it resolves to
        // empty and is never highlighted.
        b.set_now(c("1999-09-20"));
        b.set_window(ResolvedPeriod::new(c("1999-10-01"), c("1999-12-31")).unwrap());
        assert_eq!(b.highlighted(), vec![1]); // only Aspirin reaches October
    }

    #[test]
    fn timeline_shows_segments() {
        let mut b = demo_browser();
        b.set_timeline_width(30);
        b.set_window(ResolvedPeriod::new(c("1999-09-01"), c("1999-12-01")).unwrap());
        let diabeta = b.timeline(0); // valid [1999-10-01, NOW=1999-12-01]
        assert!(
            diabeta.starts_with('.'),
            "not valid at window start: {diabeta}"
        );
        assert!(diabeta.ends_with('#'), "valid at window end: {diabeta}");
        let tylenol = b.timeline(2); // entirely before the window
        assert_eq!(tylenol, ".".repeat(30));
        assert!(b.timeline(99).is_empty(), "out-of-range row");
    }

    #[test]
    fn timeslice_snapshots_an_instant() {
        let b = demo_browser();
        // On 1999-10-10, Diabeta (since Oct 1, open) and Aspirin
        // (Sep 15 - Oct 20) are both active; Tylenol ended in August.
        assert_eq!(b.timeslice(c("1999-10-10")), vec![0, 1]);
        assert_eq!(b.timeslice(c("1999-08-22")), vec![2]);
        assert!(b.timeslice(c("1999-01-01")).is_empty());
    }

    #[test]
    fn render_contains_all_parts() {
        let b = demo_browser();
        let view = b.render();
        assert!(view.contains("TIP Browser"));
        assert!(view.contains("NOW = 1999-12-01"));
        assert!(view.contains("Showbiz"));
        assert!(view.contains("Diabeta"));
        assert!(view.contains('#'));
        assert!(view.contains("N"), "NOW marker on the slider track");
        assert!(view.contains("3 of 3 tuple(s) valid in window"));
    }

    #[test]
    fn browse_by_chronon_attribute() {
        let db = Database::new();
        db.install_blade(&TipBlade).unwrap();
        let session = db.session();
        session
            .execute("CREATE TABLE visits (who CHAR(10), at Chronon)")
            .unwrap();
        session
            .execute("INSERT INTO visits VALUES ('a', '1999-05-05'), ('b', '1999-07-07')")
            .unwrap();
        let result = session.query("SELECT who, at FROM visits").unwrap();
        let display = |v: &Value| db.with_catalog(|cat| cat.display_value(v));
        let mut b = Browser::new(&result, display, "at", c("1999-12-01")).unwrap();
        assert_eq!(b.window().start(), c("1999-05-05"));
        b.set_window(ResolvedPeriod::new(c("1999-07-01"), c("1999-07-31")).unwrap());
        assert_eq!(b.highlighted(), vec![1]);
    }

    #[test]
    fn non_temporal_attribute_rejected() {
        let db = Database::new();
        db.install_blade(&TipBlade).unwrap();
        let session = db.session();
        session.execute("CREATE TABLE t (a INT)").unwrap();
        session.execute("INSERT INTO t VALUES (1)").unwrap();
        let result = session.query("SELECT a FROM t").unwrap();
        let display = |v: &Value| db.with_catalog(|cat| cat.display_value(v));
        assert!(Browser::new(&result, display, "a", Chronon::EPOCH).is_err());
        let result = session.query("SELECT a FROM t").unwrap();
        let display = |v: &Value| db.with_catalog(|cat| cat.display_value(v));
        assert!(Browser::new(&result, display, "zzz", Chronon::EPOCH).is_err());
    }
}
