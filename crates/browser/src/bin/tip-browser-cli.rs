//! Interactive text-mode TIP Browser over the synthetic medical database.
//!
//! Reads commands from stdin (scriptable), prints the browser view after
//! each command — the Figure-2 demo in a terminal:
//!
//! ```text
//! sql SELECT patient, drug, valid FROM Prescription LIMIT 20
//! attr valid
//! window 1999-01-01 1999-12-31
//! slide 30
//! now 1999-09-23
//! show
//! quit
//! ```

use std::io::{self, BufRead, Write};
use tip_browser::Browser;
use tip_client::Connection;
use tip_core::{Chronon, ResolvedPeriod, Span};
use tip_workload::{generate, populate_tip, MedicalConfig};

const HELP: &str = "\
commands:
  connect <host:port>      switch to a remote tip-server
  sql <query>              run a SELECT and load its result
  explain <query>          show the physical plan for a SELECT
  analyze <query>          run it and show per-operator rows/timings
  stats                    show this session's query metrics (SHOW STATS)
  cache                    show plan-cache counters and hit ratio
  attr <column>            choose the temporal browsing attribute
  window <start> <end>     set the time window (chronon literals)
  slide <span>             move the window (e.g. 'slide 30' or 'slide -7')
  zoom <span>              grow (+) / shrink (-) the window on both sides
  now <chronon>|off        override NOW for what-if analysis
  slice <chronon>          timeslice: list tuples valid at an exact instant
  width <n>                set timeline width in characters
  show                     redraw the current view
  help                     this text
  quit                     exit";

fn main() {
    let demo_now = Chronon::from_ymd(1999, 12, 1).expect("valid date");
    // `tip-browser-cli connect <host:port>` starts against a remote
    // tip-server instead of the embedded demo database.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut conn = if args.first().map(String::as_str) == Some("connect") {
        let addr = args.get(1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("usage: tip-browser-cli [connect <host:port>]");
            std::process::exit(2);
        });
        match Connection::connect(addr) {
            Ok(c) => {
                println!("TIP Browser — connected to tip-server at {}.", c.endpoint());
                c
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let c = Connection::open_tip_enabled();
        {
            let session = c.database().session();
            let types = c.tip_types();
            let med = generate(&MedicalConfig::default());
            populate_tip(&session, types, &med).expect("populate demo database");
        }
        println!("TIP Browser — synthetic medical database loaded (200 prescriptions).");
        c
    };
    conn.set_now(Some(demo_now));
    println!("Type 'help' for commands.\n");

    let mut query = "SELECT patient, drug, valid FROM Prescription LIMIT 12".to_owned();
    let mut attr = "valid".to_owned();
    let mut browser = load(&conn, &query, &attr, demo_now);
    if let Some(b) = &browser {
        println!("{}", b.render());
    }

    let stdin = io::stdin();
    loop {
        print!("tip> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        let (cmd, rest) = match line.split_once(' ') {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "" => {}
            "help" => println!("{HELP}"),
            "quit" | "exit" => break,
            "connect" => match Connection::connect(rest) {
                Ok(c) => {
                    conn = c;
                    conn.set_now(Some(demo_now));
                    println!("connected to tip-server at {}", conn.endpoint());
                    browser = load(&conn, &query, &attr, current_now(&conn, demo_now));
                    show(&browser);
                }
                Err(e) => println!("error: {e}"),
            },
            "sql" => {
                query = rest.to_owned();
                browser = load(&conn, &query, &attr, current_now(&conn, demo_now));
                show(&browser);
            }
            "explain" | "analyze" => {
                let prefix = if cmd == "analyze" {
                    "EXPLAIN ANALYZE "
                } else {
                    "EXPLAIN "
                };
                run_plain(&conn, &format!("{prefix}{rest}"));
            }
            "stats" => run_plain(&conn, "SHOW STATS"),
            "cache" => show_cache(&conn),
            "attr" => {
                attr = rest.to_owned();
                browser = load(&conn, &query, &attr, current_now(&conn, demo_now));
                show(&browser);
            }
            "window" => {
                let mut it = rest.split_whitespace();
                match (
                    it.next().and_then(|s| s.parse::<Chronon>().ok()),
                    it.next().and_then(|s| s.parse::<Chronon>().ok()),
                ) {
                    (Some(s), Some(e)) => match ResolvedPeriod::new(s, e) {
                        Ok(w) => {
                            if let Some(b) = &mut browser {
                                b.set_window(w);
                            }
                            show(&browser);
                        }
                        Err(err) => println!("error: {err}"),
                    },
                    _ => println!("usage: window <start> <end>"),
                }
            }
            "slide" | "zoom" => match rest.parse::<Span>() {
                Ok(by) => {
                    if let Some(b) = &mut browser {
                        if cmd == "slide" {
                            b.slide(by);
                        } else {
                            b.zoom(by);
                        }
                    }
                    show(&browser);
                }
                Err(err) => println!("error: {err}"),
            },
            "now" => {
                if rest.eq_ignore_ascii_case("off") {
                    conn.set_now(None);
                    println!("NOW restored to the wall clock.");
                } else {
                    match rest.parse::<Chronon>() {
                        Ok(n) => {
                            conn.set_now(Some(n));
                            if let Some(b) = &mut browser {
                                b.set_now(n);
                            }
                            show(&browser);
                        }
                        Err(err) => println!("error: {err}"),
                    }
                }
            }
            "width" => match rest.parse::<usize>() {
                Ok(n) => {
                    if let Some(b) = &mut browser {
                        b.set_timeline_width(n);
                    }
                    show(&browser);
                }
                Err(_) => println!("usage: width <n>"),
            },
            "slice" => match rest.parse::<tip_core::Chronon>() {
                Ok(at) => match &browser {
                    Some(b) => {
                        let hits = b.timeslice(at);
                        println!("{} tuple(s) valid at {at}: rows {hits:?}", hits.len());
                    }
                    None => println!("no result loaded; use 'sql <query>'"),
                },
                Err(err) => println!("error: {err}"),
            },
            "show" => show(&browser),
            other => println!("unknown command {other:?}; type 'help'"),
        }
    }
}

fn current_now(conn: &Connection, fallback: Chronon) -> Chronon {
    conn.now_override().unwrap_or(fallback)
}

fn load(conn: &Connection, sql: &str, attr: &str, now: Chronon) -> Option<Browser> {
    match conn.query(sql, &[]) {
        Ok(rows) => {
            let result = rows.into_result();
            let db = conn.database().clone();
            match Browser::new(
                &result,
                |v| db.with_catalog(|c| c.display_value(v)),
                attr,
                now,
            ) {
                Ok(b) => Some(b),
                Err(err) => {
                    println!("error: {err}");
                    None
                }
            }
        }
        Err(err) => {
            println!("error: {err}");
            None
        }
    }
}

/// Plan-cache counters: `attr` and `connect` re-run the loaded query
/// verbatim, so a healthy browsing session is almost all hits.
fn show_cache(conn: &Connection) {
    match conn.metrics_snapshot() {
        Ok(m) => {
            let probes = m.plan_cache_hits + m.plan_cache_misses;
            let ratio = m.plan_cache_hits as f64 / probes.max(1) as f64;
            println!(
                "plan cache: {} hits / {} misses (hit ratio {ratio:.3}), \
                 {} entries, {} invalidations",
                m.plan_cache_hits,
                m.plan_cache_misses,
                m.plan_cache_entries,
                m.plan_cache_invalidations,
            );
        }
        Err(err) => println!("error: {err}"),
    }
}

/// Runs a statement and prints its result table directly — the path for
/// EXPLAIN [ANALYZE] and SHOW STATS, which are about the query engine,
/// not the temporal browser view.
fn run_plain(conn: &Connection, sql: &str) {
    match conn.query(sql, &[]) {
        Ok(rows) => println!("{}", conn.format(&rows)),
        Err(err) => println!("error: {err}"),
    }
}

fn show(browser: &Option<Browser>) {
    match browser {
        Some(b) => println!("{}", b.render()),
        None => println!("no result loaded; use 'sql <query>'"),
    }
}
