//! Vectorized batch kernels for the hot temporal predicates.
//!
//! The engine's generic fallback wraps each scalar routine elementwise,
//! but the predicates that dominate temporal workloads — `OVERLAPS`,
//! `CONTAINS`, and Allen's operators — are worth hand-specializing:
//!
//! * a constant operand (the usual query-window probe, e.g.
//!   `valid OVERLAPS :window`) is unwrapped and NOW-resolved **once per
//!   batch** instead of once per row;
//! * the per-row argument `Vec` allocation and catalog dispatch of the
//!   scalar path disappear — each kernel is one tight loop over the
//!   selection bitmap.
//!
//! Semantics are identical to the row routines in [`crate::routines`]:
//! strict NULLs (any NULL operand → NULL), empty periods compare FALSE,
//! and the same error messages in the same circumstances. Constant
//! operands are resolved *lazily* (on the first live lane that needs
//! them) so a malformed constant errors exactly when the row path
//! would — never on a batch whose other operand is entirely NULL.
//!
//! Everything else — set algebra, accessors, granularities — keeps the
//! elementwise wrapper or, for routines registered without any kernel,
//! forces the plan onto the row executor. That asymmetry is deliberate:
//! it exercises the total row fallback continuously.

use crate::routines::{terr, want_chronon, want_element, want_period};
use crate::types::{now_chronon, TipTypes};
use minidb::catalog::{BatchFnImpl, Catalog};
use minidb::exec::Vector;
use minidb::{DataType, DbResult, Value};
use std::sync::Arc;
use tip_core::{allen, Chronon, ResolvedElement, ResolvedPeriod};

/// NOW-resolves a Period value (empty → `None`), mirroring
/// `routines::resolve_p` including its error text.
fn resolve_p_now(v: &Value, now: Chronon) -> DbResult<Option<ResolvedPeriod>> {
    want_period(v)?.resolve(now).map_err(terr)
}

/// NOW-resolves an Element value, mirroring `routines::resolve_el`.
fn resolve_el_now(v: &Value, now: Chronon) -> DbResult<ResolvedElement> {
    want_element(v)?.resolve(now).map_err(terr)
}

/// A kernel for one `(Period, Period) -> Bool` predicate.
fn kernel_pp(
    f: impl Fn(ResolvedPeriod, ResolvedPeriod) -> bool + Send + Sync + 'static,
) -> BatchFnImpl {
    Arc::new(move |ctx, args, sel, len| {
        let now = now_chronon(ctx.txn_time_unix);
        // Lazy per-batch caches for constant operands.
        let mut cache: [Option<Option<ResolvedPeriod>>; 2] = [None, None];
        let mut resolve = |side: usize, v: &Value| -> DbResult<Option<ResolvedPeriod>> {
            if matches!(args[side], Vector::Const(_)) {
                if cache[side].is_none() {
                    cache[side] = Some(resolve_p_now(v, now)?);
                }
                Ok(cache[side].expect("filled above"))
            } else {
                resolve_p_now(v, now)
            }
        };
        let mut out = vec![Value::Null; len];
        for i in sel.iter() {
            let (va, vb) = (args[0].get(i), args[1].get(i));
            if va.is_null() || vb.is_null() {
                continue; // strict NULL: the lane stays NULL
            }
            out[i] = Value::Bool(match (resolve(0, va)?, resolve(1, vb)?) {
                (Some(x), Some(y)) => f(x, y),
                _ => false, // an empty period satisfies no predicate
            });
        }
        Ok(Vector::vals(out))
    })
}

/// A kernel for one `(Element, Element) -> Bool` predicate.
fn kernel_ee(
    f: impl Fn(&ResolvedElement, &ResolvedElement) -> bool + Send + Sync + 'static,
) -> BatchFnImpl {
    Arc::new(move |ctx, args, sel, len| {
        let now = now_chronon(ctx.txn_time_unix);
        let (mut cache_a, mut cache_b): (Option<ResolvedElement>, Option<ResolvedElement>) =
            (None, None);
        let mut out = vec![Value::Null; len];
        for i in sel.iter() {
            let (va, vb) = (args[0].get(i), args[1].get(i));
            if va.is_null() || vb.is_null() {
                continue;
            }
            let (fresh_a, fresh_b);
            // Resolve left-to-right, matching the row routine's order.
            let ra = if matches!(args[0], Vector::Const(_)) {
                if cache_a.is_none() {
                    cache_a = Some(resolve_el_now(va, now)?);
                }
                None
            } else {
                fresh_a = resolve_el_now(va, now)?;
                Some(&fresh_a)
            };
            let rb = if matches!(args[1], Vector::Const(_)) {
                if cache_b.is_none() {
                    cache_b = Some(resolve_el_now(vb, now)?);
                }
                None
            } else {
                fresh_b = resolve_el_now(vb, now)?;
                Some(&fresh_b)
            };
            let ra = ra.or(cache_a.as_ref()).expect("resolved above");
            let rb = rb.or(cache_b.as_ref()).expect("resolved above");
            out[i] = Value::Bool(f(ra, rb));
        }
        Ok(Vector::vals(out))
    })
}

/// Kernel for `contains(Element, Chronon)`.
fn kernel_ec() -> BatchFnImpl {
    Arc::new(move |ctx, args, sel, len| {
        let now = now_chronon(ctx.txn_time_unix);
        let mut cache: Option<ResolvedElement> = None;
        let mut out = vec![Value::Null; len];
        for i in sel.iter() {
            let (va, vb) = (args[0].get(i), args[1].get(i));
            if va.is_null() || vb.is_null() {
                continue;
            }
            let fresh;
            let ra = if matches!(args[0], Vector::Const(_)) {
                if cache.is_none() {
                    cache = Some(resolve_el_now(va, now)?);
                }
                cache.as_ref().expect("filled above")
            } else {
                fresh = resolve_el_now(va, now)?;
                &fresh
            };
            out[i] = Value::Bool(ra.contains_chronon(want_chronon(vb)?));
        }
        Ok(Vector::vals(out))
    })
}

/// Kernel for `contains(Period, Chronon)`.
fn kernel_pc() -> BatchFnImpl {
    Arc::new(move |ctx, args, sel, len| {
        let now = now_chronon(ctx.txn_time_unix);
        let mut cache: Option<Option<ResolvedPeriod>> = None;
        let mut out = vec![Value::Null; len];
        for i in sel.iter() {
            let (va, vb) = (args[0].get(i), args[1].get(i));
            if va.is_null() || vb.is_null() {
                continue;
            }
            let ra = if matches!(args[0], Vector::Const(_)) {
                if cache.is_none() {
                    cache = Some(resolve_p_now(va, now)?);
                }
                cache.expect("filled above")
            } else {
                resolve_p_now(va, now)?
            };
            let c = want_chronon(vb)?;
            out[i] = Value::Bool(ra.is_some_and(|p| p.contains_chronon(c)));
        }
        Ok(Vector::vals(out))
    })
}

/// Registers the specialized kernels. Must run after
/// [`crate::routines::register`] — a kernel only makes sense next to the
/// scalar overload it accelerates.
pub(crate) fn register(cat: &mut Catalog, t: TipTypes) {
    let per = DataType::Udt(t.period);
    let ele = DataType::Udt(t.element);
    let chr = DataType::Udt(t.chronon);

    // Period × Period predicates: OVERLAPS/CONTAINS and Allen's algebra.
    type PeriodPred = fn(ResolvedPeriod, ResolvedPeriod) -> bool;
    let pp: [(&str, PeriodPred); 10] = [
        ("overlaps", |x, y| x.overlaps(y)),
        ("contains", |x, y| x.contains_period(y)),
        ("before", allen::before),
        ("meets", allen::meets),
        ("overlaps_strict", allen::overlaps),
        ("starts", allen::starts),
        ("during", allen::during),
        ("finishes", allen::finishes),
        ("after", |x, y| allen::before(y, x)),
        ("met_by", |x, y| allen::meets(y, x)),
    ];
    for (name, f) in pp {
        cat.register_function_batch(name, vec![per, per], kernel_pp(f));
    }

    // Element × Element predicates.
    cat.register_function_batch("overlaps", vec![ele, ele], kernel_ee(|x, y| x.overlaps(y)));
    cat.register_function_batch(
        "contains",
        vec![ele, ele],
        kernel_ee(ResolvedElement::contains_element),
    );

    // Point-containment.
    cat.register_function_batch("contains", vec![ele, chr], kernel_ec());
    cat.register_function_batch("contains", vec![per, chr], kernel_pc());
}
