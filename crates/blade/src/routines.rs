//! TIP-defined routines (paper §2): accessors like `start`, Allen's
//! operators for `Period`s, and the `Element` set algebra — `union`,
//! `intersect`, `difference`, `overlaps`, `contains`, `length`, etc.,
//! "with their expected semantics".
//!
//! Routines that resolve `NOW` against the transaction time are
//! registered as now-dependent so the optimizer never folds them.

use crate::types::{as_chronon, as_element, as_instant, as_period, as_span, now_chronon, TipTypes};
use minidb::catalog::{Catalog, FunctionOverload};
use minidb::{DataType, DbError, DbResult, ExecCtx, Value};
use std::sync::Arc;
use tip_core::{allen, Chronon, Element, Instant, Period, ResolvedElement, ResolvedPeriod, Span};

fn func(
    cat: &mut Catalog,
    name: &str,
    params: Vec<DataType>,
    ret: DataType,
    now_dependent: bool,
    f: impl Fn(&ExecCtx, &[Value]) -> DbResult<Value> + Send + Sync + 'static,
) -> DbResult<()> {
    cat.register_function(
        name,
        FunctionOverload {
            params,
            ret,
            now_dependent,
            f: Arc::new(f),
        },
    )
}

pub(crate) fn terr(e: tip_core::TemporalError) -> DbError {
    DbError::exec(e.to_string())
}

pub(crate) fn want_element(v: &Value) -> DbResult<&Element> {
    as_element(v).ok_or_else(|| DbError::exec("expected Element"))
}

pub(crate) fn want_period(v: &Value) -> DbResult<Period> {
    as_period(v).ok_or_else(|| DbError::exec("expected Period"))
}

pub(crate) fn want_chronon(v: &Value) -> DbResult<Chronon> {
    as_chronon(v).ok_or_else(|| DbError::exec("expected Chronon"))
}

fn want_span(v: &Value) -> DbResult<Span> {
    as_span(v).ok_or_else(|| DbError::exec("expected Span"))
}

fn want_instant(v: &Value) -> DbResult<Instant> {
    as_instant(v).ok_or_else(|| DbError::exec("expected Instant"))
}

fn resolve_el(v: &Value, ctx: &ExecCtx) -> DbResult<ResolvedElement> {
    want_element(v)?
        .resolve(now_chronon(ctx.txn_time_unix))
        .map_err(terr)
}

fn resolve_p(v: &Value, ctx: &ExecCtx) -> DbResult<Option<ResolvedPeriod>> {
    want_period(v)?
        .resolve(now_chronon(ctx.txn_time_unix))
        .map_err(terr)
}

fn need_p(v: &Value, ctx: &ExecCtx) -> DbResult<ResolvedPeriod> {
    resolve_p(v, ctx)?.ok_or_else(|| DbError::exec("period is empty at the current NOW"))
}

/// Registers every TIP routine.
#[allow(clippy::too_many_lines)]
pub(crate) fn register(cat: &mut Catalog, t: TipTypes) -> DbResult<()> {
    let (chr, spn, ins, per, ele) = (
        DataType::Udt(t.chronon),
        DataType::Udt(t.span),
        DataType::Udt(t.instant),
        DataType::Udt(t.period),
        DataType::Udt(t.element),
    );
    let b = DataType::Bool;
    let i = DataType::Int;

    // ---- NOW and construction -------------------------------------------

    // now() -> Chronon: the frozen transaction time.
    func(cat, "now", vec![], chr, true, move |ctx, _| {
        Ok(t.chronon(now_chronon(ctx.txn_time_unix)))
    })?;
    // period(start, end) -> Period.
    func(cat, "period", vec![ins, ins], per, false, move |_, a| {
        Ok(t.period(Period::new(want_instant(&a[0])?, want_instant(&a[1])?)))
    })?;
    // datetime(y, m, d) -> Chronon.
    func(cat, "datetime", vec![i, i, i], chr, false, move |_, a| {
        let (y, mo, d) = (
            a[0].as_int().unwrap_or(0) as i32,
            a[1].as_int().unwrap_or(0) as u32,
            a[2].as_int().unwrap_or(0) as u32,
        );
        Chronon::from_ymd(y, mo, d)
            .map(|c| t.chronon(c))
            .map_err(terr)
    })?;
    // Span constructors (checked: a hostile count errors instead of
    // overflowing the second counter).
    func(cat, "days", vec![i], spn, false, move |_, a| {
        Span::DAY
            .checked_mul(a[0].as_int().unwrap_or(0))
            .map(|s| t.span(s))
            .map_err(terr)
    })?;
    func(cat, "hours", vec![i], spn, false, move |_, a| {
        Span::HOUR
            .checked_mul(a[0].as_int().unwrap_or(0))
            .map(|s| t.span(s))
            .map_err(terr)
    })?;
    func(cat, "weeks", vec![i], spn, false, move |_, a| {
        Span::WEEK
            .checked_mul(a[0].as_int().unwrap_or(0))
            .map(|s| t.span(s))
            .map_err(terr)
    })?;
    func(cat, "seconds", vec![i], spn, false, move |_, a| {
        Ok(t.span(Span::from_seconds(a[0].as_int().unwrap_or(0))))
    })?;
    // neg(Span) backs the unary minus on spans.
    func(cat, "neg", vec![spn], spn, false, move |_, a| {
        want_span(&a[0])?
            .checked_neg()
            .map(|s| t.span(s))
            .map_err(terr)
    })?;
    func(cat, "abs", vec![spn], spn, false, move |_, a| {
        let s = want_span(&a[0])?;
        let out = if s.is_negative() {
            s.checked_neg().map_err(terr)?
        } else {
            s
        };
        Ok(t.span(out))
    })?;

    // ---- accessors --------------------------------------------------------

    // start/end of an Element (paper: "start is a TIP routine that
    // returns the start time of the first period in an Element").
    func(cat, "start", vec![ele], chr, true, move |ctx, a| {
        resolve_el(&a[0], ctx)?
            .start()
            .map(|c| t.chronon(c))
            .map_err(terr)
    })?;
    func(cat, "finish", vec![ele], chr, true, move |ctx, a| {
        resolve_el(&a[0], ctx)?
            .end()
            .map(|c| t.chronon(c))
            .map_err(terr)
    })?;
    func(cat, "start", vec![per], chr, true, move |ctx, a| {
        Ok(t.chronon(need_p(&a[0], ctx)?.start()))
    })?;
    func(cat, "finish", vec![per], chr, true, move |ctx, a| {
        Ok(t.chronon(need_p(&a[0], ctx)?.end()))
    })?;
    // `end` aliases (END is not reserved in this dialect).
    func(cat, "end", vec![ele], chr, true, move |ctx, a| {
        resolve_el(&a[0], ctx)?
            .end()
            .map(|c| t.chronon(c))
            .map_err(terr)
    })?;
    func(cat, "end", vec![per], chr, true, move |ctx, a| {
        Ok(t.chronon(need_p(&a[0], ctx)?.end()))
    })?;
    // first/last/nth period of an Element.
    func(cat, "first", vec![ele], per, true, move |ctx, a| {
        resolve_el(&a[0], ctx)?
            .first()
            .map(|p| t.period(p.into()))
            .map_err(terr)
    })?;
    func(cat, "last", vec![ele], per, true, move |ctx, a| {
        resolve_el(&a[0], ctx)?
            .last()
            .map(|p| t.period(p.into()))
            .map_err(terr)
    })?;
    func(cat, "nth_period", vec![ele, i], per, true, move |ctx, a| {
        let idx = a[1].as_int().unwrap_or(0);
        let idx = usize::try_from(idx)
            .map_err(|_| DbError::exec("nth_period index must be non-negative"))?;
        resolve_el(&a[0], ctx)?
            .nth(idx)
            .map(|p| t.period(p.into()))
            .map_err(terr)
    })?;
    func(cat, "period_count", vec![ele], i, true, move |ctx, a| {
        Ok(Value::Int(resolve_el(&a[0], ctx)?.period_count() as i64))
    })?;
    func(cat, "is_empty", vec![ele], b, true, move |ctx, a| {
        Ok(Value::Bool(resolve_el(&a[0], ctx)?.is_empty()))
    })?;

    // length: total covered time of an Element; duration of a Period.
    func(cat, "length", vec![ele], spn, true, move |ctx, a| {
        Ok(t.span(resolve_el(&a[0], ctx)?.length()))
    })?;
    func(cat, "length", vec![per], spn, true, move |ctx, a| {
        Ok(t.span(resolve_p(&a[0], ctx)?.map_or(Span::ZERO, |p| p.duration())))
    })?;

    // Civil accessors on Chronon.
    func(cat, "year", vec![chr], i, false, move |_, a| {
        Ok(Value::Int(i64::from(want_chronon(&a[0])?.year())))
    })?;
    func(cat, "month", vec![chr], i, false, move |_, a| {
        Ok(Value::Int(i64::from(want_chronon(&a[0])?.month())))
    })?;
    func(cat, "day", vec![chr], i, false, move |_, a| {
        Ok(Value::Int(i64::from(want_chronon(&a[0])?.day())))
    })?;
    func(cat, "hour", vec![chr], i, false, move |_, a| {
        Ok(Value::Int(i64::from(want_chronon(&a[0])?.hour())))
    })?;
    func(cat, "minute", vec![chr], i, false, move |_, a| {
        Ok(Value::Int(i64::from(want_chronon(&a[0])?.minute())))
    })?;
    func(cat, "second", vec![chr], i, false, move |_, a| {
        Ok(Value::Int(i64::from(want_chronon(&a[0])?.second())))
    })?;
    func(cat, "weekday", vec![chr], i, false, move |_, a| {
        Ok(Value::Int(i64::from(want_chronon(&a[0])?.weekday())))
    })?;
    // Span accessors.
    func(cat, "total_seconds", vec![spn], i, false, move |_, a| {
        Ok(Value::Int(want_span(&a[0])?.seconds()))
    })?;
    func(cat, "whole_days", vec![spn], i, false, move |_, a| {
        Ok(Value::Int(want_span(&a[0])?.whole_days()))
    })?;
    // Instant helpers.
    func(cat, "is_now_relative", vec![ins], b, false, move |_, a| {
        Ok(Value::Bool(want_instant(&a[0])?.is_now_relative()))
    })?;
    func(cat, "is_now_relative", vec![ele], b, false, move |_, a| {
        Ok(Value::Bool(want_element(&a[0])?.is_now_relative()))
    })?;
    func(cat, "to_chronon", vec![ins], chr, true, move |ctx, a| {
        want_instant(&a[0])?
            .resolve(now_chronon(ctx.txn_time_unix))
            .map(|c| t.chronon(c))
            .map_err(terr)
    })?;

    // ---- Element set algebra ---------------------------------------------

    macro_rules! binary_element {
        ($name:literal, $method:ident) => {
            func(cat, $name, vec![ele, ele], ele, true, move |ctx, a| {
                let x = resolve_el(&a[0], ctx)?;
                let y = resolve_el(&a[1], ctx)?;
                Ok(t.element(x.$method(&y).into()))
            })?;
        };
    }
    binary_element!("union", union);
    binary_element!("intersect", intersect);
    binary_element!("difference", difference);
    func(cat, "complement", vec![ele], ele, true, move |ctx, a| {
        Ok(t.element(resolve_el(&a[0], ctx)?.complement().into()))
    })?;
    // gaps: uncovered time between an element's periods (e.g. "when was
    // the patient *off* medication, while under treatment overall?").
    func(cat, "gaps", vec![ele], ele, true, move |ctx, a| {
        Ok(t.element(resolve_el(&a[0], ctx)?.gaps().into()))
    })?;

    // overlaps: do the two operands share a chronon? (Reflexive — the
    // paper's temporal self-join predicate.)
    func(cat, "overlaps", vec![ele, ele], b, true, move |ctx, a| {
        Ok(Value::Bool(
            resolve_el(&a[0], ctx)?.overlaps(&resolve_el(&a[1], ctx)?),
        ))
    })?;
    func(cat, "overlaps", vec![per, per], b, true, move |ctx, a| {
        Ok(Value::Bool(
            match (resolve_p(&a[0], ctx)?, resolve_p(&a[1], ctx)?) {
                (Some(x), Some(y)) => x.overlaps(y),
                _ => false,
            },
        ))
    })?;

    // contains: Element ⊇ Element / Period / Chronon.
    func(cat, "contains", vec![ele, ele], b, true, move |ctx, a| {
        Ok(Value::Bool(
            resolve_el(&a[0], ctx)?.contains_element(&resolve_el(&a[1], ctx)?),
        ))
    })?;
    func(cat, "contains", vec![ele, chr], b, true, move |ctx, a| {
        Ok(Value::Bool(
            resolve_el(&a[0], ctx)?.contains_chronon(want_chronon(&a[1])?),
        ))
    })?;
    func(cat, "contains", vec![per, chr], b, true, move |ctx, a| {
        let c = want_chronon(&a[1])?;
        Ok(Value::Bool(
            resolve_p(&a[0], ctx)?.is_some_and(|p| p.contains_chronon(c)),
        ))
    })?;
    func(cat, "contains", vec![per, per], b, true, move |ctx, a| {
        Ok(Value::Bool(
            match (resolve_p(&a[0], ctx)?, resolve_p(&a[1], ctx)?) {
                (Some(x), Some(y)) => x.contains_period(y),
                _ => false,
            },
        ))
    })?;

    // window restriction and morphology.
    func(cat, "restrict", vec![ele, per], ele, true, move |ctx, a| {
        let e = resolve_el(&a[0], ctx)?;
        Ok(t.element(match resolve_p(&a[1], ctx)? {
            Some(w) => e.restrict(w).into(),
            None => Element::empty(),
        }))
    })?;
    func(cat, "shift", vec![ele, spn], ele, false, move |_, a| {
        want_element(&a[0])?
            .shift(want_span(&a[1])?)
            .map(|e| t.element(e))
            .map_err(terr)
    })?;
    func(cat, "shift", vec![per, spn], per, false, move |_, a| {
        want_period(&a[0])?
            .shift(want_span(&a[1])?)
            .map(|p| t.period(p))
            .map_err(terr)
    })?;
    func(cat, "extend", vec![ele, spn], ele, true, move |ctx, a| {
        Ok(t.element(resolve_el(&a[0], ctx)?.extend(want_span(&a[1])?).into()))
    })?;

    // ---- Allen's operators on Periods --------------------------------------

    macro_rules! allen_pred {
        ($name:literal, $f:path) => {
            func(cat, $name, vec![per, per], b, true, move |ctx, a| {
                Ok(Value::Bool(
                    match (resolve_p(&a[0], ctx)?, resolve_p(&a[1], ctx)?) {
                        (Some(x), Some(y)) => $f(x, y),
                        _ => false,
                    },
                ))
            })?;
        };
    }
    allen_pred!("before", allen::before);
    allen_pred!("meets", allen::meets);
    allen_pred!("overlaps_strict", allen::overlaps);
    allen_pred!("starts", allen::starts);
    allen_pred!("during", allen::during);
    allen_pred!("finishes", allen::finishes);
    func(cat, "after", vec![per, per], b, true, move |ctx, a| {
        Ok(Value::Bool(
            match (resolve_p(&a[0], ctx)?, resolve_p(&a[1], ctx)?) {
                (Some(x), Some(y)) => allen::before(y, x),
                _ => false,
            },
        ))
    })?;
    func(cat, "met_by", vec![per, per], b, true, move |ctx, a| {
        Ok(Value::Bool(
            match (resolve_p(&a[0], ctx)?, resolve_p(&a[1], ctx)?) {
                (Some(x), Some(y)) => allen::meets(y, x),
                _ => false,
            },
        ))
    })?;
    // allen(p, q) -> the relation name, e.g. 'overlapped_by'.
    func(
        cat,
        "allen",
        vec![per, per],
        DataType::Str,
        true,
        move |ctx, a| match (resolve_p(&a[0], ctx)?, resolve_p(&a[1], ctx)?) {
            (Some(x), Some(y)) => Ok(Value::Str(allen::relation(x, y).name().to_owned())),
            _ => Err(DbError::exec("allen() is undefined for empty periods")),
        },
    )?;

    // ---- granularities (TSQL2-style, paper §5 future work) -----------------

    fn want_granularity(v: &Value) -> DbResult<tip_core::Granularity> {
        let name = v
            .as_str()
            .ok_or_else(|| DbError::exec("expected a granularity name"))?;
        tip_core::Granularity::parse(name)
            .ok_or_else(|| DbError::exec(format!("unknown granularity {name:?}")))
    }

    // trunc('1999-09-23 14:35:27', 'month') -> 1999-09-01.
    func(
        cat,
        "trunc",
        vec![chr, DataType::Str],
        chr,
        false,
        move |_, a| {
            let g = want_granularity(&a[1])?;
            Ok(t.chronon(tip_core::granularity::truncate(want_chronon(&a[0])?, g)))
        },
    )?;
    func(
        cat,
        "next_granule",
        vec![chr, DataType::Str],
        chr,
        false,
        move |_, a| {
            let g = want_granularity(&a[1])?;
            Ok(t.chronon(tip_core::granularity::next_granule(want_chronon(&a[0])?, g)))
        },
    )?;
    // granule('1999-09-23', 'month') -> [1999-09-01, 1999-09-30 23:59:59].
    func(
        cat,
        "granule",
        vec![chr, DataType::Str],
        per,
        false,
        move |_, a| {
            let g = want_granularity(&a[1])?;
            Ok(t.period(tip_core::granularity::granule_of(want_chronon(&a[0])?, g).into()))
        },
    )?;
    // expand_to(p, 'month'): round a period outward to granule boundaries.
    func(
        cat,
        "expand_to",
        vec![per, DataType::Str],
        per,
        true,
        move |ctx, a| {
            let g = want_granularity(&a[1])?;
            let p = need_p(&a[0], ctx)?;
            Ok(t.period(tip_core::granularity::expand_to(p, g).into()))
        },
    )?;
    // granule_count(p, 'month'): how many distinct months a period touches.
    func(
        cat,
        "granule_count",
        vec![per, DataType::Str],
        i,
        true,
        move |ctx, a| {
            let g = want_granularity(&a[1])?;
            let p = need_p(&a[0], ctx)?;
            tip_core::granularity::granule_count(p, g)
                .map(|n| Value::Int(n as i64))
                .map_err(terr)
        },
    )?;

    // ---- MIN/MAX/COUNT support for TIP types -------------------------------

    minidb::builtin::register_minmax_for(cat, chr)?;
    minidb::builtin::register_minmax_for(cat, spn)?;
    for ty in [chr, spn, ins, per, ele] {
        minidb::builtin::register_count_for(cat, ty)?;
    }

    Ok(())
}
