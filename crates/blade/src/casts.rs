//! Cast registrations (paper §2, "Casts").
//!
//! * SQL strings convert to and from every TIP type automatically
//!   (string → TIP implicit via the type's text-input function, TIP →
//!   string explicit via text output).
//! * The promotion chain `Chronon → Instant → Period → Element` is
//!   implicit, so a `Chronon` can be used wherever an `Element` is
//!   expected (e.g. `1999-09-01` becomes `[1999-09-01, 1999-09-01]`).
//! * `Instant → Chronon` substitutes the current transaction time for
//!   `NOW` and is therefore **now-dependent** (`NOW-1` becomes
//!   `1999-09-22` if today is `1999-09-23`).
//! * `Element → Period` is explicit and succeeds only for single-period
//!   elements.

use crate::types::{as_chronon, as_element, as_instant, as_period, as_span, now_chronon, TipTypes};
use minidb::catalog::{CastDef, Catalog, UdtDisplayFn, UdtParseFn};
use minidb::{DataType, DbError, DbResult, Value};
use std::sync::Arc;
use tip_core::{Element, Period};

/// Handles to the text-I/O support functions of the five types, cloned
/// from the type definitions at install time so the string casts can call
/// them without re-entering the catalog.
pub(crate) struct TextSupport {
    /// `(type, parse, display)` per TIP type.
    pub entries: Vec<(DataType, UdtParseFn, UdtDisplayFn)>,
}

fn cast(
    cat: &mut Catalog,
    from: DataType,
    to: DataType,
    implicit: bool,
    now_dependent: bool,
    f: impl Fn(&minidb::ExecCtx, &Value) -> DbResult<Value> + Send + Sync + 'static,
) -> DbResult<()> {
    cat.register_cast(
        from,
        to,
        CastDef {
            implicit,
            now_dependent,
            ret: to,
            f: Arc::new(f),
        },
    )
}

/// Registers every TIP cast.
pub(crate) fn register(cat: &mut Catalog, t: TipTypes, text: &TextSupport) -> DbResult<()> {
    let (chr, spn, ins, per, ele) = (
        DataType::Udt(t.chronon),
        DataType::Udt(t.span),
        DataType::Udt(t.instant),
        DataType::Udt(t.period),
        DataType::Udt(t.element),
    );

    // String <-> TIP via the text-I/O support functions.
    for (ty, parse, display) in &text.entries {
        let parse = parse.clone();
        let display = display.clone();
        cast(cat, DataType::Str, *ty, true, false, move |_, v| {
            let s = v
                .as_str()
                .ok_or_else(|| DbError::exec("expected a string"))?;
            parse(s).map(Value::Udt)
        })?;
        cast(cat, *ty, DataType::Str, false, false, move |_, v| {
            let u = v
                .as_udt()
                .ok_or_else(|| DbError::exec("expected a TIP value"))?;
            Ok(Value::Str(display(u)))
        })?;
    }

    // Chronon -> Instant -> Period -> Element promotions (implicit).
    cast(cat, chr, ins, true, false, move |_, v| {
        let c = as_chronon(v).ok_or_else(|| DbError::exec("expected Chronon"))?;
        Ok(t.instant(tip_core::Instant::Fixed(c)))
    })?;
    cast(cat, chr, per, true, false, move |_, v| {
        let c = as_chronon(v).ok_or_else(|| DbError::exec("expected Chronon"))?;
        Ok(t.period(Period::at(c)))
    })?;
    cast(cat, chr, ele, true, false, move |_, v| {
        let c = as_chronon(v).ok_or_else(|| DbError::exec("expected Chronon"))?;
        Ok(t.element(Element::from_period(Period::at(c))))
    })?;
    cast(cat, ins, per, true, false, move |_, v| {
        let i = as_instant(v).ok_or_else(|| DbError::exec("expected Instant"))?;
        Ok(t.period(Period::new(i, i)))
    })?;
    cast(cat, ins, ele, true, false, move |_, v| {
        let i = as_instant(v).ok_or_else(|| DbError::exec("expected Instant"))?;
        Ok(t.element(Element::from_period(Period::new(i, i))))
    })?;
    cast(cat, per, ele, true, false, move |_, v| {
        let p = as_period(v).ok_or_else(|| DbError::exec("expected Period"))?;
        Ok(t.element(Element::from_period(p)))
    })?;

    // Instant -> Chronon: substitute NOW (explicit, now-dependent).
    cast(cat, ins, chr, false, true, move |ctx, v| {
        let i = as_instant(v).ok_or_else(|| DbError::exec("expected Instant"))?;
        let c = i
            .resolve(now_chronon(ctx.txn_time_unix))
            .map_err(|e| DbError::exec(e.to_string()))?;
        Ok(t.chronon(c))
    })?;

    // Element -> Period: only single-period elements (explicit,
    // now-dependent because resolution may merge or drop periods).
    cast(cat, ele, per, false, true, move |ctx, v| {
        let e = as_element(v).ok_or_else(|| DbError::exec("expected Element"))?;
        let r = e
            .resolve(now_chronon(ctx.txn_time_unix))
            .map_err(|err| DbError::exec(err.to_string()))?;
        if r.period_count() != 1 {
            return Err(DbError::exec(format!(
                "cannot cast Element with {} period(s) to Period",
                r.period_count()
            )));
        }
        Ok(t.period(r.first().expect("one period").into()))
    })?;

    // Span <-> INT (total seconds): explicit conversion escape hatch.
    cast(cat, spn, DataType::Int, false, false, move |_, v| {
        let s = as_span(v).ok_or_else(|| DbError::exec("expected Span"))?;
        Ok(Value::Int(s.seconds()))
    })?;
    cast(cat, DataType::Int, spn, false, false, move |_, v| {
        let n = v.as_int().ok_or_else(|| DbError::exec("expected INT"))?;
        Ok(t.span(tip_core::Span::from_seconds(n)))
    })?;

    Ok(())
}
