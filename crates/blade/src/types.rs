//! UDT payload wrappers for the five TIP datatypes, plus conversion
//! helpers between engine `Value`s and `tip-core` objects.

use minidb::catalog::{Catalog, UdtTypeDef};
use minidb::{DataType, DbError, DbResult, UdtId, UdtObject, UdtValue, Value};
use std::any::Any;
use std::cmp::Ordering;
use std::sync::Arc;
use tip_core::{Chronon, Element, Instant, Period, Span};

/// FNV-1a over a byte slice — a small, stable hash for UDT payloads.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

macro_rules! udt_wrapper {
    ($wrapper:ident, $inner:ty, ordered: $ordered:expr) => {
        /// Engine payload wrapper for the corresponding TIP type.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $wrapper(pub $inner);

        impl UdtObject for $wrapper {
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn eq_udt(&self, other: &dyn UdtObject) -> bool {
                other
                    .as_any()
                    .downcast_ref::<$wrapper>()
                    .is_some_and(|o| o.0 == self.0)
            }
            fn cmp_udt(&self, other: &dyn UdtObject) -> Option<Ordering> {
                if $ordered {
                    other
                        .as_any()
                        .downcast_ref::<$wrapper>()
                        .map(|o| cmp_inner(&self.0, &o.0))
                } else {
                    None
                }
            }
            fn hash_udt(&self) -> u64 {
                fnv1a(encode_inner(&self.0).as_slice())
            }
        }
    };
}

// Ordering shims: Chronon/Span have total orders; the rest fall back to
// hash order inside the engine when sorting is requested.
trait InnerOps {
    fn cmp_like(&self, other: &Self) -> Ordering;
    fn encode_bytes(&self) -> Vec<u8>;
}

fn cmp_inner<T: InnerOps>(a: &T, b: &T) -> Ordering {
    a.cmp_like(b)
}

fn encode_inner<T: InnerOps>(v: &T) -> Vec<u8> {
    v.encode_bytes()
}

impl InnerOps for Chronon {
    fn cmp_like(&self, other: &Self) -> Ordering {
        self.cmp(other)
    }
    fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        tip_core::binary::encode_chronon(*self, &mut out);
        out
    }
}

impl InnerOps for Span {
    fn cmp_like(&self, other: &Self) -> Ordering {
        self.cmp(other)
    }
    fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        tip_core::binary::encode_span(*self, &mut out);
        out
    }
}

impl InnerOps for Instant {
    fn cmp_like(&self, other: &Self) -> Ordering {
        // Only used as a stable tiebreak; semantic comparison goes through
        // the now-aware operators.
        self.partial_cmp_static(*other).unwrap_or(Ordering::Equal)
    }
    fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9);
        tip_core::binary::encode_instant(*self, &mut out);
        out
    }
}

impl InnerOps for Period {
    fn cmp_like(&self, _: &Self) -> Ordering {
        Ordering::Equal
    }
    fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(18);
        tip_core::binary::encode_period(*self, &mut out);
        out
    }
}

impl InnerOps for Element {
    fn cmp_like(&self, _: &Self) -> Ordering {
        Ordering::Equal
    }
    fn encode_bytes(&self) -> Vec<u8> {
        tip_core::binary::element_to_vec(self)
    }
}

udt_wrapper!(TipChronon, Chronon, ordered: true);
udt_wrapper!(TipSpan, Span, ordered: true);
udt_wrapper!(TipInstant, Instant, ordered: false);
udt_wrapper!(TipPeriod, Period, ordered: false);
udt_wrapper!(TipElement, Element, ordered: false);

/// The catalog ids assigned to the five TIP types in one database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TipTypes {
    pub chronon: UdtId,
    pub span: UdtId,
    pub instant: UdtId,
    pub period: UdtId,
    pub element: UdtId,
}

impl TipTypes {
    /// Looks up the TIP types in an already-bladed catalog.
    pub fn from_catalog(cat: &Catalog) -> DbResult<TipTypes> {
        let get = |name: &str| -> DbResult<UdtId> {
            match cat.lookup_type_name(name)? {
                DataType::Udt(id) => Ok(id),
                other => Err(DbError::type_err(format!(
                    "{name} resolved to builtin {other}"
                ))),
            }
        };
        Ok(TipTypes {
            chronon: get("Chronon")?,
            span: get("Span")?,
            instant: get("Instant")?,
            period: get("Period")?,
            element: get("Element")?,
        })
    }

    /// Wraps a [`Chronon`] as an engine value.
    pub fn chronon(&self, c: Chronon) -> Value {
        Value::Udt(UdtValue::new(self.chronon, Arc::new(TipChronon(c))))
    }

    /// Wraps a [`Span`].
    pub fn span(&self, s: Span) -> Value {
        Value::Udt(UdtValue::new(self.span, Arc::new(TipSpan(s))))
    }

    /// Wraps an [`Instant`].
    pub fn instant(&self, i: Instant) -> Value {
        Value::Udt(UdtValue::new(self.instant, Arc::new(TipInstant(i))))
    }

    /// Wraps a [`Period`].
    pub fn period(&self, p: Period) -> Value {
        Value::Udt(UdtValue::new(self.period, Arc::new(TipPeriod(p))))
    }

    /// Wraps an [`Element`].
    pub fn element(&self, e: Element) -> Value {
        Value::Udt(UdtValue::new(self.element, Arc::new(TipElement(e))))
    }
}

/// Extracts a [`Chronon`] from a value, if it is one.
pub fn as_chronon(v: &Value) -> Option<Chronon> {
    v.as_udt()
        .and_then(|u| u.downcast::<TipChronon>())
        .map(|w| w.0)
}

/// Extracts a [`Span`].
pub fn as_span(v: &Value) -> Option<Span> {
    v.as_udt()
        .and_then(|u| u.downcast::<TipSpan>())
        .map(|w| w.0)
}

/// Extracts an [`Instant`].
pub fn as_instant(v: &Value) -> Option<Instant> {
    v.as_udt()
        .and_then(|u| u.downcast::<TipInstant>())
        .map(|w| w.0)
}

/// Extracts a [`Period`].
pub fn as_period(v: &Value) -> Option<Period> {
    v.as_udt()
        .and_then(|u| u.downcast::<TipPeriod>())
        .map(|w| w.0)
}

/// Extracts an [`Element`] (borrowed).
pub fn as_element(v: &Value) -> Option<&Element> {
    v.as_udt()
        .and_then(|u| u.downcast::<TipElement>())
        .map(|w| &w.0)
}

/// Seconds between the Unix epoch and the TIP epoch (2000-01-01).
pub const UNIX_TO_TIP_EPOCH_SECS: i64 = 946_684_800;

/// Converts the engine's transaction time (Unix seconds) into the
/// statement's `NOW` chronon, clamped to the supported timeline.
pub fn now_chronon(txn_time_unix: i64) -> Chronon {
    let raw = (txn_time_unix - UNIX_TO_TIP_EPOCH_SECS)
        .clamp(Chronon::BEGINNING.raw(), Chronon::FOREVER.raw());
    Chronon::from_raw(raw).expect("clamped into range")
}

/// Converts a chronon back to Unix seconds.
pub fn chronon_to_unix(c: Chronon) -> i64 {
    c.raw() + UNIX_TO_TIP_EPOCH_SECS
}

fn udt_parse_err(what: &'static str, e: tip_core::TemporalError) -> DbError {
    DbError::exec(format!("invalid {what} literal: {e}"))
}

macro_rules! make_def {
    ($fn_name:ident, $name:literal, $wrapper:ident, $inner:ty,
     encode: $enc:expr, decode: $dec:expr, ordered: $ordered:expr,
     interval_key: $ik:expr) => {
        /// Builds the type definition, capturing the id the catalog will
        /// assign (obtain it with [`minidb::Catalog::next_type_id`]).
        pub fn $fn_name(id: UdtId) -> UdtTypeDef {
            UdtTypeDef {
                id,
                name: $name.into(),
                parse: Arc::new(move |s| {
                    s.parse::<$inner>()
                        .map(|x| UdtValue::new(id, Arc::new($wrapper(x))))
                        .map_err(|e| udt_parse_err($name, e))
                }),
                display: Arc::new(|u| {
                    u.downcast::<$wrapper>()
                        .map(|w| w.0.to_string())
                        .unwrap_or_default()
                }),
                encode: Arc::new(|u, out| {
                    if let Some(w) = u.downcast::<$wrapper>() {
                        #[allow(clippy::redundant_closure_call)]
                        ($enc)(&w.0, out);
                    }
                }),
                decode: Arc::new(move |buf| {
                    #[allow(clippy::redundant_closure_call)]
                    ($dec)(buf)
                        .map(|x: $inner| UdtValue::new(id, Arc::new($wrapper(x))))
                        .map_err(|e: tip_core::TemporalError| DbError::exec(e.to_string()))
                }),
                ordered: $ordered,
                interval_key: $ik,
            }
        }
    };
}

/// Conservative interval bounds of a raw (possibly NOW-relative) period:
/// fixed endpoints map to their chronon seconds, NOW-relative endpoints
/// to the axis extremes (the index must never miss a candidate whatever
/// the transaction time turns out to be).
fn period_bounds(p: &Period) -> (i64, i64) {
    let lo = match p.start() {
        Instant::Fixed(c) => c.raw(),
        Instant::NowRelative(_) => i64::MIN,
    };
    let hi = match p.end() {
        Instant::Fixed(c) => c.raw(),
        Instant::NowRelative(_) => i64::MAX,
    };
    (lo, hi)
}

/// Interval bounds of an element: the convex hull of its periods' bounds.
fn element_bounds(e: &Element) -> Option<(i64, i64)> {
    let mut bounds: Option<(i64, i64)> = None;
    for p in e.raw_periods() {
        let (lo, hi) = period_bounds(p);
        bounds = Some(match bounds {
            None => (lo, hi),
            Some((l, h)) => (l.min(lo), h.max(hi)),
        });
    }
    bounds
}

make_def!(
    chronon_def, "Chronon", TipChronon, Chronon,
    encode: |c: &Chronon, out: &mut Vec<u8>| tip_core::binary::encode_chronon(*c, out),
    decode: |buf: &mut &[u8]| tip_core::binary::decode_chronon(buf),
    ordered: true,
    interval_key: Some(Arc::new(|u: &UdtValue| {
        u.downcast::<TipChronon>().map(|w| (w.0.raw(), w.0.raw()))
    }))
);
make_def!(
    span_def, "Span", TipSpan, Span,
    encode: |s: &Span, out: &mut Vec<u8>| tip_core::binary::encode_span(*s, out),
    decode: |buf: &mut &[u8]| tip_core::binary::decode_span(buf),
    ordered: true,
    interval_key: None
);
make_def!(
    instant_def, "Instant", TipInstant, Instant,
    encode: |i: &Instant, out: &mut Vec<u8>| tip_core::binary::encode_instant(*i, out),
    decode: |buf: &mut &[u8]| tip_core::binary::decode_instant(buf),
    ordered: false,
    interval_key: Some(Arc::new(|u: &UdtValue| {
        u.downcast::<TipInstant>().map(|w| match w.0 {
            Instant::Fixed(c) => (c.raw(), c.raw()),
            Instant::NowRelative(_) => (i64::MIN, i64::MAX),
        })
    }))
);
make_def!(
    period_def, "Period", TipPeriod, Period,
    encode: |p: &Period, out: &mut Vec<u8>| tip_core::binary::encode_period(*p, out),
    decode: |buf: &mut &[u8]| tip_core::binary::decode_period(buf),
    ordered: false,
    interval_key: Some(Arc::new(|u: &UdtValue| {
        u.downcast::<TipPeriod>().map(|w| period_bounds(&w.0))
    }))
);
make_def!(
    element_def, "Element", TipElement, Element,
    encode: |e: &Element, out: &mut Vec<u8>| {
        out.extend_from_slice(&tip_core::binary::element_to_vec(e))
    },
    decode: |buf: &mut &[u8]| tip_core::binary::decode_element(buf),
    ordered: false,
    interval_key: Some(Arc::new(|u: &UdtValue| {
        u.downcast::<TipElement>().and_then(|w| element_bounds(&w.0))
    }))
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unix_offset_matches_core() {
        assert_eq!(now_chronon(UNIX_TO_TIP_EPOCH_SECS), Chronon::EPOCH);
        assert_eq!(chronon_to_unix(Chronon::EPOCH), UNIX_TO_TIP_EPOCH_SECS);
        // 1999-09-23 00:00:00 UTC = 938044800 Unix.
        assert_eq!(
            now_chronon(938_044_800),
            Chronon::from_ymd(1999, 9, 23).unwrap()
        );
    }

    #[test]
    fn wrapper_equality_and_hash() {
        let a = TipChronon(Chronon::EPOCH);
        let b = TipChronon(Chronon::EPOCH);
        let c = TipChronon(Chronon::FOREVER);
        assert!(a.eq_udt(&b));
        assert!(!a.eq_udt(&c));
        assert_eq!(a.hash_udt(), b.hash_udt());
        assert_eq!(a.cmp_udt(&c), Some(Ordering::Less));
        // Cross-type comparison is not equality.
        let s = TipSpan(Span::ZERO);
        assert!(!a.eq_udt(&s));
    }

    #[test]
    fn element_wrapper_hash_stable_across_clones() {
        let e: Element = "{[1999-01-01, NOW]}".parse().unwrap();
        let w1 = TipElement(e.clone());
        let w2 = TipElement(e);
        assert_eq!(w1.hash_udt(), w2.hash_udt());
        assert!(w1.cmp_udt(&w2).is_none(), "Element is unordered");
    }
}
