//! Arithmetic and comparison operator overloads (paper §2).
//!
//! "TIP overloads built-in arithmetic operators (+, -, *, /) and
//! comparison operators (=, <, >, etc.) to operate on TIP datatypes
//! whenever appropriate. For example, a Chronon minus a Chronon returns a
//! Span, but a Chronon plus a Chronon returns a type error." The type
//! error falls out naturally: no `Chronon + Chronon` overload is
//! registered, so the binder reports `NoOverload`.
//!
//! Comparisons involving `Instant` are registered as **now-dependent**:
//! "the result of comparing a Chronon to a NOW-relative Instant may
//! change as time advances."

use crate::types::{as_chronon, as_instant, as_span, now_chronon, TipTypes};
use minidb::catalog::{BinaryOp, Catalog, OperatorOverload};
use minidb::{DataType, DbError, DbResult, ExecCtx, Value};
use std::cmp::Ordering;
use std::sync::Arc;
use tip_core::Instant;

fn op(
    cat: &mut Catalog,
    o: BinaryOp,
    lhs: DataType,
    rhs: DataType,
    ret: DataType,
    now_dependent: bool,
    f: impl Fn(&ExecCtx, &[Value]) -> DbResult<Value> + Send + Sync + 'static,
) -> DbResult<()> {
    cat.register_operator(
        o,
        OperatorOverload {
            lhs,
            rhs,
            ret,
            now_dependent,
            f: Arc::new(f),
        },
    )
}

fn cmp_value(o: BinaryOp, ord: Ordering) -> Value {
    Value::Bool(match o {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::Ne => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::Le => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::Ge => ord != Ordering::Less,
        _ => unreachable!("not a comparison"),
    })
}

const COMPARISONS: [BinaryOp; 6] = [
    BinaryOp::Eq,
    BinaryOp::Ne,
    BinaryOp::Lt,
    BinaryOp::Le,
    BinaryOp::Gt,
    BinaryOp::Ge,
];

fn want_chronon(v: &Value) -> DbResult<tip_core::Chronon> {
    as_chronon(v).ok_or_else(|| DbError::exec("expected Chronon"))
}

fn want_span(v: &Value) -> DbResult<tip_core::Span> {
    as_span(v).ok_or_else(|| DbError::exec("expected Span"))
}

fn want_instant(v: &Value) -> DbResult<Instant> {
    as_instant(v).ok_or_else(|| DbError::exec("expected Instant"))
}

/// Registers every TIP operator overload.
pub(crate) fn register(cat: &mut Catalog, t: TipTypes) -> DbResult<()> {
    let (chr, spn, ins) = (
        DataType::Udt(t.chronon),
        DataType::Udt(t.span),
        DataType::Udt(t.instant),
    );

    // ---- arithmetic -----------------------------------------------------

    // Chronon - Chronon = Span (the paper's flagship example).
    op(cat, BinaryOp::Sub, chr, chr, spn, false, move |_, a| {
        Ok(t.span(want_chronon(&a[0])? - want_chronon(&a[1])?))
    })?;
    // Chronon ± Span = Chronon.
    op(cat, BinaryOp::Add, chr, spn, chr, false, move |_, a| {
        want_chronon(&a[0])?
            .checked_add(want_span(&a[1])?)
            .map(|c| t.chronon(c))
            .map_err(|e| DbError::exec(e.to_string()))
    })?;
    op(cat, BinaryOp::Sub, chr, spn, chr, false, move |_, a| {
        want_chronon(&a[0])?
            .checked_sub(want_span(&a[1])?)
            .map(|c| t.chronon(c))
            .map_err(|e| DbError::exec(e.to_string()))
    })?;
    // Span + Chronon = Chronon (commutative convenience).
    op(cat, BinaryOp::Add, spn, chr, chr, false, move |_, a| {
        want_chronon(&a[1])?
            .checked_add(want_span(&a[0])?)
            .map(|c| t.chronon(c))
            .map_err(|e| DbError::exec(e.to_string()))
    })?;
    // Span ± Span = Span.
    op(cat, BinaryOp::Add, spn, spn, spn, false, move |_, a| {
        want_span(&a[0])?
            .checked_add(want_span(&a[1])?)
            .map(|s| t.span(s))
            .map_err(|e| DbError::exec(e.to_string()))
    })?;
    op(cat, BinaryOp::Sub, spn, spn, spn, false, move |_, a| {
        want_span(&a[0])?
            .checked_sub(want_span(&a[1])?)
            .map(|s| t.span(s))
            .map_err(|e| DbError::exec(e.to_string()))
    })?;
    // Span * INT and INT * Span (the paper's `'7'::Span * :w`).
    op(
        cat,
        BinaryOp::Mul,
        spn,
        DataType::Int,
        spn,
        false,
        move |_, a| {
            let k = a[1].as_int().ok_or_else(|| DbError::exec("expected INT"))?;
            want_span(&a[0])?
                .checked_mul(k)
                .map(|s| t.span(s))
                .map_err(|e| DbError::exec(e.to_string()))
        },
    )?;
    op(
        cat,
        BinaryOp::Mul,
        DataType::Int,
        spn,
        spn,
        false,
        move |_, a| {
            let k = a[0].as_int().ok_or_else(|| DbError::exec("expected INT"))?;
            want_span(&a[1])?
                .checked_mul(k)
                .map(|s| t.span(s))
                .map_err(|e| DbError::exec(e.to_string()))
        },
    )?;
    // Span / INT = Span, Span / Span = FLOAT ratio.
    op(
        cat,
        BinaryOp::Div,
        spn,
        DataType::Int,
        spn,
        false,
        move |_, a| {
            let k = a[1].as_int().ok_or_else(|| DbError::exec("expected INT"))?;
            want_span(&a[0])?
                .checked_div(k)
                .map(|s| t.span(s))
                .map_err(|e| DbError::exec(e.to_string()))
        },
    )?;
    op(
        cat,
        BinaryOp::Div,
        spn,
        spn,
        DataType::Float,
        false,
        move |_, a| {
            want_span(&a[0])?
                .ratio(want_span(&a[1])?)
                .map(Value::Float)
                .map_err(|e| DbError::exec(e.to_string()))
        },
    )?;
    // Instant ± Span = Instant (shifts, preserving NOW-relativity).
    op(cat, BinaryOp::Add, ins, spn, ins, false, move |_, a| {
        want_instant(&a[0])?
            .shift(want_span(&a[1])?)
            .map(|i| t.instant(i))
            .map_err(|e| DbError::exec(e.to_string()))
    })?;
    op(cat, BinaryOp::Sub, ins, spn, ins, false, move |_, a| {
        let by = want_span(&a[1])?
            .checked_neg()
            .map_err(|e| DbError::exec(e.to_string()))?;
        want_instant(&a[0])?
            .shift(by)
            .map(|i| t.instant(i))
            .map_err(|e| DbError::exec(e.to_string()))
    })?;
    // Instant - Instant = Span, evaluated at transaction time.
    op(cat, BinaryOp::Sub, ins, ins, spn, true, move |ctx, a| {
        let now = now_chronon(ctx.txn_time_unix);
        let x = want_instant(&a[0])?
            .resolve(now)
            .map_err(|e| DbError::exec(e.to_string()))?;
        let y = want_instant(&a[1])?
            .resolve(now)
            .map_err(|e| DbError::exec(e.to_string()))?;
        Ok(t.span(x - y))
    })?;

    // ---- comparisons ----------------------------------------------------

    for o in COMPARISONS {
        // Chronon vs Chronon: fixed, not now-dependent.
        op(cat, o, chr, chr, DataType::Bool, false, move |_, a| {
            Ok(cmp_value(
                o,
                want_chronon(&a[0])?.cmp(&want_chronon(&a[1])?),
            ))
        })?;
        // Span vs Span.
        op(cat, o, spn, spn, DataType::Bool, false, move |_, a| {
            Ok(cmp_value(o, want_span(&a[0])?.cmp(&want_span(&a[1])?)))
        })?;
        // Instant vs Instant: evaluated under the transaction time.
        op(cat, o, ins, ins, DataType::Bool, true, move |ctx, a| {
            let now = now_chronon(ctx.txn_time_unix);
            Ok(cmp_value(
                o,
                want_instant(&a[0])?.cmp_at(want_instant(&a[1])?, now),
            ))
        })?;
        // Chronon vs Instant and Instant vs Chronon (now-dependent).
        op(cat, o, chr, ins, DataType::Bool, true, move |ctx, a| {
            let now = now_chronon(ctx.txn_time_unix);
            let l = Instant::Fixed(want_chronon(&a[0])?);
            Ok(cmp_value(o, l.cmp_at(want_instant(&a[1])?, now)))
        })?;
        op(cat, o, ins, chr, DataType::Bool, true, move |ctx, a| {
            let now = now_chronon(ctx.txn_time_unix);
            let r = Instant::Fixed(want_chronon(&a[1])?);
            Ok(cmp_value(o, want_instant(&a[0])?.cmp_at(r, now)))
        })?;
    }

    // Element and Period equality (set semantics at transaction time).
    for o in [BinaryOp::Eq, BinaryOp::Ne] {
        let ele = DataType::Udt(t.element);
        let per = DataType::Udt(t.period);
        op(cat, o, ele, ele, DataType::Bool, true, move |ctx, a| {
            let now = now_chronon(ctx.txn_time_unix);
            let x = crate::types::as_element(&a[0])
                .ok_or_else(|| DbError::exec("expected Element"))?
                .resolve(now)
                .map_err(|e| DbError::exec(e.to_string()))?;
            let y = crate::types::as_element(&a[1])
                .ok_or_else(|| DbError::exec("expected Element"))?
                .resolve(now)
                .map_err(|e| DbError::exec(e.to_string()))?;
            Ok(Value::Bool((x == y) == (o == BinaryOp::Eq)))
        })?;
        op(cat, o, per, per, DataType::Bool, true, move |ctx, a| {
            let now = now_chronon(ctx.txn_time_unix);
            let x = crate::types::as_period(&a[0])
                .ok_or_else(|| DbError::exec("expected Period"))?
                .resolve(now)
                .map_err(|e| DbError::exec(e.to_string()))?;
            let y = crate::types::as_period(&a[1])
                .ok_or_else(|| DbError::exec("expected Period"))?
                .resolve(now)
                .map_err(|e| DbError::exec(e.to_string()))?;
            Ok(Value::Bool((x == y) == (o == BinaryOp::Eq)))
        })?;
    }

    Ok(())
}
