//! # tip-blade — the TIP DataBlade
//!
//! The component that "actually brings the temporal support into" the
//! DBMS (paper §3, Figure 1). Installing [`TipBlade`] into a
//! [`minidb::Database`] registers:
//!
//! * the five temporal datatypes — `Chronon`, `Span`, `Instant`,
//!   `Period`, `Element` — with text and binary I/O and comparison
//!   support;
//! * the cast network of paper §2, including implicit string conversion
//!   and the `Chronon → Instant → Period → Element` promotion chain;
//! * arithmetic and comparison operator overloads (`Chronon - Chronon =
//!   Span`, `'7'::Span * :w`, NOW-aware comparisons);
//! * ~50 routines: `start`, `first`, `length`, `union`, `intersect`,
//!   `difference`, `overlaps`, `contains`, Allen's operators, civil
//!   accessors, and more;
//! * the temporal aggregates `group_union` (coalescing) and
//!   `group_intersect`.
//!
//! Like the paper's DataBlade, nothing here touches engine internals —
//! only the public extension registries. Once installed, the types behave
//! "as if they were built into the DBMS".
//!
//! ```
//! use minidb::Database;
//! use tip_blade::TipBlade;
//!
//! let db = Database::new();
//! db.install_blade(&TipBlade).unwrap();
//! let session = db.session();
//! session.execute(
//!     "CREATE TABLE Prescription (doctor CHAR(20), patient CHAR(20), \
//!      patientDOB Chronon, drug CHAR(20), dosage INT, frequency Span, \
//!      valid Element)",
//! ).unwrap();
//! ```

mod aggs;
mod batch;
mod casts;
mod ops;
mod routines;
pub mod types;

use minidb::catalog::Catalog;
use minidb::{Blade, DbResult};

pub use types::{
    as_chronon, as_element, as_instant, as_period, as_span, chronon_to_unix, now_chronon,
    TipChronon, TipElement, TipInstant, TipPeriod, TipSpan, TipTypes,
};

/// The TIP DataBlade. Install with
/// [`Database::install_blade`](minidb::Database::install_blade).
#[derive(Debug, Default, Clone, Copy)]
pub struct TipBlade;

impl Blade for TipBlade {
    fn name(&self) -> &str {
        "TIP"
    }

    fn version(&self) -> &str {
        env!("CARGO_PKG_VERSION")
    }

    fn register(&self, catalog: &mut Catalog) -> DbResult<()> {
        // Types first — everything else references their ids. Each def
        // captures the id the catalog is about to assign.
        let chronon = catalog.register_type(types::chronon_def(catalog.next_type_id()))?;
        let span = catalog.register_type(types::span_def(catalog.next_type_id()))?;
        let instant = catalog.register_type(types::instant_def(catalog.next_type_id()))?;
        let period = catalog.register_type(types::period_def(catalog.next_type_id()))?;
        let element = catalog.register_type(types::element_def(catalog.next_type_id()))?;
        let t = TipTypes {
            chronon,
            span,
            instant,
            period,
            element,
        };

        // Clone the text-I/O support functions for the string casts.
        let mut entries = Vec::new();
        for id in [chronon, span, instant, period, element] {
            let def = catalog.type_def(id)?;
            entries.push((
                minidb::DataType::Udt(id),
                def.parse.clone(),
                def.display.clone(),
            ));
        }
        let text = casts::TextSupport { entries };

        casts::register(catalog, t, &text)?;
        ops::register(catalog, t)?;
        routines::register(catalog, t)?;
        aggs::register(catalog, t)?;
        // Hot-path batch kernels ride on top of the scalar routines;
        // routines left without a kernel run on the row fallback.
        batch::register(catalog, t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::Database;

    #[test]
    fn blade_installs_once() {
        let db = Database::new();
        db.install_blade(&TipBlade).unwrap();
        assert!(db.install_blade(&TipBlade).is_err());
        db.with_catalog(|cat| {
            assert_eq!(cat.blades().len(), 1);
            assert_eq!(cat.blades()[0].name, "TIP");
            assert!(cat.lookup_type_name("Element").is_ok());
            assert!(cat.lookup_type_name("chronon").is_ok());
            assert!(cat.has_aggregate("group_union"));
            assert!(cat.has_function("start"));
        });
    }

    #[test]
    fn tip_types_lookup_matches_registration() {
        let db = Database::new();
        db.install_blade(&TipBlade).unwrap();
        db.with_catalog(|cat| {
            let t = TipTypes::from_catalog(cat).unwrap();
            let v = t.chronon(tip_core::Chronon::EPOCH);
            assert_eq!(cat.display_value(&v), "2000-01-01");
        });
    }
}
