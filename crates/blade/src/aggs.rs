//! Temporal aggregates (paper §2, "Aggregates").
//!
//! `group_union` computes the union of a collection of `Element`s and
//! returns a single `Element` — the temporal coalescing operation. The
//! paper's worked example shows why `length(group_union(valid))` cannot
//! be replaced by `SUM(length(valid))`: overlapping prescription periods
//! would be counted multiple times.

use crate::types::{as_element, now_chronon, TipTypes};
use minidb::catalog::{AggregateOverload, AggregateState, Catalog, ExecCtx};
use minidb::{DataType, DbError, DbResult, Value};
use std::sync::Arc;
use tip_core::agg::{ElementIntersectAggregate, ElementUnionAggregate};

struct GroupUnionState {
    t: TipTypes,
    acc: ElementUnionAggregate,
}

impl AggregateState for GroupUnionState {
    fn step(&mut self, ctx: &ExecCtx, v: &Value) -> DbResult<()> {
        let e = as_element(v).ok_or_else(|| DbError::exec("group_union expects Element"))?;
        let r = e
            .resolve(now_chronon(ctx.txn_time_unix))
            .map_err(|err| DbError::exec(err.to_string()))?;
        self.acc.step(&r);
        Ok(())
    }

    fn finish(self: Box<Self>, _: &ExecCtx) -> DbResult<Value> {
        Ok(self.t.element(self.acc.finish().into()))
    }
}

struct GroupIntersectState {
    t: TipTypes,
    acc: ElementIntersectAggregate,
}

impl AggregateState for GroupIntersectState {
    fn step(&mut self, ctx: &ExecCtx, v: &Value) -> DbResult<()> {
        let e = as_element(v).ok_or_else(|| DbError::exec("group_intersect expects Element"))?;
        let r = e
            .resolve(now_chronon(ctx.txn_time_unix))
            .map_err(|err| DbError::exec(err.to_string()))?;
        self.acc.step(&r);
        Ok(())
    }

    fn finish(self: Box<Self>, _: &ExecCtx) -> DbResult<Value> {
        Ok(self.t.element(self.acc.finish().into()))
    }
}

/// Temporal-aggregation state: collects every period of every input
/// element and reports the maximum number of simultaneously valid inputs
/// (the sweep of `tip_core::tagg`).
struct GroupMaxOverlapState {
    periods: Vec<tip_core::ResolvedPeriod>,
}

impl AggregateState for GroupMaxOverlapState {
    fn step(&mut self, ctx: &ExecCtx, v: &Value) -> DbResult<()> {
        let e = as_element(v).ok_or_else(|| DbError::exec("group_max_overlap expects Element"))?;
        let r = e
            .resolve(now_chronon(ctx.txn_time_unix))
            .map_err(|err| DbError::exec(err.to_string()))?;
        self.periods.extend_from_slice(r.periods());
        Ok(())
    }

    fn finish(self: Box<Self>, _: &ExecCtx) -> DbResult<Value> {
        Ok(Value::Int(
            tip_core::tagg::max_overlap(&self.periods).map_or(0, |(k, _)| k as i64),
        ))
    }
}

/// Registers `group_union`, `group_intersect`, and `group_max_overlap`.
pub(crate) fn register(cat: &mut Catalog, t: TipTypes) -> DbResult<()> {
    let ele = DataType::Udt(t.element);
    cat.register_aggregate(
        "group_union",
        AggregateOverload {
            param: ele,
            ret: ele,
            factory: Arc::new(move || {
                Box::new(GroupUnionState {
                    t,
                    acc: ElementUnionAggregate::new(),
                })
            }),
        },
    )?;
    cat.register_aggregate(
        "group_intersect",
        AggregateOverload {
            param: ele,
            ret: ele,
            factory: Arc::new(move || {
                Box::new(GroupIntersectState {
                    t,
                    acc: ElementIntersectAggregate::new(),
                })
            }),
        },
    )?;
    cat.register_aggregate(
        "group_max_overlap",
        AggregateOverload {
            param: ele,
            ret: minidb::DataType::Int,
            factory: Arc::new(|| {
                Box::new(GroupMaxOverlapState {
                    periods: Vec::new(),
                })
            }),
        },
    )?;
    Ok(())
}
