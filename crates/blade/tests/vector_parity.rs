//! Row/batch executor parity: every query must produce **byte-identical**
//! `format_result` output whether it runs on the vectorized batch path or
//! the row fallback. A random table of TIP-typed rows is loaded once per
//! case, then a pool of randomized queries — filters, OVERLAPS window
//! probes, point containment, aggregates, ORDER BY/LIMIT, DISTINCT, a
//! hash join, a kernel-less routine (forcing the mixed batch/row bridge),
//! and `AS OF` time travel — runs through two sessions, one with
//! `SET VECTORIZED OFF`, and the outputs are compared verbatim. Errors
//! must match too: if one path rejects a query, the other must reject it
//! with the same message.

use minidb::{Database, Session};
use proptest::prelude::*;
use tip_blade::TipBlade;
use tip_core::{Chronon, Span};

fn date(day: u32) -> String {
    (Chronon::from_ymd(1990, 1, 1).unwrap() + Span::from_days(day as i64)).to_string()
}

/// (id, grp, val, start day, length in days); `val < -50` stores NULL.
type RxRow = (i64, i64, i64, u32, u32);

fn build(rows: &[RxRow]) -> std::sync::Arc<Database> {
    let db = Database::new();
    db.install_blade(&TipBlade).expect("fresh db");
    let s = db.session();
    s.execute("CREATE TABLE rx (id INT, grp INT, val INT, valid Element)")
        .expect("ddl");
    for (id, grp, val, start, len) in rows {
        let val = if *val < -50 {
            "NULL".to_owned()
        } else {
            val.to_string()
        };
        s.execute(&format!(
            "INSERT INTO rx VALUES ({id}, {grp}, {val}, '{{[{}, {}]}}')",
            date(*start),
            date(*start + *len),
        ))
        .expect("insert");
    }
    db
}

fn check(srow: &Session, sbatch: &Session, sql: &str) {
    // Every query in the pool is valid SQL: a symmetric failure would
    // hide a generator bug, so errors are only tolerated when *both*
    // paths produce the identical message AND the query legitimately can
    // fail — which none here can. Demand success outright.
    let a = srow
        .query(sql)
        .unwrap_or_else(|e| panic!("row path failed for {sql}: {e}"));
    let b = sbatch
        .query(sql)
        .unwrap_or_else(|e| panic!("batch path failed for {sql}: {e}"));
    assert_eq!(
        srow.format_result(&a),
        sbatch.format_result(&b),
        "output diverges for {sql}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_and_row_paths_agree(
        rows in proptest::collection::vec(
            (0i64..200, 0i64..4, -60i64..50, 0u32..3000, 1u32..400),
            0..60,
        ),
        params in (-50i64..50, 0u32..3200, 0u32..3200, 0u32..3400, 1u64..20),
    ) {
        let (c1, d1, d2, point, lim) = params;
        let db = build(&rows);
        let seq = db.commit_seq();
        db.session()
            .execute(&format!("UPDATE rx SET val = {c1} WHERE grp = 1"))
            .expect("update");

        let mut srow = db.session();
        srow.set_vectorized(false);
        let sbatch = db.session();
        prop_assert!(!srow.vectorized() && sbatch.vectorized());

        let (lo, hi) = (date(d1.min(d2)), date(d1.max(d2)));
        let queries = [
            format!("SELECT id, grp, val FROM rx WHERE val > {c1}"),
            format!("SELECT id FROM rx WHERE overlaps(valid, '{{[{lo}, {hi}]}}'::Element)"),
            format!("SELECT id FROM rx WHERE contains(valid, '{}'::Chronon)", date(point)),
            "SELECT grp, COUNT(*), SUM(val) FROM rx GROUP BY grp ORDER BY grp".to_owned(),
            format!("SELECT id, val FROM rx WHERE val > {c1} OR grp = 2 ORDER BY id DESC LIMIT {lim}"),
            format!(
                "SELECT COUNT(*) FROM rx \
                 WHERE overlaps(valid, '{{[{lo}, {hi}]}}'::Element) AND val > {c1}"
            ),
            // `length`/`total_seconds` have no batch kernel: this exercises
            // the row fallback and the batch<->row bridges in mixed plans.
            format!("SELECT id, total_seconds(length(valid)) FROM rx WHERE grp < 3 ORDER BY id LIMIT {lim}"),
            "SELECT DISTINCT grp FROM rx ORDER BY grp".to_owned(),
            format!(
                "SELECT a.id, b.id FROM rx a, rx b \
                 WHERE a.grp = b.grp AND a.val > b.val ORDER BY a.id, b.id LIMIT {lim}"
            ),
            format!("SELECT id, grp, val FROM rx WHERE val > {c1} AS OF COMMIT {seq}"),
        ];
        for sql in &queries {
            check(&srow, &sbatch, sql);
        }
    }
}
