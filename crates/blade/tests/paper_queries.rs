//! End-to-end tests running the TIP paper's §2 example statements
//! verbatim (modulo string-literal quoting) through SQL.

use minidb::{Database, Session, Value};
use tip_blade::{as_chronon, as_element, as_span, TipBlade};
use tip_core::{Chronon, Span};

/// Unix seconds for a date, so tests can pin the transaction time.
fn unix(y: i32, m: u32, d: u32) -> i64 {
    tip_blade::chronon_to_unix(Chronon::from_ymd(y, m, d).unwrap())
}

fn setup() -> (std::sync::Arc<Database>, Session) {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let mut session = db.session();
    // Pin NOW to 1999-12-01, the era of the paper's demo.
    session.set_now_unix(Some(unix(1999, 12, 1)));
    session
        .execute(
            "CREATE TABLE Prescription (doctor CHAR(20), patient CHAR(20), \
             patientDOB Chronon, drug CHAR(20), dosage INT, frequency Span, valid Element)",
        )
        .unwrap();
    (db, session)
}

fn seed_paper_rows(s: &Session) {
    // The paper's INSERT (Q1), plus companions exercising the other demos.
    s.execute(
        "INSERT INTO Prescription VALUES ('Dr.Pepper', 'Mr.Showbiz', '1965-04-02', \
         'Diabeta', 1, '0 08:00:00', '{[1999-10-01, NOW]}')",
    )
    .unwrap();
    s.execute(
        "INSERT INTO Prescription VALUES ('Dr.No', 'Mr.Showbiz', '1965-04-02', \
         'Aspirin', 2, '1', '{[1999-09-15, 1999-10-20]}')",
    )
    .unwrap();
    s.execute(
        "INSERT INTO Prescription VALUES ('Dr.No', 'Ms.Medley', '1999-08-01', \
         'Tylenol', 1, '0 06:00:00', '{[1999-08-20, 1999-08-25]}')",
    )
    .unwrap();
    s.execute(
        "INSERT INTO Prescription VALUES ('Dr.Pepper', 'Ms.Medley', '1999-08-01', \
         'Diabeta', 1, '1', '{[1999-01-01, 1999-04-30], [1999-07-01, 1999-10-31]}')",
    )
    .unwrap();
}

#[test]
fn q1_insert_with_string_casts() {
    let (_db, s) = setup();
    seed_paper_rows(&s);
    let r = s
        .query(
            "SELECT patientDOB, frequency, valid FROM Prescription \
                     WHERE patient = 'Mr.Showbiz' AND drug = 'Diabeta'",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    // String literals were implicitly cast into TIP types on insert.
    assert_eq!(
        as_chronon(&r.rows[0][0]).unwrap(),
        Chronon::from_ymd(1965, 4, 2).unwrap()
    );
    assert_eq!(as_span(&r.rows[0][1]).unwrap(), Span::from_hours(8));
    let e = as_element(&r.rows[0][2]).unwrap();
    assert!(e.is_now_relative(), "stored Element keeps its NOW endpoint");
    assert_eq!(e.to_string(), "{[1999-10-01, NOW]}");
}

#[test]
fn q2_tylenol_query_with_parameter() {
    let (_db, s) = setup();
    seed_paper_rows(&s);
    // Paper Q2: patients prescribed Tylenol when less than :w weeks old.
    let sql = "SELECT patient FROM Prescription \
               WHERE drug = 'Tylenol' AND start(valid) - patientDOB < '7 00:00:00'::Span * :w";
    // Ms.Medley was born 1999-08-01 and started Tylenol 1999-08-20 (19
    // days old): within 3 weeks but not within 2.
    let r = s.query_with_params(sql, &[("w", Value::Int(3))]).unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0].as_str(), Some("Ms.Medley"));
    let r = s.query_with_params(sql, &[("w", Value::Int(2))]).unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn q3_temporal_self_join() {
    let (_db, s) = setup();
    seed_paper_rows(&s);
    // Paper Q3: who has taken Diabeta and Aspirin simultaneously, and when.
    let r = s
        .query(
            "SELECT p1.patient, intersect(p1.valid, p2.valid) \
             FROM Prescription p1, Prescription p2 \
             WHERE p1.drug = 'Diabeta' AND p2.drug = 'Aspirin' \
               AND p1.patient = p2.patient \
               AND overlaps(p1.valid, p2.valid)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0].as_str(), Some("Mr.Showbiz"));
    // Diabeta [1999-10-01, NOW=1999-12-01] ∩ Aspirin [1999-09-15, 1999-10-20]
    // = [1999-10-01, 1999-10-20].
    let e = as_element(&r.rows[0][1]).unwrap();
    assert_eq!(e.to_string(), "{[1999-10-01, 1999-10-20]}");
}

#[test]
fn q4_group_union_coalescing() {
    let (_db, s) = setup();
    seed_paper_rows(&s);
    // Paper Q4: how long each patient has been on prescription medication.
    let r = s
        .query(
            "SELECT patient, length(group_union(valid)) FROM Prescription \
             GROUP BY patient ORDER BY patient",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0].as_str(), Some("Mr.Showbiz"));
    // Mr.Showbiz: [1999-09-15, NOW=1999-12-01] coalesced (Aspirin and
    // Diabeta overlap) = 78 days worth of chronons (half-open on seconds:
    // 77 days + 1 second in closed semantics).
    let len = as_span(&r.rows[0][1]).unwrap();
    let expected = Chronon::from_ymd(1999, 12, 1).unwrap()
        - Chronon::from_ymd(1999, 9, 15).unwrap()
        + Span::SECOND;
    assert_eq!(len, expected);
    // And the coalesced length differs from the naive SUM(length(valid)).
    let naive = s
        .query(
            "SELECT patient, SUM(total_seconds(length(valid))) FROM Prescription \
             GROUP BY patient ORDER BY patient",
        )
        .unwrap();
    let naive_secs = naive.rows[0][1].as_int().unwrap();
    assert!(
        naive_secs > len.seconds(),
        "SUM double-counts overlap: {naive_secs} <= {}",
        len.seconds()
    );
}

#[test]
fn now_relative_results_change_as_time_advances() {
    let (_db, mut s) = setup();
    seed_paper_rows(&s);
    // "since 1999-10-01" spans more time when asked later.
    let q = "SELECT total_seconds(length(valid)) FROM Prescription \
             WHERE patient = 'Mr.Showbiz' AND drug = 'Diabeta'";
    let at_dec = s.query(q).unwrap().rows[0][0].as_int().unwrap();
    s.set_now_unix(Some(unix(2000, 3, 1)));
    let at_mar = s.query(q).unwrap().rows[0][0].as_int().unwrap();
    assert!(at_mar > at_dec);
    // Asked before the prescription started, the element is empty.
    s.set_now_unix(Some(unix(1999, 9, 1)));
    let before = s.query(q).unwrap().rows[0][0].as_int().unwrap();
    assert_eq!(before, 0);
}

#[test]
fn chronon_plus_chronon_is_a_type_error() {
    let (_db, s) = setup();
    seed_paper_rows(&s);
    let err = s
        .query("SELECT patientDOB + patientDOB FROM Prescription")
        .unwrap_err();
    assert!(matches!(err, minidb::DbError::NoOverload { .. }), "{err}");
    // But Chronon - Chronon is a Span.
    let r = s
        .query("SELECT patientDOB - patientDOB FROM Prescription LIMIT 1")
        .unwrap();
    assert_eq!(as_span(&r.rows[0][0]).unwrap(), Span::ZERO);
}

#[test]
fn allen_operators_in_sql() {
    let (_db, s) = setup();
    let r = s
        .query(
            "SELECT allen('[1999-01-01, 1999-03-01]'::Period, '[1999-02-01, 1999-06-01]'::Period), \
                    before('[1999-01-01, 1999-01-05]'::Period, '[1999-02-01, 1999-06-01]'::Period), \
                    during('[1999-03-01, 1999-04-01]'::Period, '[1999-02-01, 1999-06-01]'::Period)",
        )
        .unwrap();
    assert_eq!(r.rows[0][0].as_str(), Some("overlaps"));
    assert_eq!(r.rows[0][1].as_bool(), Some(true));
    assert_eq!(r.rows[0][2].as_bool(), Some(true));
}

#[test]
fn element_algebra_in_sql() {
    let (_db, s) = setup();
    let r = s
        .query(
            "SELECT union('{[1999-01-01, 1999-02-01]}'::Element, \
                           '{[1999-02-01, 1999-03-01]}'::Element), \
                    difference('{[1999-01-01, 1999-12-31]}'::Element, \
                               '{[1999-06-01, 1999-06-30 23:59:59]}'::Element)",
        )
        .unwrap();
    let u = as_element(&r.rows[0][0]).unwrap();
    assert_eq!(u.to_string(), "{[1999-01-01, 1999-03-01]}");
    let d = as_element(&r.rows[0][1]).unwrap();
    assert_eq!(
        d.to_string(),
        "{[1999-01-01, 1999-05-31 23:59:59], [1999-07-01, 1999-12-31]}"
    );
}

#[test]
fn now_override_is_what_if_analysis() {
    let (_db, mut s) = setup();
    // NOW-7 resolves against the overridden NOW.
    s.set_now_unix(Some(unix(1999, 9, 23)));
    let r = s.query("SELECT to_chronon('NOW-1'::Instant)").unwrap();
    assert_eq!(
        as_chronon(&r.rows[0][0]).unwrap(),
        Chronon::from_ymd(1999, 9, 22).unwrap()
    );
}

#[test]
fn min_max_on_chronon_and_persistence() {
    let (db, s) = setup();
    seed_paper_rows(&s);
    let r = s
        .query("SELECT MIN(patientDOB), MAX(patientDOB) FROM Prescription")
        .unwrap();
    assert_eq!(
        as_chronon(&r.rows[0][0]).unwrap(),
        Chronon::from_ymd(1965, 4, 2).unwrap()
    );
    assert_eq!(
        as_chronon(&r.rows[0][1]).unwrap(),
        Chronon::from_ymd(1999, 8, 1).unwrap()
    );

    // Snapshot persistence round-trips the TIP UDT columns.
    let snap = db.save_snapshot().unwrap();
    let db2 = Database::new();
    db2.install_blade(&TipBlade).unwrap();
    db2.load_snapshot(&snap).unwrap();
    let mut s2 = db2.session();
    s2.set_now_unix(Some(unix(1999, 12, 1)));
    let r = s2
        .query("SELECT valid FROM Prescription WHERE drug = 'Diabeta' AND patient = 'Mr.Showbiz'")
        .unwrap();
    assert_eq!(
        as_element(&r.rows[0][0]).unwrap().to_string(),
        "{[1999-10-01, NOW]}"
    );
}

#[test]
fn index_on_chronon_column() {
    let (_db, s) = setup();
    seed_paper_rows(&s);
    s.execute("CREATE INDEX ix_dob ON Prescription(patientDOB)")
        .unwrap();
    let r = s
        .query("SELECT COUNT(*) FROM Prescription WHERE patientDOB = '1999-08-01'::Chronon")
        .unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(2));
}

#[test]
fn group_intersect_aggregate() {
    let (_db, s) = setup();
    s.execute("CREATE TABLE shifts (worker CHAR(10), onduty Element)")
        .unwrap();
    s.execute(
        "INSERT INTO shifts VALUES \
         ('a', '{[1999-01-01, 1999-01-10]}'), \
         ('a', '{[1999-01-05, 1999-01-20]}')",
    )
    .unwrap();
    let r = s
        .query("SELECT worker, group_intersect(onduty) FROM shifts GROUP BY worker")
        .unwrap();
    assert_eq!(
        as_element(&r.rows[0][1]).unwrap().to_string(),
        "{[1999-01-05, 1999-01-10]}"
    );
}

#[test]
fn invalid_literals_error_cleanly() {
    let (_db, s) = setup();
    let err = s
        .execute("INSERT INTO Prescription VALUES ('d', 'p', '1999-02-30', 'x', 1, '0', '{}')")
        .unwrap_err();
    assert!(err.to_string().contains("Chronon"), "{err}");
    let err = s
        .execute("INSERT INTO Prescription VALUES ('d', 'p', '1999-01-01', 'x', 1, '0', 'oops')")
        .unwrap_err();
    assert!(err.to_string().contains("Element"), "{err}");
}

#[test]
fn granularity_routines() {
    let (_db, s) = setup();
    let r = s
        .query(
            "SELECT trunc('1999-09-23 14:35:27'::Chronon, 'month'), \
                    next_granule('1999-12-15'::Chronon, 'year'), \
                    granule_count('[1999-01-15, 1999-03-02]'::Period, 'month'), \
                    length(expand_to('[1999-02-10, 1999-02-20]'::Period, 'month'))",
        )
        .unwrap();
    assert_eq!(
        as_chronon(&r.rows[0][0]).unwrap(),
        Chronon::from_ymd(1999, 9, 1).unwrap()
    );
    assert_eq!(
        as_chronon(&r.rows[0][1]).unwrap(),
        Chronon::from_ymd(2000, 1, 1).unwrap()
    );
    assert_eq!(r.rows[0][2].as_int(), Some(3));
    assert_eq!(as_span(&r.rows[0][3]).unwrap(), Span::from_days(28)); // all of Feb 1999
                                                                      // Unknown granularity errors cleanly.
    assert!(s
        .query("SELECT trunc('1999-01-01'::Chronon, 'fortnight')")
        .is_err());
}

#[test]
fn group_max_overlap_aggregate() {
    let (_db, s) = setup();
    seed_paper_rows(&s);
    // Mr.Showbiz's Diabeta and Aspirin prescriptions overlap -> 2;
    // Ms.Medley's Tylenol (Aug 20-25) sits inside her Diabeta period
    // (Jul-Oct) -> also 2.
    let r = s
        .query(
            "SELECT patient, group_max_overlap(valid) FROM Prescription \
             GROUP BY patient ORDER BY patient",
        )
        .unwrap();
    assert_eq!(r.rows[0][0].as_str(), Some("Mr.Showbiz"));
    assert_eq!(r.rows[0][1].as_int(), Some(2));
    assert_eq!(r.rows[1][0].as_str(), Some("Ms.Medley"));
    assert_eq!(r.rows[1][1].as_int(), Some(2));
}

#[test]
fn monthly_report_via_granularity_and_case() {
    // A realistic reporting query combining the new SQL surface with the
    // temporal routines: which prescriptions were active in March 1999,
    // bucketed by how much of the month they cover.
    let (_db, s) = setup();
    seed_paper_rows(&s);
    let r = s
        .query(
            "SELECT patient, drug, \
                    CASE WHEN length(restrict(valid, granule('1999-03-15'::Chronon, 'month'))) \
                              >= '28'::Span THEN 'full month' \
                         ELSE 'partial' END AS coverage \
             FROM Prescription \
             WHERE overlaps(valid, granule('1999-03-15'::Chronon, 'month')::Element) \
             ORDER BY patient, drug",
        )
        .unwrap();
    assert_eq!(
        r.rows.len(),
        1,
        "only Ms.Medley's long Diabeta course spans March"
    );
    assert_eq!(r.rows[0][0].as_str(), Some("Ms.Medley"));
    assert_eq!(r.rows[0][2].as_str(), Some("full month"));
}
