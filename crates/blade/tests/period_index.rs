//! The period (interval) index — the "new index" DataBlade capability of
//! the paper's reference [2] (Bliujute et al., ICDE 1999): indexing
//! period-valued tuple timestamps, including NOW-relative data.

use minidb::{Database, Session, TableSource, Value};
use tip_blade::TipBlade;
use tip_core::Chronon;

fn unix(s: &str) -> i64 {
    tip_blade::chronon_to_unix(s.parse::<Chronon>().unwrap())
}

fn setup(n_rows: usize) -> (std::sync::Arc<Database>, Session) {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let mut s = db.session();
    s.set_now_unix(Some(unix("1999-12-01")));
    s.execute("CREATE TABLE rx (id INT, valid Element)")
        .unwrap();
    // One ten-day prescription starting every day from 1990-01-01, plus a
    // few NOW-relative rows (which must live in the index's overflow).
    let base: Chronon = "1990-01-01".parse().unwrap();
    for i in 0..n_rows {
        let start = base + tip_core::Span::from_days(i as i64);
        let end = start + tip_core::Span::from_days(10);
        s.execute_with_params(
            "INSERT INTO rx VALUES (:i, :v)",
            &[
                ("i", Value::Int(i as i64)),
                ("v", Value::Str(format!("{{[{start}, {end}]}}"))),
            ],
        )
        .unwrap();
    }
    s.execute("INSERT INTO rx VALUES (9991, '{[1999-10-01, NOW]}')")
        .unwrap();
    s.execute("INSERT INTO rx VALUES (9992, '{[NOW-7, NOW]}')")
        .unwrap();
    (db, s)
}

fn count_overlapping(s: &Session, window: &str) -> i64 {
    let sql = format!("SELECT COUNT(*) FROM rx WHERE overlaps(valid, '{{{window}}}'::Element)");
    s.query(&sql).unwrap().rows[0][0].as_int().unwrap()
}

#[test]
fn create_index_on_element_column_builds_an_interval_index() {
    let (db, s) = setup(50);
    s.execute("CREATE INDEX ix_valid ON rx(valid)").unwrap();
    db.with_tables(|pinned| {
        let t = pinned.table("rx").unwrap();
        assert!(t.indexes()[0].is_interval());
        assert!(t.interval_index_on(1).is_some());
        assert!(t.index_on(1).is_none(), "not usable as an equality index");
    });
}

#[test]
fn plans_use_the_interval_probe() {
    let (_db, s) = setup(50);
    s.execute("CREATE INDEX ix_valid ON rx(valid)").unwrap();
    let r = s
        .query(
            "EXPLAIN SELECT id FROM rx WHERE \
             overlaps(valid, '{[1990-02-01, 1990-02-05]}'::Element)",
        )
        .unwrap();
    let plan = r.rows[0][0].as_str().unwrap();
    assert!(plan.contains("ivscan(rx)"), "{plan}");
    assert!(
        plan.contains("[f]"),
        "the exact predicate is rechecked: {plan}"
    );
    // contains(col, chronon) also probes the index.
    let r = s
        .query("EXPLAIN SELECT id FROM rx WHERE contains(valid, '1990-02-03'::Chronon)")
        .unwrap();
    assert!(r.rows[0][0].as_str().unwrap().contains("ivscan(rx)"));
}

#[test]
fn indexed_and_unindexed_answers_are_identical() {
    let (_db, s_plain) = setup(300);
    let (_db2, s_ix) = setup(300);
    s_ix.execute("CREATE INDEX ix_valid ON rx(valid)").unwrap();
    for window in [
        "[1990-03-01, 1990-03-10]",
        "[1990-01-01, 1990-12-31]",
        "[1989-01-01, 1989-06-01]", // before everything
        "[1999-11-01, 1999-11-30]", // only the NOW-relative rows
        "[NOW-3, NOW]",
    ] {
        assert_eq!(
            count_overlapping(&s_plain, window),
            count_overlapping(&s_ix, window),
            "window {window}"
        );
    }
}

#[test]
fn now_relative_rows_are_found_at_any_transaction_time() {
    let (_db, mut s) = setup(10);
    s.execute("CREATE INDEX ix_valid ON rx(valid)").unwrap();
    // At NOW = 1999-12-01 both open rows overlap late November.
    assert_eq!(count_overlapping(&s, "[1999-11-20, 1999-11-25]"), 2);
    // What-if: rewind to before they started — conservative index bounds
    // still hand them to the recheck, which correctly rejects them.
    s.set_now_unix(Some(unix("1999-09-01")));
    assert_eq!(count_overlapping(&s, "[1999-11-20, 1999-11-25]"), 0);
}

#[test]
fn index_survives_dml() {
    let (_db, s) = setup(100);
    s.execute("CREATE INDEX ix_valid ON rx(valid)").unwrap();
    let before = count_overlapping(&s, "[1990-02-01, 1990-02-10]");
    s.execute(
        "DELETE FROM rx WHERE contains('[1990-02-01, 1990-02-10]'::Period::Element, \
         start(valid))",
    )
    .unwrap();
    let after = count_overlapping(&s, "[1990-02-01, 1990-02-10]");
    assert!(after < before);
    // Updates re-key the index.
    s.execute("UPDATE rx SET valid = '{[1995-06-01, 1995-06-30]}' WHERE id = 0")
        .unwrap();
    assert_eq!(count_overlapping(&s, "[1995-06-10, 1995-06-11]"), 1);
}

#[test]
fn interval_index_persists_in_snapshots() {
    let (db, s) = setup(40);
    s.execute("CREATE INDEX ix_valid ON rx(valid)").unwrap();
    let snap = db.save_snapshot().unwrap();
    let db2 = Database::new();
    db2.install_blade(&TipBlade).unwrap();
    db2.load_snapshot(&snap).unwrap();
    db2.with_tables(|pinned| {
        assert!(pinned.table("rx").unwrap().indexes()[0].is_interval());
    });
    let mut s2 = db2.session();
    s2.set_now_unix(Some(unix("1999-12-01")));
    assert_eq!(
        count_overlapping(&s2, "[1990-01-15, 1990-01-20]"),
        count_overlapping(&s, "[1990-01-15, 1990-01-20]"),
    );
}
