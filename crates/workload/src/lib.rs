//! # tip-workload — the synthetic medical database
//!
//! The paper's demonstration "is based on a synthetic medical database
//! containing various types of temporal data" (§4): doctors, patients
//! with dates of birth (`Chronon`), dosage frequencies (`Span`), and
//! prescription validity (`Element`). The original dataset was never
//! distributed, so this crate generates an equivalent one — seeded and
//! fully parameterized, so every experiment is reproducible and every
//! benchmark can sweep size, periods-per-element, overlap density, and
//! the fraction of open-ended (`NOW`) prescriptions.

use minidb::{Session, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tip_blade::TipTypes;
use tip_core::{Chronon, Element, Instant, NowContext, Period, ResolvedElement, Span};

/// Drugs that can appear in prescriptions (the paper's examples first).
pub const DRUGS: [&str; 10] = [
    "Diabeta",
    "Aspirin",
    "Tylenol",
    "Prozac",
    "Ibuprofen",
    "Insulin",
    "Lipitor",
    "Zocor",
    "Ativan",
    "Valium",
];

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct MedicalConfig {
    /// RNG seed — same seed, same database.
    pub seed: u64,
    pub n_doctors: usize,
    pub n_patients: usize,
    pub n_prescriptions: usize,
    /// Periods per prescription element are drawn from `1..=max_periods`.
    pub max_periods: usize,
    /// Fraction of prescriptions whose last period is open-ended to `NOW`.
    pub now_fraction: f64,
    /// Prescriptions fall within this window.
    pub start: Chronon,
    pub end: Chronon,
    /// Mean period length in days (exponential-ish spread around it).
    pub mean_period_days: i64,
}

impl Default for MedicalConfig {
    fn default() -> MedicalConfig {
        MedicalConfig {
            seed: 42,
            n_doctors: 10,
            n_patients: 50,
            n_prescriptions: 200,
            max_periods: 3,
            now_fraction: 0.2,
            start: Chronon::from_ymd(1995, 1, 1).expect("valid date"),
            end: Chronon::from_ymd(1999, 10, 1).expect("valid date"),
            mean_period_days: 30,
        }
    }
}

/// One generated prescription tuple (paper §2 schema).
#[derive(Debug, Clone)]
pub struct Prescription {
    pub doctor: String,
    pub patient: String,
    pub patient_dob: Chronon,
    pub drug: String,
    pub dosage: i64,
    pub frequency: Span,
    pub valid: Element,
}

/// The generated database.
#[derive(Debug, Clone)]
pub struct MedicalDb {
    pub doctors: Vec<String>,
    /// `(name, date of birth)`.
    pub patients: Vec<(String, Chronon)>,
    pub prescriptions: Vec<Prescription>,
}

/// Generates a medical database from a configuration (deterministic in
/// the seed).
pub fn generate(cfg: &MedicalConfig) -> MedicalDb {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let doctors: Vec<String> = (0..cfg.n_doctors).map(|i| format!("Dr.{:04}", i)).collect();
    let dob_lo = Chronon::from_ymd(1920, 1, 1).expect("valid date");
    let patients: Vec<(String, Chronon)> = (0..cfg.n_patients)
        .map(|i| {
            // DOBs run all the way to the end of the window so the
            // population includes infants (the paper's Tylenol query).
            let dob = random_chronon(&mut rng, dob_lo, cfg.end);
            (format!("Patient{:05}", i), dob)
        })
        .collect();
    let prescriptions = (0..cfg.n_prescriptions)
        .map(|_| {
            let (patient, dob) = patients[rng.gen_range(0..patients.len())].clone();
            let doctor = doctors[rng.gen_range(0..doctors.len())].clone();
            let drug = DRUGS[rng.gen_range(0..DRUGS.len())].to_owned();
            let dosage = rng.gen_range(1..=4);
            let hours = [4, 6, 8, 12, 24][rng.gen_range(0..5usize)];
            let frequency = Span::from_hours(hours);
            let n_periods = rng.gen_range(1..=cfg.max_periods);
            let open_ended = rng.gen_bool(cfg.now_fraction);
            let valid = random_element(
                &mut rng,
                cfg.start,
                cfg.end,
                n_periods,
                cfg.mean_period_days,
                open_ended,
            );
            Prescription {
                doctor,
                patient,
                patient_dob: dob,
                drug,
                dosage,
                frequency,
                valid,
            }
        })
        .collect();
    MedicalDb {
        doctors,
        patients,
        prescriptions,
    }
}

/// A uniform chronon in `[lo, hi]` at day granularity.
pub fn random_chronon(rng: &mut StdRng, lo: Chronon, hi: Chronon) -> Chronon {
    let days = (hi - lo).whole_days().max(1);
    lo + Span::from_days(rng.gen_range(0..days))
}

/// A raw element of `n_periods` periods in `[lo, hi]`, optionally ending
/// open (`NOW`). Periods are generated in order with random gaps, so they
/// are disjoint as stored (normalization still applies at resolution).
pub fn random_element(
    rng: &mut StdRng,
    lo: Chronon,
    hi: Chronon,
    n_periods: usize,
    mean_period_days: i64,
    open_ended: bool,
) -> Element {
    let mut periods = Vec::with_capacity(n_periods);
    let mut cursor = random_chronon(rng, lo, hi);
    for i in 0..n_periods {
        let len = Span::from_days(rng.gen_range(1..=mean_period_days.max(1) * 2));
        let start = cursor;
        let end = start.saturating_add(len);
        let last = i + 1 == n_periods;
        if last && open_ended {
            periods.push(Period::new(Instant::Fixed(start), Instant::NOW));
        } else {
            periods.push(Period::fixed(start, end));
        }
        let gap = Span::from_days(rng.gen_range(1..=mean_period_days.max(1)));
        cursor = end.saturating_add(gap);
        if cursor >= hi {
            break;
        }
    }
    Element::from_periods(periods)
}

/// A batch of *resolved* elements for algorithm benchmarks: each has
/// exactly `n_periods` disjoint periods drawn across `span_days` days.
pub fn random_resolved_elements(
    seed: u64,
    count: usize,
    n_periods: usize,
    span_days: i64,
) -> Vec<ResolvedElement> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lo = Chronon::from_ymd(1990, 1, 1).expect("valid date");
    (0..count)
        .map(|_| {
            let mut periods = Vec::with_capacity(n_periods);
            // Stride the timeline so we get exactly n_periods disjoint
            // periods regardless of randomness.
            let slot = (span_days * 86_400 / n_periods.max(1) as i64).max(4);
            for k in 0..n_periods {
                let base = lo + Span::from_seconds(k as i64 * slot);
                let off = rng.gen_range(0..slot / 4);
                let len = rng.gen_range(1..=slot / 2);
                let start = base + Span::from_seconds(off);
                let end = start + Span::from_seconds(len);
                periods.push(tip_core::ResolvedPeriod::new(start, end).expect("start <= end"));
            }
            ResolvedElement::normalize(periods)
        })
        .collect()
}

/// The paper's prescription schema DDL.
pub const PRESCRIPTION_DDL: &str = "CREATE TABLE Prescription (doctor CHAR(20), \
    patient CHAR(20), patientDOB Chronon, drug CHAR(20), dosage INT, frequency Span, \
    valid Element)";

/// Loads a generated database into a TIP-enabled session (creates the
/// `Prescription` table). Returns the number of rows inserted.
pub fn populate_tip(session: &Session, types: TipTypes, db: &MedicalDb) -> minidb::DbResult<usize> {
    session.execute(PRESCRIPTION_DDL)?;
    let mut n = 0;
    for p in &db.prescriptions {
        session.execute_with_params(
            "INSERT INTO Prescription VALUES (:doc, :pat, :dob, :drug, :dos, :freq, :valid)",
            &[
                ("doc", Value::Str(p.doctor.clone())),
                ("pat", Value::Str(p.patient.clone())),
                ("dob", types.chronon(p.patient_dob)),
                ("drug", Value::Str(p.drug.clone())),
                ("dos", Value::Int(p.dosage)),
                ("freq", types.span(p.frequency)),
                ("valid", types.element(p.valid.clone())),
            ],
        )?;
        n += 1;
    }
    Ok(n)
}

/// Loads the same data into a layered stratum (1NF encoding), resolving
/// `NOW` at load time against `now` — the best a layered system can do.
pub fn populate_layered(
    stratum: &mut tip_layered::LayeredStratum,
    db: &MedicalDb,
    now: NowContext,
) -> minidb::DbResult<usize> {
    use tip_layered::LType;
    stratum.create_temporal_table(
        "Prescription",
        &[
            ("doctor", LType::Str),
            ("patient", LType::Str),
            ("patientDOB", LType::Int),
            ("drug", LType::Str),
            ("dosage", LType::Int),
            ("frequency", LType::Int),
        ],
    )?;
    let mut n = 0;
    for p in &db.prescriptions {
        let resolved = p
            .valid
            .resolve(now.now())
            .map_err(|e| minidb::DbError::exec(e.to_string()))?;
        n += stratum.insert_temporal(
            "Prescription",
            &[
                Value::Str(p.doctor.clone()),
                Value::Str(p.patient.clone()),
                Value::Int(p.patient_dob.raw()),
                Value::Str(p.drug.clone()),
                Value::Int(p.dosage),
                Value::Int(p.frequency.seconds()),
            ],
            &resolved,
        )?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::Database;
    use tip_blade::TipBlade;

    #[test]
    fn generation_is_deterministic() {
        let cfg = MedicalConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.prescriptions.len(), b.prescriptions.len());
        for (x, y) in a.prescriptions.iter().zip(&b.prescriptions) {
            assert_eq!(x.patient, y.patient);
            assert_eq!(x.valid, y.valid);
        }
        let c = generate(&MedicalConfig { seed: 7, ..cfg });
        assert!(
            a.prescriptions
                .iter()
                .zip(&c.prescriptions)
                .any(|(x, y)| x.valid != y.valid),
            "different seeds should differ"
        );
    }

    #[test]
    fn config_controls_sizes() {
        let cfg = MedicalConfig {
            n_doctors: 3,
            n_patients: 5,
            n_prescriptions: 17,
            ..MedicalConfig::default()
        };
        let db = generate(&cfg);
        assert_eq!(db.doctors.len(), 3);
        assert_eq!(db.patients.len(), 5);
        assert_eq!(db.prescriptions.len(), 17);
    }

    #[test]
    fn now_fraction_respected_roughly() {
        let cfg = MedicalConfig {
            n_prescriptions: 500,
            now_fraction: 0.5,
            ..MedicalConfig::default()
        };
        let db = generate(&cfg);
        let open = db
            .prescriptions
            .iter()
            .filter(|p| p.valid.is_now_relative())
            .count();
        assert!((150..=350).contains(&open), "open-ended count {open}");
        let none = generate(&MedicalConfig {
            now_fraction: 0.0,
            ..cfg
        });
        assert!(none
            .prescriptions
            .iter()
            .all(|p| !p.valid.is_now_relative()));
    }

    #[test]
    fn random_resolved_elements_have_exact_period_counts() {
        for n in [1, 4, 16] {
            let es = random_resolved_elements(1, 5, n, 3650);
            assert_eq!(es.len(), 5);
            for e in es {
                assert_eq!(e.period_count(), n);
                e.check_invariant().unwrap();
            }
        }
    }

    #[test]
    fn populate_tip_loads_queryable_data() {
        let db = Database::new();
        db.install_blade(&TipBlade).unwrap();
        let session = db.session();
        let types = db.with_catalog(TipTypes::from_catalog).unwrap();
        let cfg = MedicalConfig {
            n_prescriptions: 25,
            ..MedicalConfig::default()
        };
        let med = generate(&cfg);
        let n = populate_tip(&session, types, &med).unwrap();
        assert_eq!(n, 25);
        let r = session.query("SELECT COUNT(*) FROM Prescription").unwrap();
        assert_eq!(r.rows[0][0].as_int(), Some(25));
        // The temporal aggregate works over generated data.
        let r = session
            .query("SELECT patient, length(group_union(valid)) FROM Prescription GROUP BY patient")
            .unwrap();
        assert!(!r.rows.is_empty());
    }

    #[test]
    fn populate_layered_matches_logical_content() {
        let cfg = MedicalConfig {
            n_prescriptions: 25,
            ..MedicalConfig::default()
        };
        let med = generate(&cfg);
        let mut stratum = tip_layered::LayeredStratum::new();
        let now = NowContext::fixed(Chronon::from_ymd(1999, 12, 1).unwrap());
        populate_layered(&mut stratum, &med, now).unwrap();
        // Physical row count equals total resolved periods.
        let expected: usize = med
            .prescriptions
            .iter()
            .map(|p| p.valid.resolve(now.now()).unwrap().periods().len())
            .sum();
        let r = stratum
            .raw_query("SELECT COUNT(*) FROM Prescription")
            .unwrap();
        assert_eq!(r.rows[0][0].as_int(), Some(expected as i64));
    }
}
