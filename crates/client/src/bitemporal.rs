//! Bitemporal tables: valid time *and* transaction time.
//!
//! TIP timestamps tuples with valid-time `Element`s; the bitemporal
//! literature the paper builds on (Jensen, Snodgrass; the paper's
//! reference [2] indexes "now-relative bitemporal data") adds a second
//! axis — *transaction time*: when the database believed the fact. This
//! module provides the standard append-only encoding as a client-side
//! library over a TIP-enabled connection:
//!
//! * every logical row is stored with `vt Element` (valid time),
//!   `tt_start Chronon`, and `tt_end Chronon` where `tt_end = FOREVER`
//!   means *until changed*;
//! * logical DELETE/UPDATE never destroy rows — they close `tt_end` at
//!   the statement's transaction time and (for UPDATE) append the new
//!   version;
//! * [`BitemporalTable::current`] queries the live state and
//!   [`BitemporalTable::as_of`] reconstructs what the database believed
//!   at any past transaction time — a time-travel query.

use crate::{Connection, HostValue, Rows};
use minidb::{DbError, DbResult};
use tip_core::Chronon;

/// The transaction-time sentinel for "until changed".
pub const UNTIL_CHANGED: Chronon = Chronon::FOREVER;

/// A bitemporal table handle: user columns + `vt`/`tt_start`/`tt_end`.
pub struct BitemporalTable<'a> {
    conn: &'a Connection,
    name: String,
    user_cols: Vec<String>,
}

impl<'a> BitemporalTable<'a> {
    /// Creates the backing table. `cols` are `(name, sql_type)` pairs for
    /// the user columns; the bitemporal columns are appended.
    pub fn create(
        conn: &'a Connection,
        name: &str,
        cols: &[(&str, &str)],
    ) -> DbResult<BitemporalTable<'a>> {
        for reserved in ["vt", "tt_start", "tt_end"] {
            if cols.iter().any(|(c, _)| c.eq_ignore_ascii_case(reserved)) {
                return Err(DbError::Constraint {
                    message: format!("column name {reserved} is reserved for bitemporal use"),
                });
            }
        }
        let mut ddl = format!("CREATE TABLE {name} (");
        for (c, ty) in cols {
            ddl.push_str(&format!("{c} {ty}, "));
        }
        ddl.push_str("vt Element, tt_start Chronon, tt_end Chronon)");
        conn.execute(&ddl, &[])?;
        Ok(BitemporalTable {
            conn,
            name: name.to_owned(),
            user_cols: cols.iter().map(|(c, _)| (*c).to_owned()).collect(),
        })
    }

    /// Attaches to an existing bitemporal table.
    pub fn attach(conn: &'a Connection, name: &str, user_cols: &[&str]) -> BitemporalTable<'a> {
        BitemporalTable {
            conn,
            name: name.to_owned(),
            user_cols: user_cols.iter().map(|c| (*c).to_owned()).collect(),
        }
    }

    fn collist(&self) -> String {
        self.user_cols.join(", ")
    }

    /// The transaction time the connection would stamp right now.
    fn txn_now(&self) -> DbResult<Chronon> {
        let mut rows = self.conn.query("SELECT now()", &[])?;
        rows.next();
        rows.get_chronon(0)
    }

    /// Inserts a new logical row valid over `vt`, asserted from the
    /// current transaction time until changed.
    pub fn insert(&self, values: &[(&str, HostValue)], vt: tip_core::Element) -> DbResult<()> {
        if values.len() != self.user_cols.len() {
            return Err(DbError::Constraint {
                message: format!(
                    "expected {} user column value(s), got {}",
                    self.user_cols.len(),
                    values.len()
                ),
            });
        }
        let placeholders: Vec<String> = values.iter().map(|(n, _)| format!(":{n}")).collect();
        let sql = format!(
            "INSERT INTO {} ({}, vt, tt_start, tt_end) \
             VALUES ({}, :__vt, now(), :__ttend)",
            self.name,
            self.collist(),
            placeholders.join(", "),
        );
        let mut params: Vec<(&str, HostValue)> = values.to_vec();
        params.push(("__vt", HostValue::Element(vt)));
        params.push(("__ttend", HostValue::Chronon(UNTIL_CHANGED)));
        self.conn.execute(&sql, &params)?;
        Ok(())
    }

    /// Logically deletes the current rows matching `predicate` (SQL over
    /// the user columns): their `tt_end` closes at the transaction time.
    /// Returns the number of versions closed.
    pub fn delete_where(&self, predicate: &str) -> DbResult<usize> {
        let sql = format!(
            "UPDATE {} SET tt_end = now() \
             WHERE tt_end = :__uc AND ({predicate})",
            self.name
        );
        self.conn
            .execute(&sql, &[("__uc", HostValue::Chronon(UNTIL_CHANGED))])
    }

    /// Logically updates: closes the matching current versions and
    /// appends one new version with the given values/valid time.
    pub fn update_where(
        &self,
        predicate: &str,
        new_values: &[(&str, HostValue)],
        new_vt: tip_core::Element,
    ) -> DbResult<usize> {
        let closed = self.delete_where(predicate)?;
        if closed > 0 {
            self.insert(new_values, new_vt)?;
        }
        Ok(closed)
    }

    /// The current logical state (rows believed true now).
    pub fn current(&self) -> DbResult<Rows> {
        let sql = format!(
            "SELECT {}, vt FROM {} WHERE tt_end = :__uc",
            self.collist(),
            self.name
        );
        self.conn
            .query(&sql, &[("__uc", HostValue::Chronon(UNTIL_CHANGED))])
    }

    /// Time travel: the state the database believed at transaction time
    /// `at` (rows whose `[tt_start, tt_end)` contains `at`).
    pub fn as_of(&self, at: Chronon) -> DbResult<Rows> {
        let sql = format!(
            "SELECT {}, vt FROM {} WHERE tt_start <= :__at AND tt_end > :__at",
            self.collist(),
            self.name
        );
        self.conn.query(&sql, &[("__at", HostValue::Chronon(at))])
    }

    /// Full version history of rows matching a predicate, oldest first.
    pub fn history_where(&self, predicate: &str) -> DbResult<Rows> {
        let sql = format!(
            "SELECT {}, vt, tt_start, tt_end FROM {} WHERE {predicate} ORDER BY tt_start",
            self.collist(),
            self.name
        );
        self.conn.query(&sql, &[])
    }

    /// The number of stored versions (physical rows).
    pub fn version_count(&self) -> DbResult<i64> {
        let mut rows = self
            .conn
            .query(&format!("SELECT COUNT(*) FROM {}", self.name), &[])?;
        rows.next();
        rows.get_int(0)
    }

    /// Sanity invariant: every version has `tt_start <= tt_end`, and no
    /// two *open* versions share identical user-column values (one
    /// current belief per fact).
    pub fn check_invariant(&self) -> DbResult<()> {
        let mut bad = self.conn.query(
            &format!("SELECT COUNT(*) FROM {} WHERE tt_start > tt_end", self.name),
            &[],
        )?;
        bad.next();
        if bad.get_int(0)? != 0 {
            return Err(DbError::Constraint {
                message: "version with tt_start > tt_end".into(),
            });
        }
        let _ = self.txn_now()?; // connection is alive and stamping
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_core::Element;

    fn c(s: &str) -> Chronon {
        s.parse().unwrap()
    }

    fn el(s: &str) -> Element {
        s.parse().unwrap()
    }

    fn setup() -> Connection {
        let conn = Connection::open_tip_enabled();
        conn.set_now(Some(c("1999-01-01")));
        conn
    }

    #[test]
    fn insert_and_current() {
        let conn = setup();
        let t = BitemporalTable::create(&conn, "rx", &[("patient", "CHAR(20)")]).unwrap();
        t.insert(
            &[("patient", HostValue::Str("showbiz".into()))],
            el("{[1999-01-01, NOW]}"),
        )
        .unwrap();
        let rows = t.current().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(t.version_count().unwrap(), 1);
        t.check_invariant().unwrap();
    }

    #[test]
    fn logical_delete_preserves_history() {
        let conn = setup();
        let t = BitemporalTable::create(&conn, "rx", &[("patient", "CHAR(20)")]).unwrap();
        t.insert(
            &[("patient", HostValue::Str("a".into()))],
            el("{[1999-01-01, NOW]}"),
        )
        .unwrap();
        // Time passes; the fact is retracted.
        conn.set_now(Some(c("1999-06-01")));
        assert_eq!(t.delete_where("patient = 'a'").unwrap(), 1);
        assert!(t.current().unwrap().is_empty());
        // The physical row is still there, closed.
        assert_eq!(t.version_count().unwrap(), 1);
        // Time travel: before the retraction the row was believed.
        assert_eq!(t.as_of(c("1999-03-01")).unwrap().len(), 1);
        assert!(t.as_of(c("1999-07-01")).unwrap().is_empty());
        assert!(
            t.as_of(c("1998-01-01")).unwrap().is_empty(),
            "before insertion"
        );
    }

    #[test]
    fn logical_update_appends_versions() {
        let conn = setup();
        let t = BitemporalTable::create(&conn, "rx", &[("patient", "CHAR(20)"), ("dose", "INT")])
            .unwrap();
        t.insert(
            &[
                ("patient", HostValue::Str("a".into())),
                ("dose", HostValue::Int(1)),
            ],
            el("{[1999-01-01, NOW]}"),
        )
        .unwrap();
        conn.set_now(Some(c("1999-04-01")));
        let n = t
            .update_where(
                "patient = 'a'",
                &[
                    ("patient", HostValue::Str("a".into())),
                    ("dose", HostValue::Int(2)),
                ],
                el("{[1999-04-01, NOW]}"),
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(t.version_count().unwrap(), 2);
        // Current shows the new dose.
        let mut cur = t.current().unwrap();
        assert_eq!(cur.len(), 1);
        cur.next();
        assert_eq!(cur.get_int(1).unwrap(), 2);
        // As-of February shows the old dose.
        let mut feb = t.as_of(c("1999-02-01")).unwrap();
        assert_eq!(feb.len(), 1);
        feb.next();
        assert_eq!(feb.get_int(1).unwrap(), 1);
        // History lists both versions in order.
        let hist = t.history_where("patient = 'a'").unwrap();
        assert_eq!(hist.len(), 2);
    }

    #[test]
    fn updating_a_missing_row_is_a_no_op() {
        let conn = setup();
        let t = BitemporalTable::create(&conn, "rx", &[("patient", "CHAR(20)")]).unwrap();
        let n = t
            .update_where(
                "patient = 'ghost'",
                &[("patient", HostValue::Str("ghost".into()))],
                el("{}"),
            )
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(t.version_count().unwrap(), 0);
    }

    #[test]
    fn reserved_columns_rejected_and_attach_works() {
        let conn = setup();
        assert!(BitemporalTable::create(&conn, "bad", &[("vt", "INT")]).is_err());
        BitemporalTable::create(&conn, "rx", &[("patient", "CHAR(20)")]).unwrap();
        let t2 = BitemporalTable::attach(&conn, "rx", &["patient"]);
        t2.insert(&[("patient", HostValue::Str("b".into()))], el("{}"))
            .unwrap();
        assert_eq!(t2.version_count().unwrap(), 1);
    }

    #[test]
    fn valid_and_transaction_time_are_independent() {
        // A fact about the *past* (valid time) asserted *now*
        // (transaction time): classic bitemporal distinction.
        let conn = setup();
        conn.set_now(Some(c("1999-06-01")));
        let t = BitemporalTable::create(&conn, "rx", &[("patient", "CHAR(20)")]).unwrap();
        t.insert(
            &[("patient", HostValue::Str("late-entry".into()))],
            el("{[1998-01-01, 1998-03-01]}"), // valid in early 1998…
        )
        .unwrap();
        // …but the database only knew about it from mid-1999.
        assert!(t.as_of(c("1998-06-01")).unwrap().is_empty());
        let mut rows = t.as_of(c("1999-07-01")).unwrap();
        assert_eq!(rows.len(), 1);
        rows.next();
        let vt = rows.get_element(1).unwrap();
        assert_eq!(vt.to_string(), "{[1998-01-01, 1998-03-01]}");
    }
}
