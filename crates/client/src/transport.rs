//! # Client transports
//!
//! [`Connection`](crate::Connection) reaches a TIP-enabled database
//! through a [`Transport`]: either the original in-process path (a
//! [`Session`] on a shared [`Database`]) or a remote path speaking the
//! [`crate::protocol`] wire format to a `tip-server` over TCP. The
//! higher layers — `PreparedStatement`, `Rows`, `TypeMap` — are
//! transport-agnostic; they only ever see `StatementOutcome`s.

use crate::protocol::{self, req, resp, Hello};
use minidb::{
    Database, DbError, DbResult, MetricsSnapshot, QueryMetrics, QueryResult, Session, SlowQuery,
    StatementOutcome, Value,
};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

/// How a connection executes statements. Implementations are `Send +
/// Sync`; one transport serves one logical session (statements are
/// serialized internally).
pub trait Transport: Send + Sync {
    /// Runs one statement with pre-lowered engine values.
    fn execute(&self, sql: &str, params: &[(&str, Value)]) -> DbResult<StatementOutcome>;

    /// Sets (or clears) the session's NOW override, in Unix seconds.
    /// Infallible by design: remote transports record the value and sync
    /// it lazily before the next statement.
    fn set_now_unix(&self, now: Option<i64>);

    /// The current NOW override, in Unix seconds.
    fn now_override_unix(&self) -> Option<i64>;

    /// Live handle to the session's metrics registry. Only the
    /// in-process transport can hand out the shared atomics; remote
    /// callers use [`Transport::metrics_snapshot`].
    fn metrics(&self) -> DbResult<Arc<QueryMetrics>>;

    /// A point-in-time copy of this session's counters.
    fn metrics_snapshot(&self) -> DbResult<MetricsSnapshot>;

    /// Counters aggregated over every session of the server (for the
    /// in-process transport, that is just this session).
    fn server_metrics(&self) -> DbResult<MetricsSnapshot>;

    /// Installs a slow-query hook. In-process only — closures cannot
    /// cross the wire.
    fn set_slow_query_log(
        &self,
        threshold: Duration,
        logger: Box<dyn Fn(&SlowQuery) + Send + Sync>,
    ) -> DbResult<()>;

    /// Removes the slow-query hook.
    fn clear_slow_query_log(&self) -> DbResult<()>;

    /// Registers `sql` server-side and returns its statement id, when
    /// the transport supports remote preparation. The default —
    /// in-process sessions, or remote peers negotiated below protocol
    /// v3 — returns `Ok(None)`: callers fall back to resending the
    /// statement text, and the engine's plan cache still removes the
    /// re-parse/re-plan cost.
    fn prepare(&self, _sql: &str) -> DbResult<Option<u64>> {
        Ok(None)
    }

    /// Executes a statement previously registered with
    /// [`Transport::prepare`]. Transports without remote preparation
    /// fall back to [`Transport::execute`] with the original text.
    fn execute_prepared(
        &self,
        _id: u64,
        sql: &str,
        params: &[(&str, Value)],
    ) -> DbResult<StatementOutcome> {
        self.execute(sql, params)
    }

    /// Releases a server-side prepared statement id. A no-op for
    /// transports without remote preparation.
    fn close_prepared(&self, _id: u64) -> DbResult<()> {
        Ok(())
    }

    /// Executes a batch of statements and returns one result slot per
    /// statement, in submission order. Transports that can pipeline
    /// (the remote path) send every request before reading any
    /// response — one write for the whole batch — so a round trip is
    /// paid once per batch instead of once per statement. The default
    /// runs the batch serially; semantics are identical either way:
    /// statement-level errors land in their slot and later statements
    /// still run, while a transport fault aborts the whole call.
    fn execute_batch(&self, batch: &[BatchStatement]) -> DbResult<Vec<DbResult<StatementOutcome>>> {
        let mut results = Vec::with_capacity(batch.len());
        for stmt in batch {
            let params: Vec<(&str, Value)> = stmt
                .params
                .iter()
                .map(|(n, v)| (n.as_str(), v.clone()))
                .collect();
            let result = match stmt.prepared_id {
                Some(id) => self.execute_prepared(id, &stmt.sql, &params),
                None => self.execute(&stmt.sql, &params),
            };
            results.push(result);
        }
        Ok(results)
    }

    /// Human-readable endpoint ("in-process" or "host:port").
    fn endpoint(&self) -> String;
}

/// One statement in a batch submitted via [`Transport::execute_batch`].
#[derive(Debug, Clone)]
pub struct BatchStatement {
    /// Statement text; always carried so transports without remote
    /// preparation (or pre-v3 peers) can fall back to plain execution.
    pub sql: String,
    /// Named parameters, pre-lowered to engine values.
    pub params: Vec<(String, Value)>,
    /// Server-side prepared-statement id, when one exists.
    pub prepared_id: Option<u64>,
}

// ---------------------------------------------------------------------
// In-process
// ---------------------------------------------------------------------

/// The original embedded path: a session on a database in this process.
pub struct InProcessTransport {
    session: Mutex<Session>,
}

impl InProcessTransport {
    pub fn new(session: Session) -> InProcessTransport {
        InProcessTransport {
            session: Mutex::new(session),
        }
    }

    fn with_session<R>(&self, f: impl FnOnce(&mut Session) -> R) -> R {
        f(&mut self.session.lock().expect("session poisoned"))
    }
}

impl Transport for InProcessTransport {
    fn execute(&self, sql: &str, params: &[(&str, Value)]) -> DbResult<StatementOutcome> {
        self.with_session(|s| s.execute_with_params(sql, params))
    }

    fn set_now_unix(&self, now: Option<i64>) {
        self.with_session(|s| s.set_now_unix(now));
    }

    fn now_override_unix(&self) -> Option<i64> {
        self.with_session(|s| s.now_override())
    }

    fn metrics(&self) -> DbResult<Arc<QueryMetrics>> {
        Ok(self.with_session(|s| s.metrics()))
    }

    fn metrics_snapshot(&self) -> DbResult<MetricsSnapshot> {
        Ok(self.with_session(|s| s.metrics().snapshot()))
    }

    fn server_metrics(&self) -> DbResult<MetricsSnapshot> {
        self.metrics_snapshot()
    }

    fn set_slow_query_log(
        &self,
        threshold: Duration,
        logger: Box<dyn Fn(&SlowQuery) + Send + Sync>,
    ) -> DbResult<()> {
        self.with_session(|s| s.set_slow_query_log(threshold, logger));
        Ok(())
    }

    fn clear_slow_query_log(&self) -> DbResult<()> {
        self.with_session(|s| s.clear_slow_query_log());
        Ok(())
    }

    fn endpoint(&self) -> String {
        "in-process".to_string()
    }
}

// ---------------------------------------------------------------------
// Remote
// ---------------------------------------------------------------------

/// Tuning knobs for [`RemoteTransport::connect`].
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// NOW override requested in the handshake (Unix seconds).
    pub now_unix: Option<i64>,
    /// Socket read timeout for each response frame.
    pub read_timeout: Duration,
    /// Socket write timeout for each request frame.
    pub write_timeout: Duration,
}

impl Default for ConnectOptions {
    fn default() -> ConnectOptions {
        ConnectOptions {
            now_unix: None,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
        }
    }
}

struct NowState {
    current: Option<i64>,
    /// `true` when `current` has not been pushed to the server yet.
    dirty: bool,
}

/// The wire path: one TCP stream to a `tip-server`, one request in
/// flight at a time. TIP UDT cells are rebuilt against a client-side
/// type registry so `Rows` accessors behave exactly as in-process.
pub struct RemoteTransport {
    stream: Mutex<TcpStream>,
    registry: Arc<Database>,
    types: tip_blade::TipTypes,
    now: Mutex<NowState>,
    /// Set after any I/O or protocol fault: the stream position is
    /// unknown, so every later call fails fast instead of desyncing.
    broken: AtomicBool,
    /// Protocol version negotiated in the handshake. Below 3 the
    /// prepared-statement calls quietly fall back to plain STMT.
    version: u16,
    endpoint: String,
}

impl RemoteTransport {
    /// Dials the server and performs the handshake. `registry` is a
    /// TIP-bladed local database used purely as a type registry for
    /// decoding (and as the display catalog for encoding).
    pub fn connect(
        addr: impl ToSocketAddrs,
        registry: Arc<Database>,
        types: tip_blade::TipTypes,
        opts: &ConnectOptions,
    ) -> DbResult<RemoteTransport> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| DbError::unavailable(format!("connect failed: {e}")))?;
        let endpoint = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "remote".to_string());
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(opts.read_timeout));
        let _ = stream.set_write_timeout(Some(opts.write_timeout));

        let mut t = RemoteTransport {
            stream: Mutex::new(stream),
            registry,
            types,
            now: Mutex::new(NowState {
                current: opts.now_unix,
                dirty: false,
            }),
            broken: AtomicBool::new(false),
            version: protocol::VERSION,
            endpoint,
        };
        let negotiated;
        {
            let mut stream = t.stream.lock().expect("stream poisoned");
            t.send(
                &mut stream,
                req::HELLO,
                &protocol::encode_hello(&Hello {
                    version: protocol::VERSION,
                    now_unix: opts.now_unix,
                }),
            )?;
            let (tag, body) = t.recv(&mut stream)?;
            match tag {
                resp::HELLO_OK => {
                    let (version, _banner) = protocol::decode_hello_ok(&body)?;
                    // The server answers with the version it settled on;
                    // anything in our supported window is fine (an older
                    // server just means no remote prepared statements).
                    if !(protocol::MIN_VERSION..=protocol::VERSION).contains(&version) {
                        return Err(DbError::unavailable(format!(
                            "server speaks protocol version {version}, client speaks {}..={}",
                            protocol::MIN_VERSION,
                            protocol::VERSION
                        )));
                    }
                    negotiated = version;
                }
                resp::BUSY => {
                    return Err(DbError::unavailable(protocol::decode_busy(&body)?));
                }
                resp::ERROR => return Err(protocol::decode_error(&body)?),
                other => {
                    return Err(DbError::unavailable(format!(
                        "unexpected handshake frame {other:#04x}"
                    )))
                }
            }
        }
        t.version = negotiated;
        Ok(t)
    }

    fn fail(&self, ctx: &str, e: impl std::fmt::Display) -> DbError {
        self.broken.store(true, Ordering::SeqCst);
        DbError::unavailable(format!(
            "{ctx}: {e} (connection to {} abandoned)",
            self.endpoint
        ))
    }

    fn check_live(&self) -> DbResult<()> {
        if self.broken.load(Ordering::SeqCst) {
            Err(DbError::unavailable(format!(
                "connection to {} is broken; reconnect",
                self.endpoint
            )))
        } else {
            Ok(())
        }
    }

    fn send(&self, stream: &mut TcpStream, tag: u8, body: &[u8]) -> DbResult<()> {
        // Assemble the whole frame first so it leaves in one write.
        let mut frame = Vec::with_capacity(5 + body.len());
        protocol::write_frame(&mut frame, tag, body)
            .and_then(|()| io::Write::write_all(stream, &frame))
            .map_err(|e| self.fail("send failed", e))
    }

    fn recv(&self, stream: &mut TcpStream) -> DbResult<(u8, Vec<u8>)> {
        protocol::read_frame(stream).map_err(|e| self.fail("receive failed", e))
    }

    /// Pushes a dirty NOW override before the next statement runs.
    fn sync_now(&self, stream: &mut TcpStream) -> DbResult<()> {
        let pending = {
            let now = self.now.lock().expect("now poisoned");
            now.dirty.then_some(now.current)
        };
        let Some(now_unix) = pending else {
            return Ok(());
        };
        self.send(stream, req::SET_NOW, &protocol::encode_set_now(now_unix))?;
        let (tag, body) = self.recv(stream)?;
        match tag {
            resp::DONE => {
                self.now.lock().expect("now poisoned").dirty = false;
                Ok(())
            }
            resp::ERROR => Err(protocol::decode_error(&body)?),
            other => Err(self.fail("SET_NOW", format!("unexpected frame {other:#04x}"))),
        }
    }

    fn display(&self, v: &Value) -> String {
        self.registry.with_catalog(|c| c.display_value(v))
    }

    /// The protocol version settled on in the handshake.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// `true` once a transport fault has poisoned the stream; the
    /// connection must be re-dialed. Statement-level errors (parse,
    /// constraint, read-only) do NOT set this.
    pub fn is_broken(&self) -> bool {
        self.broken.load(Ordering::SeqCst)
    }

    /// Reads one statement outcome off the wire: ERROR, AFFECTED, DONE,
    /// or a ROWS_HEADER-led stream. Shared by STMT and EXECUTE_PREPARED.
    fn read_outcome(&self, stream: &mut TcpStream) -> DbResult<StatementOutcome> {
        let (tag, body) = self.recv(stream)?;
        match tag {
            resp::ERROR => Err(protocol::decode_error(&body)?),
            resp::AFFECTED => Ok(StatementOutcome::Affected(
                protocol::decode_affected(&body)? as usize,
            )),
            resp::DONE => Ok(StatementOutcome::Done),
            resp::ROWS_HEADER => {
                let columns = protocol::decode_rows_header(&body, &self.types)?;
                let mut rows = Vec::new();
                loop {
                    let (tag, body) = self.recv(stream)?;
                    match tag {
                        resp::ROW_BATCH => rows.extend(protocol::decode_row_batch(
                            &body,
                            columns.len(),
                            &self.types,
                        )?),
                        resp::ROWS_DONE => break,
                        // A typed mid-stream error (e.g. a row too large
                        // for any frame) ends the result set; the
                        // connection itself stays usable.
                        resp::ERROR => return Err(protocol::decode_error(&body)?),
                        other => {
                            return Err(
                                self.fail("row stream", format!("unexpected frame {other:#04x}"))
                            )
                        }
                    }
                }
                Ok(StatementOutcome::Rows(QueryResult { columns, rows }))
            }
            other => Err(self.fail("statement", format!("unexpected frame {other:#04x}"))),
        }
    }

    /// Requests one metrics snapshot (`req` is SESSION_STATS or
    /// SERVER_METRICS).
    fn fetch_metrics(&self, request: u8) -> DbResult<MetricsSnapshot> {
        self.check_live()?;
        let mut stream = self.stream.lock().expect("stream poisoned");
        self.send(&mut stream, request, &[])?;
        let (tag, body) = self.recv(&mut stream)?;
        match tag {
            resp::METRICS => protocol::decode_metrics_for(&body, self.version),
            resp::ERROR => Err(protocol::decode_error(&body)?),
            other => Err(self.fail("metrics", format!("unexpected frame {other:#04x}"))),
        }
    }
}

impl Transport for RemoteTransport {
    fn execute(&self, sql: &str, params: &[(&str, Value)]) -> DbResult<StatementOutcome> {
        self.check_live()?;
        let mut stream = self.stream.lock().expect("stream poisoned");
        self.sync_now(&mut stream)?;
        let body = protocol::encode_stmt(sql, params, &|v| self.display(v));
        self.send(&mut stream, req::STMT, &body)?;
        self.read_outcome(&mut stream)
    }

    fn prepare(&self, sql: &str) -> DbResult<Option<u64>> {
        if self.version < 3 {
            return Ok(None);
        }
        self.check_live()?;
        let mut stream = self.stream.lock().expect("stream poisoned");
        self.send(&mut stream, req::PREPARE, &protocol::encode_prepare(sql))?;
        let (tag, body) = self.recv(&mut stream)?;
        match tag {
            resp::PREPARED_OK => Ok(Some(protocol::decode_prepared_ok(&body)?)),
            resp::ERROR => Err(protocol::decode_error(&body)?),
            other => Err(self.fail("PREPARE", format!("unexpected frame {other:#04x}"))),
        }
    }

    fn execute_prepared(
        &self,
        id: u64,
        sql: &str,
        params: &[(&str, Value)],
    ) -> DbResult<StatementOutcome> {
        if self.version < 3 {
            return self.execute(sql, params);
        }
        self.check_live()?;
        let mut stream = self.stream.lock().expect("stream poisoned");
        self.sync_now(&mut stream)?;
        let body = protocol::encode_execute_prepared(id, params, &|v| self.display(v));
        self.send(&mut stream, req::EXECUTE_PREPARED, &body)?;
        self.read_outcome(&mut stream)
    }

    /// True pipelining: every request frame is encoded into one buffer
    /// and written with a single syscall; the server executes them in
    /// order and the responses drain back to back. Statement-level
    /// errors occupy their slot without disturbing later statements; a
    /// transport fault (broken stream) aborts the drain, since frame
    /// boundaries can no longer be trusted.
    fn execute_batch(&self, batch: &[BatchStatement]) -> DbResult<Vec<DbResult<StatementOutcome>>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        self.check_live()?;
        let mut stream = self.stream.lock().expect("stream poisoned");
        self.sync_now(&mut stream)?;
        let mut wire = Vec::new();
        for stmt in batch {
            let params: Vec<(&str, Value)> = stmt
                .params
                .iter()
                .map(|(n, v)| (n.as_str(), v.clone()))
                .collect();
            let (tag, body) = match stmt.prepared_id {
                Some(id) if self.version >= 3 => (
                    req::EXECUTE_PREPARED,
                    protocol::encode_execute_prepared(id, &params, &|v| self.display(v)),
                ),
                _ => (
                    req::STMT,
                    protocol::encode_stmt(&stmt.sql, &params, &|v| self.display(v)),
                ),
            };
            protocol::write_frame(&mut wire, tag, &body)
                .map_err(|e| self.fail("batch encode", e))?;
        }
        io::Write::write_all(&mut *stream, &wire).map_err(|e| self.fail("batch send", e))?;
        let mut results = Vec::with_capacity(batch.len());
        for _ in batch {
            match self.read_outcome(&mut stream) {
                Ok(outcome) => results.push(Ok(outcome)),
                Err(e) if self.is_broken() => return Err(e),
                Err(e) => results.push(Err(e)),
            }
        }
        Ok(results)
    }

    fn close_prepared(&self, id: u64) -> DbResult<()> {
        if self.version < 3 || self.broken.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut stream = self.stream.lock().expect("stream poisoned");
        self.send(
            &mut stream,
            req::CLOSE_PREPARED,
            &protocol::encode_close_prepared(id),
        )?;
        let (tag, body) = self.recv(&mut stream)?;
        match tag {
            resp::DONE => Ok(()),
            resp::ERROR => Err(protocol::decode_error(&body)?),
            other => Err(self.fail("CLOSE_PREPARED", format!("unexpected frame {other:#04x}"))),
        }
    }

    fn set_now_unix(&self, now_unix: Option<i64>) {
        let mut now = self.now.lock().expect("now poisoned");
        now.dirty = now.dirty || now.current != now_unix;
        now.current = now_unix;
    }

    fn now_override_unix(&self) -> Option<i64> {
        self.now.lock().expect("now poisoned").current
    }

    fn metrics(&self) -> DbResult<Arc<QueryMetrics>> {
        Err(DbError::unavailable(
            "live metrics handles are in-process only; use metrics_snapshot()",
        ))
    }

    fn metrics_snapshot(&self) -> DbResult<MetricsSnapshot> {
        self.fetch_metrics(req::SESSION_STATS)
    }

    fn server_metrics(&self) -> DbResult<MetricsSnapshot> {
        self.fetch_metrics(req::SERVER_METRICS)
    }

    fn set_slow_query_log(
        &self,
        _threshold: Duration,
        _logger: Box<dyn Fn(&SlowQuery) + Send + Sync>,
    ) -> DbResult<()> {
        Err(DbError::unavailable(
            "slow-query log hooks are in-process only",
        ))
    }

    fn clear_slow_query_log(&self) -> DbResult<()> {
        Err(DbError::unavailable(
            "slow-query log hooks are in-process only",
        ))
    }

    fn endpoint(&self) -> String {
        self.endpoint.clone()
    }
}

impl Drop for RemoteTransport {
    fn drop(&mut self) {
        // Orderly goodbye; best effort, the server also survives an
        // abrupt close.
        if !self.broken.load(Ordering::SeqCst) {
            if let Ok(stream) = self.stream.get_mut() {
                let mut frame = Vec::with_capacity(8);
                if protocol::write_frame(&mut frame, req::BYE, &[]).is_ok() {
                    let _ = io::Write::write_all(stream, &frame);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Replicated
// ---------------------------------------------------------------------

/// `true` for statements that are both *idempotent* (safe to retry on a
/// torn connection) and *servable by a read-only replica*: SELECT
/// (including `AS OF` time travel), EXPLAIN, and SHOW. Everything else
/// — DML, DDL, transactions, SET — routes to the primary and is never
/// auto-retried.
pub fn is_read_only_statement(sql: &str) -> bool {
    matches!(statement_head(sql).as_str(), "select" | "explain" | "show")
}

/// The statement's lower-cased leading keyword (`"select"`, `"begin"`,
/// …) — empty for strings that open with anything non-alphabetic.
fn statement_head(sql: &str) -> String {
    sql.trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .collect::<String>()
        .to_ascii_lowercase()
}

/// Tuning knobs for [`ReplicatedTransport`].
#[derive(Debug, Clone)]
pub struct ReplicatedOptions {
    /// Per-connection handshake/socket options.
    pub connect: ConnectOptions,
    /// Attempts per read-only statement across the replica set before
    /// giving up with a typed `Unavailable`.
    pub read_attempts: usize,
    /// Base backoff between read retries; actual sleeps add up to 100%
    /// jitter.
    pub backoff: Duration,
}

impl Default for ReplicatedOptions {
    fn default() -> ReplicatedOptions {
        ReplicatedOptions {
            connect: ConnectOptions::default(),
            read_attempts: 3,
            backoff: Duration::from_millis(50),
        }
    }
}

/// One replica endpoint with its lazily-dialed connection and the
/// newest primary commit sequence it is known to have applied.
struct ReplicaSlot {
    addr: String,
    conn: Mutex<Option<RemoteTransport>>,
    applied_seq: AtomicU64,
}

/// How one replica read attempt went.
enum ReadAttempt {
    Served(StatementOutcome),
    /// The replica is behind the read-your-writes floor.
    Lagging,
    /// Connect or transport fault; the slot was torn down for re-dial.
    Fault(DbError),
}

/// Primary/replica routing over [`RemoteTransport`]s: writes,
/// transactions and DDL go to the primary (and while a BEGIN..COMMIT
/// transaction is open, *all* statements pin there — in-transaction
/// reads must see the transaction's workspace); plain SELECT / AS OF /
/// EXPLAIN / SHOW fan out across replicas round-robin, with bounded
/// jittered retries against other replicas on connection faults and a
/// read-your-writes floor — after a write, reads only land on replicas
/// whose applied sequence has caught up to the primary's durable
/// frontier (lagging replicas are skipped; if none qualify the read is
/// served by the primary).
pub struct ReplicatedTransport {
    registry: Arc<Database>,
    types: tip_blade::TipTypes,
    opts: ReplicatedOptions,
    primary_addr: String,
    primary: Mutex<Option<RemoteTransport>>,
    replicas: Vec<ReplicaSlot>,
    rr: AtomicUsize,
    /// NOW override propagated to whichever connection runs the next
    /// statement (each underlying transport de-dups unchanged values).
    now: Mutex<Option<i64>>,
    /// Read-your-writes floor: the primary's durable commit sequence
    /// observed after this session's most recent write.
    floor: AtomicU64,
    /// Set by a write; the next read refreshes the floor first.
    floor_dirty: AtomicBool,
    /// True while a BEGIN..COMMIT transaction is open on the primary
    /// connection. The transaction's workspace and frozen snapshot live
    /// in that one server session, so *every* statement — reads
    /// included — must pin to the primary until it closes; a replica
    /// would silently serve pre-transaction state.
    in_txn: AtomicBool,
}

impl ReplicatedTransport {
    /// Dials nothing yet: every connection (primary included) is
    /// established on first use and re-dialed after faults.
    pub fn new(
        primary: impl Into<String>,
        replicas: &[&str],
        registry: Arc<Database>,
        types: tip_blade::TipTypes,
        opts: ReplicatedOptions,
    ) -> ReplicatedTransport {
        ReplicatedTransport {
            registry,
            types,
            opts,
            primary_addr: primary.into(),
            primary: Mutex::new(None),
            replicas: replicas
                .iter()
                .map(|a| ReplicaSlot {
                    addr: (*a).to_string(),
                    conn: Mutex::new(None),
                    applied_seq: AtomicU64::new(0),
                })
                .collect(),
            rr: AtomicUsize::new(0),
            now: Mutex::new(None),
            floor: AtomicU64::new(0),
            floor_dirty: AtomicBool::new(false),
            in_txn: AtomicBool::new(false),
        }
    }

    fn current_now(&self) -> Option<i64> {
        *self.now.lock().expect("now poisoned")
    }

    /// Runs `f` against the primary connection, dialing it if needed and
    /// tearing it down after transport faults so the next call re-dials.
    fn with_primary<R>(&self, f: impl FnOnce(&RemoteTransport) -> DbResult<R>) -> DbResult<R> {
        let mut guard = self.primary.lock().expect("primary poisoned");
        if guard.is_none() {
            *guard = Some(RemoteTransport::connect(
                self.primary_addr.as_str(),
                Arc::clone(&self.registry),
                self.types,
                &self.opts.connect,
            )?);
        }
        let t = guard.as_ref().expect("just dialed");
        t.set_now_unix(self.current_now());
        let out = f(t);
        if t.is_broken() {
            *guard = None;
        }
        out
    }

    /// Refreshes the read-your-writes floor after a write: one metrics
    /// round trip to the primary for its durable commit sequence. A
    /// failed refresh keeps the dirty bit so the next read tries again.
    fn refresh_floor(&self) -> u64 {
        if self.floor_dirty.swap(false, Ordering::SeqCst) {
            match self.with_primary(|t| t.server_metrics()) {
                Ok(m) => {
                    self.floor.fetch_max(m.repl_last_seq, Ordering::SeqCst);
                }
                Err(_) => self.floor_dirty.store(true, Ordering::SeqCst),
            }
        }
        self.floor.load(Ordering::SeqCst)
    }

    /// One read attempt against one replica slot.
    fn try_replica(
        &self,
        slot: &ReplicaSlot,
        floor: u64,
        sql: &str,
        params: &[(&str, Value)],
    ) -> DbResult<ReadAttempt> {
        let mut guard = slot.conn.lock().expect("replica slot poisoned");
        if guard.is_none() {
            match RemoteTransport::connect(
                slot.addr.as_str(),
                Arc::clone(&self.registry),
                self.types,
                &self.opts.connect,
            ) {
                Ok(t) => *guard = Some(t),
                Err(e) => return Ok(ReadAttempt::Fault(e)),
            }
        }
        let t = guard.as_ref().expect("just dialed");
        if floor > slot.applied_seq.load(Ordering::SeqCst) {
            // The cached position is behind the floor: ask the replica
            // how far it has applied before trusting it with the read.
            match t.server_metrics() {
                Ok(m) => slot.applied_seq.store(m.repl_last_seq, Ordering::SeqCst),
                Err(e) => {
                    *guard = None;
                    return Ok(ReadAttempt::Fault(e));
                }
            }
            if floor > slot.applied_seq.load(Ordering::SeqCst) {
                return Ok(ReadAttempt::Lagging);
            }
        }
        t.set_now_unix(self.current_now());
        match t.execute(sql, params) {
            Ok(out) => Ok(ReadAttempt::Served(out)),
            Err(e) if t.is_broken() => {
                *guard = None;
                Ok(ReadAttempt::Fault(e))
            }
            // Statement-level error: deterministic, not worth retrying
            // elsewhere — surface it directly.
            Err(e) => Err(e),
        }
    }

    /// Fans a read-only statement across the replica set: round-robin
    /// with bounded jittered retries. Lagging replicas (below the
    /// read-your-writes floor) fall back to the primary; exhausted
    /// connection faults become a typed `Unavailable`.
    fn execute_read(&self, sql: &str, params: &[(&str, Value)]) -> DbResult<StatementOutcome> {
        let floor = self.refresh_floor();
        let attempts = self.opts.read_attempts.max(1);
        let mut lagging = false;
        let mut last_fault: Option<DbError> = None;
        for attempt in 0..attempts {
            let idx = self.rr.fetch_add(1, Ordering::SeqCst) % self.replicas.len();
            match self.try_replica(&self.replicas[idx], floor, sql, params)? {
                ReadAttempt::Served(out) => return Ok(out),
                ReadAttempt::Lagging => lagging = true,
                ReadAttempt::Fault(e) => {
                    last_fault = Some(e);
                    if attempt + 1 < attempts {
                        backoff_sleep(self.opts.backoff, attempt);
                    }
                }
            }
        }
        if lagging {
            // Read-your-writes beats fan-out: no replica has caught up
            // to this session's last write, so the primary serves it.
            return self.with_primary(|t| t.execute(sql, params));
        }
        let detail = last_fault.map(|e| e.to_string()).unwrap_or_default();
        Err(DbError::unavailable(format!(
            "no replica reachable after {attempts} attempts across {} endpoints: {detail}",
            self.replicas.len()
        )))
    }
}

impl Transport for ReplicatedTransport {
    fn execute(&self, sql: &str, params: &[(&str, Value)]) -> DbResult<StatementOutcome> {
        // Reads fan out only *outside* transactions: an in-transaction
        // SELECT must see the transaction's own uncommitted writes and
        // frozen snapshot, which exist only in the primary's session.
        if is_read_only_statement(sql)
            && !self.in_txn.load(Ordering::SeqCst)
            && !self.replicas.is_empty()
        {
            return self.execute_read(sql, params);
        }
        let out = self.with_primary(|t| t.execute(sql, params));
        // Mirror the server session's transaction lifecycle: BEGIN
        // opens only on success; COMMIT/ROLLBACK always close it (the
        // server takes the transaction state before the conflict check,
        // so even a failed COMMIT leaves no transaction open).
        match statement_head(sql).as_str() {
            "begin" if out.is_ok() => self.in_txn.store(true, Ordering::SeqCst),
            "commit" | "rollback" => self.in_txn.store(false, Ordering::SeqCst),
            _ => {}
        }
        if out.is_err() && self.primary.lock().expect("primary poisoned").is_none() {
            // The primary connection was torn down; any server-side
            // transaction died with its session.
            self.in_txn.store(false, Ordering::SeqCst);
        }
        let out = out?;
        if !is_read_only_statement(sql) {
            // The write (or transaction control) moved the primary's
            // frontier; the next read must re-establish the floor.
            self.floor_dirty.store(true, Ordering::SeqCst);
        }
        Ok(out)
    }

    fn set_now_unix(&self, now_unix: Option<i64>) {
        *self.now.lock().expect("now poisoned") = now_unix;
    }

    fn now_override_unix(&self) -> Option<i64> {
        self.current_now()
    }

    fn metrics(&self) -> DbResult<Arc<QueryMetrics>> {
        Err(DbError::unavailable(
            "live metrics handles are in-process only; use metrics_snapshot()",
        ))
    }

    fn metrics_snapshot(&self) -> DbResult<MetricsSnapshot> {
        self.with_primary(|t| t.metrics_snapshot())
    }

    fn server_metrics(&self) -> DbResult<MetricsSnapshot> {
        self.with_primary(|t| t.server_metrics())
    }

    fn set_slow_query_log(
        &self,
        _threshold: Duration,
        _logger: Box<dyn Fn(&SlowQuery) + Send + Sync>,
    ) -> DbResult<()> {
        Err(DbError::unavailable(
            "slow-query log hooks are in-process only",
        ))
    }

    fn clear_slow_query_log(&self) -> DbResult<()> {
        Err(DbError::unavailable(
            "slow-query log hooks are in-process only",
        ))
    }

    fn endpoint(&self) -> String {
        format!("{} (+{} replicas)", self.primary_addr, self.replicas.len())
    }
}

/// Sleeps `base * (attempt + 1)` plus up to 100% jitter. The jitter
/// source is the wall clock's subsecond nanos — enough to decorrelate
/// retry storms without a PRNG dependency.
fn backoff_sleep(base: Duration, attempt: usize) {
    let step = base.saturating_mul(attempt as u32 + 1);
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    let jitter = Duration::from_millis(nanos % (step.as_millis() as u64).max(1));
    std::thread::sleep(step + jitter);
}

/// Admin: tells the replica at `addr` to promote itself to primary —
/// finish draining its replication stream, open its WAL for append, and
/// start accepting writes. Returns once the server confirms.
pub fn promote_replica(addr: impl ToSocketAddrs) -> DbResult<()> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| DbError::unavailable(format!("connect failed: {e}")))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let send = |stream: &mut TcpStream, tag: u8, body: &[u8]| -> DbResult<()> {
        let mut frame = Vec::with_capacity(5 + body.len());
        protocol::write_frame(&mut frame, tag, body)
            .and_then(|()| io::Write::write_all(stream, &frame))
            .map_err(|e| DbError::unavailable(format!("send failed: {e}")))
    };
    let recv = |stream: &mut TcpStream| -> DbResult<(u8, Vec<u8>)> {
        protocol::read_frame(stream)
            .map_err(|e| DbError::unavailable(format!("receive failed: {e}")))
    };
    send(
        &mut stream,
        req::HELLO,
        &protocol::encode_hello(&Hello {
            version: protocol::VERSION,
            now_unix: None,
        }),
    )?;
    match recv(&mut stream)? {
        (resp::HELLO_OK, body) => {
            let (version, _banner) = protocol::decode_hello_ok(&body)?;
            if version < 6 {
                return Err(DbError::unavailable(format!(
                    "server speaks protocol v{version}; PROMOTE needs v6"
                )));
            }
        }
        (resp::ERROR, body) => return Err(protocol::decode_error(&body)?),
        (other, _) => {
            return Err(DbError::unavailable(format!(
                "unexpected handshake frame {other:#04x}"
            )))
        }
    }
    send(&mut stream, req::PROMOTE, &[])?;
    match recv(&mut stream)? {
        (resp::DONE, _) => Ok(()),
        (resp::ERROR, body) => Err(protocol::decode_error(&body)?),
        (other, _) => Err(DbError::unavailable(format!(
            "unexpected PROMOTE reply {other:#04x}"
        ))),
    }
}
