//! # Client transports
//!
//! [`Connection`](crate::Connection) reaches a TIP-enabled database
//! through a [`Transport`]: either the original in-process path (a
//! [`Session`] on a shared [`Database`]) or a remote path speaking the
//! [`crate::protocol`] wire format to a `tip-server` over TCP. The
//! higher layers — `PreparedStatement`, `Rows`, `TypeMap` — are
//! transport-agnostic; they only ever see `StatementOutcome`s.

use crate::protocol::{self, req, resp, Hello};
use minidb::{
    Database, DbError, DbResult, MetricsSnapshot, QueryMetrics, QueryResult, Session, SlowQuery,
    StatementOutcome, Value,
};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a connection executes statements. Implementations are `Send +
/// Sync`; one transport serves one logical session (statements are
/// serialized internally).
pub trait Transport: Send + Sync {
    /// Runs one statement with pre-lowered engine values.
    fn execute(&self, sql: &str, params: &[(&str, Value)]) -> DbResult<StatementOutcome>;

    /// Sets (or clears) the session's NOW override, in Unix seconds.
    /// Infallible by design: remote transports record the value and sync
    /// it lazily before the next statement.
    fn set_now_unix(&self, now: Option<i64>);

    /// The current NOW override, in Unix seconds.
    fn now_override_unix(&self) -> Option<i64>;

    /// Live handle to the session's metrics registry. Only the
    /// in-process transport can hand out the shared atomics; remote
    /// callers use [`Transport::metrics_snapshot`].
    fn metrics(&self) -> DbResult<Arc<QueryMetrics>>;

    /// A point-in-time copy of this session's counters.
    fn metrics_snapshot(&self) -> DbResult<MetricsSnapshot>;

    /// Counters aggregated over every session of the server (for the
    /// in-process transport, that is just this session).
    fn server_metrics(&self) -> DbResult<MetricsSnapshot>;

    /// Installs a slow-query hook. In-process only — closures cannot
    /// cross the wire.
    fn set_slow_query_log(
        &self,
        threshold: Duration,
        logger: Box<dyn Fn(&SlowQuery) + Send + Sync>,
    ) -> DbResult<()>;

    /// Removes the slow-query hook.
    fn clear_slow_query_log(&self) -> DbResult<()>;

    /// Registers `sql` server-side and returns its statement id, when
    /// the transport supports remote preparation. The default —
    /// in-process sessions, or remote peers negotiated below protocol
    /// v3 — returns `Ok(None)`: callers fall back to resending the
    /// statement text, and the engine's plan cache still removes the
    /// re-parse/re-plan cost.
    fn prepare(&self, _sql: &str) -> DbResult<Option<u64>> {
        Ok(None)
    }

    /// Executes a statement previously registered with
    /// [`Transport::prepare`]. Transports without remote preparation
    /// fall back to [`Transport::execute`] with the original text.
    fn execute_prepared(
        &self,
        _id: u64,
        sql: &str,
        params: &[(&str, Value)],
    ) -> DbResult<StatementOutcome> {
        self.execute(sql, params)
    }

    /// Releases a server-side prepared statement id. A no-op for
    /// transports without remote preparation.
    fn close_prepared(&self, _id: u64) -> DbResult<()> {
        Ok(())
    }

    /// Human-readable endpoint ("in-process" or "host:port").
    fn endpoint(&self) -> String;
}

// ---------------------------------------------------------------------
// In-process
// ---------------------------------------------------------------------

/// The original embedded path: a session on a database in this process.
pub struct InProcessTransport {
    session: Mutex<Session>,
}

impl InProcessTransport {
    pub fn new(session: Session) -> InProcessTransport {
        InProcessTransport {
            session: Mutex::new(session),
        }
    }

    fn with_session<R>(&self, f: impl FnOnce(&mut Session) -> R) -> R {
        f(&mut self.session.lock().expect("session poisoned"))
    }
}

impl Transport for InProcessTransport {
    fn execute(&self, sql: &str, params: &[(&str, Value)]) -> DbResult<StatementOutcome> {
        self.with_session(|s| s.execute_with_params(sql, params))
    }

    fn set_now_unix(&self, now: Option<i64>) {
        self.with_session(|s| s.set_now_unix(now));
    }

    fn now_override_unix(&self) -> Option<i64> {
        self.with_session(|s| s.now_override())
    }

    fn metrics(&self) -> DbResult<Arc<QueryMetrics>> {
        Ok(self.with_session(|s| s.metrics()))
    }

    fn metrics_snapshot(&self) -> DbResult<MetricsSnapshot> {
        Ok(self.with_session(|s| s.metrics().snapshot()))
    }

    fn server_metrics(&self) -> DbResult<MetricsSnapshot> {
        self.metrics_snapshot()
    }

    fn set_slow_query_log(
        &self,
        threshold: Duration,
        logger: Box<dyn Fn(&SlowQuery) + Send + Sync>,
    ) -> DbResult<()> {
        self.with_session(|s| s.set_slow_query_log(threshold, logger));
        Ok(())
    }

    fn clear_slow_query_log(&self) -> DbResult<()> {
        self.with_session(|s| s.clear_slow_query_log());
        Ok(())
    }

    fn endpoint(&self) -> String {
        "in-process".to_string()
    }
}

// ---------------------------------------------------------------------
// Remote
// ---------------------------------------------------------------------

/// Tuning knobs for [`RemoteTransport::connect`].
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// NOW override requested in the handshake (Unix seconds).
    pub now_unix: Option<i64>,
    /// Socket read timeout for each response frame.
    pub read_timeout: Duration,
    /// Socket write timeout for each request frame.
    pub write_timeout: Duration,
}

impl Default for ConnectOptions {
    fn default() -> ConnectOptions {
        ConnectOptions {
            now_unix: None,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
        }
    }
}

struct NowState {
    current: Option<i64>,
    /// `true` when `current` has not been pushed to the server yet.
    dirty: bool,
}

/// The wire path: one TCP stream to a `tip-server`, one request in
/// flight at a time. TIP UDT cells are rebuilt against a client-side
/// type registry so `Rows` accessors behave exactly as in-process.
pub struct RemoteTransport {
    stream: Mutex<TcpStream>,
    registry: Arc<Database>,
    types: tip_blade::TipTypes,
    now: Mutex<NowState>,
    /// Set after any I/O or protocol fault: the stream position is
    /// unknown, so every later call fails fast instead of desyncing.
    broken: AtomicBool,
    /// Protocol version negotiated in the handshake. Below 3 the
    /// prepared-statement calls quietly fall back to plain STMT.
    version: u16,
    endpoint: String,
}

impl RemoteTransport {
    /// Dials the server and performs the handshake. `registry` is a
    /// TIP-bladed local database used purely as a type registry for
    /// decoding (and as the display catalog for encoding).
    pub fn connect(
        addr: impl ToSocketAddrs,
        registry: Arc<Database>,
        types: tip_blade::TipTypes,
        opts: &ConnectOptions,
    ) -> DbResult<RemoteTransport> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| DbError::unavailable(format!("connect failed: {e}")))?;
        let endpoint = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "remote".to_string());
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(opts.read_timeout));
        let _ = stream.set_write_timeout(Some(opts.write_timeout));

        let mut t = RemoteTransport {
            stream: Mutex::new(stream),
            registry,
            types,
            now: Mutex::new(NowState {
                current: opts.now_unix,
                dirty: false,
            }),
            broken: AtomicBool::new(false),
            version: protocol::VERSION,
            endpoint,
        };
        let negotiated;
        {
            let mut stream = t.stream.lock().expect("stream poisoned");
            t.send(
                &mut stream,
                req::HELLO,
                &protocol::encode_hello(&Hello {
                    version: protocol::VERSION,
                    now_unix: opts.now_unix,
                }),
            )?;
            let (tag, body) = t.recv(&mut stream)?;
            match tag {
                resp::HELLO_OK => {
                    let (version, _banner) = protocol::decode_hello_ok(&body)?;
                    // The server answers with the version it settled on;
                    // anything in our supported window is fine (an older
                    // server just means no remote prepared statements).
                    if !(protocol::MIN_VERSION..=protocol::VERSION).contains(&version) {
                        return Err(DbError::unavailable(format!(
                            "server speaks protocol version {version}, client speaks {}..={}",
                            protocol::MIN_VERSION,
                            protocol::VERSION
                        )));
                    }
                    negotiated = version;
                }
                resp::BUSY => {
                    return Err(DbError::unavailable(protocol::decode_busy(&body)?));
                }
                resp::ERROR => return Err(protocol::decode_error(&body)?),
                other => {
                    return Err(DbError::unavailable(format!(
                        "unexpected handshake frame {other:#04x}"
                    )))
                }
            }
        }
        t.version = negotiated;
        Ok(t)
    }

    fn fail(&self, ctx: &str, e: impl std::fmt::Display) -> DbError {
        self.broken.store(true, Ordering::SeqCst);
        DbError::unavailable(format!(
            "{ctx}: {e} (connection to {} abandoned)",
            self.endpoint
        ))
    }

    fn check_live(&self) -> DbResult<()> {
        if self.broken.load(Ordering::SeqCst) {
            Err(DbError::unavailable(format!(
                "connection to {} is broken; reconnect",
                self.endpoint
            )))
        } else {
            Ok(())
        }
    }

    fn send(&self, stream: &mut TcpStream, tag: u8, body: &[u8]) -> DbResult<()> {
        // Assemble the whole frame first so it leaves in one write.
        let mut frame = Vec::with_capacity(5 + body.len());
        protocol::write_frame(&mut frame, tag, body)
            .and_then(|()| io::Write::write_all(stream, &frame))
            .map_err(|e| self.fail("send failed", e))
    }

    fn recv(&self, stream: &mut TcpStream) -> DbResult<(u8, Vec<u8>)> {
        protocol::read_frame(stream).map_err(|e| self.fail("receive failed", e))
    }

    /// Pushes a dirty NOW override before the next statement runs.
    fn sync_now(&self, stream: &mut TcpStream) -> DbResult<()> {
        let pending = {
            let now = self.now.lock().expect("now poisoned");
            now.dirty.then_some(now.current)
        };
        let Some(now_unix) = pending else {
            return Ok(());
        };
        self.send(stream, req::SET_NOW, &protocol::encode_set_now(now_unix))?;
        let (tag, body) = self.recv(stream)?;
        match tag {
            resp::DONE => {
                self.now.lock().expect("now poisoned").dirty = false;
                Ok(())
            }
            resp::ERROR => Err(protocol::decode_error(&body)?),
            other => Err(self.fail("SET_NOW", format!("unexpected frame {other:#04x}"))),
        }
    }

    fn display(&self, v: &Value) -> String {
        self.registry.with_catalog(|c| c.display_value(v))
    }

    /// The protocol version settled on in the handshake.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// Reads one statement outcome off the wire: ERROR, AFFECTED, DONE,
    /// or a ROWS_HEADER-led stream. Shared by STMT and EXECUTE_PREPARED.
    fn read_outcome(&self, stream: &mut TcpStream) -> DbResult<StatementOutcome> {
        let (tag, body) = self.recv(stream)?;
        match tag {
            resp::ERROR => Err(protocol::decode_error(&body)?),
            resp::AFFECTED => Ok(StatementOutcome::Affected(
                protocol::decode_affected(&body)? as usize,
            )),
            resp::DONE => Ok(StatementOutcome::Done),
            resp::ROWS_HEADER => {
                let columns = protocol::decode_rows_header(&body, &self.types)?;
                let mut rows = Vec::new();
                loop {
                    let (tag, body) = self.recv(stream)?;
                    match tag {
                        resp::ROW_BATCH => rows.extend(protocol::decode_row_batch(
                            &body,
                            columns.len(),
                            &self.types,
                        )?),
                        resp::ROWS_DONE => break,
                        // A typed mid-stream error (e.g. a row too large
                        // for any frame) ends the result set; the
                        // connection itself stays usable.
                        resp::ERROR => return Err(protocol::decode_error(&body)?),
                        other => {
                            return Err(
                                self.fail("row stream", format!("unexpected frame {other:#04x}"))
                            )
                        }
                    }
                }
                Ok(StatementOutcome::Rows(QueryResult { columns, rows }))
            }
            other => Err(self.fail("statement", format!("unexpected frame {other:#04x}"))),
        }
    }

    /// Requests one metrics snapshot (`req` is SESSION_STATS or
    /// SERVER_METRICS).
    fn fetch_metrics(&self, request: u8) -> DbResult<MetricsSnapshot> {
        self.check_live()?;
        let mut stream = self.stream.lock().expect("stream poisoned");
        self.send(&mut stream, request, &[])?;
        let (tag, body) = self.recv(&mut stream)?;
        match tag {
            resp::METRICS => protocol::decode_metrics_for(&body, self.version),
            resp::ERROR => Err(protocol::decode_error(&body)?),
            other => Err(self.fail("metrics", format!("unexpected frame {other:#04x}"))),
        }
    }
}

impl Transport for RemoteTransport {
    fn execute(&self, sql: &str, params: &[(&str, Value)]) -> DbResult<StatementOutcome> {
        self.check_live()?;
        let mut stream = self.stream.lock().expect("stream poisoned");
        self.sync_now(&mut stream)?;
        let body = protocol::encode_stmt(sql, params, &|v| self.display(v));
        self.send(&mut stream, req::STMT, &body)?;
        self.read_outcome(&mut stream)
    }

    fn prepare(&self, sql: &str) -> DbResult<Option<u64>> {
        if self.version < 3 {
            return Ok(None);
        }
        self.check_live()?;
        let mut stream = self.stream.lock().expect("stream poisoned");
        self.send(&mut stream, req::PREPARE, &protocol::encode_prepare(sql))?;
        let (tag, body) = self.recv(&mut stream)?;
        match tag {
            resp::PREPARED_OK => Ok(Some(protocol::decode_prepared_ok(&body)?)),
            resp::ERROR => Err(protocol::decode_error(&body)?),
            other => Err(self.fail("PREPARE", format!("unexpected frame {other:#04x}"))),
        }
    }

    fn execute_prepared(
        &self,
        id: u64,
        sql: &str,
        params: &[(&str, Value)],
    ) -> DbResult<StatementOutcome> {
        if self.version < 3 {
            return self.execute(sql, params);
        }
        self.check_live()?;
        let mut stream = self.stream.lock().expect("stream poisoned");
        self.sync_now(&mut stream)?;
        let body = protocol::encode_execute_prepared(id, params, &|v| self.display(v));
        self.send(&mut stream, req::EXECUTE_PREPARED, &body)?;
        self.read_outcome(&mut stream)
    }

    fn close_prepared(&self, id: u64) -> DbResult<()> {
        if self.version < 3 || self.broken.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut stream = self.stream.lock().expect("stream poisoned");
        self.send(
            &mut stream,
            req::CLOSE_PREPARED,
            &protocol::encode_close_prepared(id),
        )?;
        let (tag, body) = self.recv(&mut stream)?;
        match tag {
            resp::DONE => Ok(()),
            resp::ERROR => Err(protocol::decode_error(&body)?),
            other => Err(self.fail("CLOSE_PREPARED", format!("unexpected frame {other:#04x}"))),
        }
    }

    fn set_now_unix(&self, now_unix: Option<i64>) {
        let mut now = self.now.lock().expect("now poisoned");
        now.dirty = now.dirty || now.current != now_unix;
        now.current = now_unix;
    }

    fn now_override_unix(&self) -> Option<i64> {
        self.now.lock().expect("now poisoned").current
    }

    fn metrics(&self) -> DbResult<Arc<QueryMetrics>> {
        Err(DbError::unavailable(
            "live metrics handles are in-process only; use metrics_snapshot()",
        ))
    }

    fn metrics_snapshot(&self) -> DbResult<MetricsSnapshot> {
        self.fetch_metrics(req::SESSION_STATS)
    }

    fn server_metrics(&self) -> DbResult<MetricsSnapshot> {
        self.fetch_metrics(req::SERVER_METRICS)
    }

    fn set_slow_query_log(
        &self,
        _threshold: Duration,
        _logger: Box<dyn Fn(&SlowQuery) + Send + Sync>,
    ) -> DbResult<()> {
        Err(DbError::unavailable(
            "slow-query log hooks are in-process only",
        ))
    }

    fn clear_slow_query_log(&self) -> DbResult<()> {
        Err(DbError::unavailable(
            "slow-query log hooks are in-process only",
        ))
    }

    fn endpoint(&self) -> String {
        self.endpoint.clone()
    }
}

impl Drop for RemoteTransport {
    fn drop(&mut self) {
        // Orderly goodbye; best effort, the server also survives an
        // abrupt close.
        if !self.broken.load(Ordering::SeqCst) {
            if let Ok(stream) = self.stream.get_mut() {
                let mut frame = Vec::with_capacity(8);
                if protocol::write_frame(&mut frame, req::BYE, &[]).is_ok() {
                    let _ = io::Write::write_all(stream, &frame);
                }
            }
        }
    }
}
