//! # The TIP wire protocol
//!
//! A length-prefixed binary protocol spoken between [`crate::Connection`]
//! in remote mode and `tip-server`. Every frame is
//!
//! ```text
//! +----------------+-----+------------------+
//! | u32le length   | tag |  body (length-1) |
//! +----------------+-----+------------------+
//! ```
//!
//! where `length` counts the tag byte plus the body and is capped at
//! [`MAX_FRAME`]. Values travel by *kind byte*, not by catalog id — the
//! five TIP types are encoded with the same `tip_core::binary` codecs the
//! engine uses for storage, built-in scalars with the scalar codecs, and
//! any other UDT degrades to its server-side text rendering (kind
//! [`kind::OTHER`]), exactly like an unmapped JDBC STRUCT. This keeps the
//! protocol independent of the numeric [`UdtId`]s a particular catalog
//! happened to assign.
//!
//! The full frame grammar (handshake, statements, row streaming, typed
//! errors, metrics) is documented in `DESIGN.md`; this module is the
//! single source of truth both sides link against.

use bytes::{Buf, BufMut};
use minidb::obs::LATENCY_BUCKETS;
use minidb::{DataType, DbError, DbResult, MetricsSnapshot, Value};
use std::io::{self, Read, Write};
use tip_blade::{as_chronon, as_element, as_instant, as_period, as_span, TipTypes};
use tip_core::binary;

/// First four bytes of the HELLO body: `"TIP1"`.
pub const MAGIC: u32 = 0x5449_5031;
/// Protocol version spoken by this build. v2 widened the METRICS frame
/// with DML and lock-wait counters; v3 added prepared statements
/// (PREPARE / EXECUTE_PREPARED / CLOSE_PREPARED) and the plan-cache
/// counters in METRICS; v4 appended the six WAL/durability counters to
/// METRICS; v5 appended the MVCC gauges and transaction counters; v6
/// added replication (SUBSCRIBE / SNAPSHOT_CHUNK / WAL_CHUNK /
/// REPL_ACK / PROMOTE), the `ReadOnly` error code, and the five `repl.*`
/// METRICS fields; v7 appended the five `bufpool.*` buffer-pool fields
/// to METRICS. Servers negotiate down to a client's older version;
/// this constant is the highest version this build speaks.
pub const VERSION: u16 = 7;
/// Oldest protocol version this build still accepts from a peer.
pub const MIN_VERSION: u16 = 2;
/// Upper bound on one frame (tag + body); anything larger is treated as
/// a malformed stream and kills the connection.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Client → server frame tags.
pub mod req {
    /// Handshake: magic, version, optional NOW override.
    pub const HELLO: u8 = 0x01;
    /// One SQL statement with named parameters.
    pub const STMT: u8 = 0x02;
    /// Change the per-connection NOW override.
    pub const SET_NOW: u8 = 0x03;
    /// Ask for this session's metrics snapshot.
    pub const SESSION_STATS: u8 = 0x04;
    /// Ask for server-wide metrics aggregated over all connections.
    pub const SERVER_METRICS: u8 = 0x05;
    /// Orderly goodbye; the server closes after reading it.
    pub const BYE: u8 = 0x06;
    /// v3: validate a statement and register it under a server-side id.
    pub const PREPARE: u8 = 0x07;
    /// v3: execute a previously prepared statement id with parameters.
    pub const EXECUTE_PREPARED: u8 = 0x08;
    /// v3: forget a prepared statement id.
    pub const CLOSE_PREPARED: u8 = 0x09;
    /// v6: become a replication subscriber, resuming at `(generation,
    /// offset)`; the connection switches to the SNAPSHOT_CHUNK /
    /// WAL_CHUNK streaming dialect.
    pub const SUBSCRIBE: u8 = 0x0A;
    /// v6: a subscriber's progress report — the newest primary commit
    /// sequence fully applied on the replica.
    pub const REPL_ACK: u8 = 0x0B;
    /// v6: admin order to a replica — stop following the primary and
    /// start accepting writes (failover).
    pub const PROMOTE: u8 = 0x0C;
}

/// Server → client frame tags.
pub mod resp {
    /// Handshake accepted: negotiated version + banner.
    pub const HELLO_OK: u8 = 0x81;
    /// Typed error (see [`super::encode_error`]); terminates the exchange.
    pub const ERROR: u8 = 0x82;
    /// Result-set header: column names + kind bytes.
    pub const ROWS_HEADER: u8 = 0x83;
    /// One batch of rows; repeated until [`ROWS_DONE`].
    pub const ROW_BATCH: u8 = 0x84;
    /// End of the result set.
    pub const ROWS_DONE: u8 = 0x85;
    /// Affected-row count of INSERT/UPDATE/DELETE.
    pub const AFFECTED: u8 = 0x86;
    /// DDL (or SET_NOW) completed.
    pub const DONE: u8 = 0x87;
    /// A metrics snapshot (answer to SESSION_STATS / SERVER_METRICS).
    pub const METRICS: u8 = 0x88;
    /// The server is at its connection limit; sent instead of HELLO_OK.
    pub const BUSY: u8 = 0x89;
    /// v3: a PREPARE succeeded; body carries the statement id.
    pub const PREPARED_OK: u8 = 0x8A;
    /// v6: one piece of a checkpoint snapshot, re-seeding a subscriber
    /// whose log position was checkpointed away.
    pub const SNAPSHOT_CHUNK: u8 = 0x8B;
    /// v6: raw framed WAL bytes from `(generation, offset)`, cut at a
    /// record-frame boundary, plus the durable-commit watermark reached.
    pub const WAL_CHUNK: u8 = 0x8C;
}

/// Value/column kind bytes. Columns of any unlisted UDT degrade to
/// [`kind::OTHER`] and travel as display text.
pub mod kind {
    pub const NULL: u8 = 0;
    pub const BOOL: u8 = 1;
    pub const INT: u8 = 2;
    pub const FLOAT: u8 = 3;
    pub const STR: u8 = 4;
    pub const CHRONON: u8 = 5;
    pub const SPAN: u8 = 6;
    pub const INSTANT: u8 = 7;
    pub const PERIOD: u8 = 8;
    pub const ELEMENT: u8 = 9;
    pub const OTHER: u8 = 10;
}

// ---------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------

/// Writes one frame. The caller flushes (or relies on TCP) as it sees fit.
pub fn write_frame(w: &mut impl Write, tag: u8, body: &[u8]) -> io::Result<()> {
    let len = body.len() + 1;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame, returning `(tag, body)`.
///
/// * `UnexpectedEof` before the first length byte means the peer closed
///   the stream at a frame boundary (an orderly hangup);
/// * `InvalidData` means the stream is malformed (zero/oversized length)
///   and must be abandoned.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mut body = vec![0u8; len - 1];
    r.read_exact(&mut body)?;
    Ok((tag[0], body))
}

/// Incremental, nonblocking-friendly frame decoder: feed it whatever
/// byte runs the socket yields — split mid-length-prefix, mid-body, or
/// with several frames coalesced into one read — and pull complete
/// frames out as they materialize. The reactor in `tip-server` and the
/// multiplexed `netload` driver both sit on top of this.
///
/// The grammar matches [`read_frame`] exactly: a zero or oversized
/// length prefix poisons the stream (the error is sticky; the
/// connection must be abandoned).
#[derive(Debug, Default)]
pub struct FrameAccumulator {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames.
    pos: usize,
    poisoned: bool,
}

impl FrameAccumulator {
    pub fn new() -> FrameAccumulator {
        FrameAccumulator::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: reclaim consumed space once it dominates, so
        // a long-lived connection doesn't grow its buffer forever.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pulls the next complete frame, if one is buffered.
    ///
    /// * `Ok(Some((tag, body)))` — a whole frame was available;
    /// * `Ok(None)` — more bytes are needed;
    /// * `Err(why)` — the stream is malformed (sticky).
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, String> {
        if self.poisoned {
            return Err("frame stream already poisoned".to_string());
        }
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let len4: [u8; 4] = self.buf[self.pos..self.pos + 4]
            .try_into()
            .expect("4-byte slice");
        let len = u32::from_le_bytes(len4) as usize;
        if len == 0 || len > MAX_FRAME {
            self.poisoned = true;
            return Err(format!("frame length {len} outside 1..={MAX_FRAME}"));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let tag = self.buf[self.pos + 4];
        let body = self.buf[self.pos + 5..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some((tag, body)))
    }

    /// `true` while bytes of an incomplete frame sit in the buffer — a
    /// peer that stalls in this state is mid-frame, not idle.
    pub fn has_partial(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Bytes currently buffered and not yet consumed by a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes the accumulator, returning the unparsed tail — used
    /// when a connection is handed from the reactor to a dedicated
    /// thread (replication subscribers) mid-stream.
    pub fn into_residual(self) -> Vec<u8> {
        self.buf[self.pos..].to_vec()
    }
}

// ---------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------

fn malformed(what: impl std::fmt::Display) -> DbError {
    DbError::unavailable(format!("protocol error: {what}"))
}

fn need(buf: &&[u8], n: usize, what: &str) -> DbResult<()> {
    if buf.remaining() < n {
        Err(malformed(format!("truncated {what}")))
    } else {
        Ok(())
    }
}

fn get_str(buf: &mut &[u8], what: &str) -> DbResult<String> {
    binary::decode_str(buf).map_err(|e| malformed(format!("bad string in {what}: {e}")))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    binary::encode_str(s, out);
}

/// Fails unless the whole body was consumed — trailing garbage is as
/// malformed as a truncated body.
fn expect_empty(buf: &[u8], what: &str) -> DbResult<()> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(malformed(format!(
            "{} trailing bytes after {what}",
            buf.len()
        )))
    }
}

// ---------------------------------------------------------------------
// HELLO / HELLO_OK
// ---------------------------------------------------------------------

/// The client's opening frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    pub version: u16,
    /// Per-connection NOW override (Unix seconds), applied before the
    /// first statement runs.
    pub now_unix: Option<i64>,
}

pub fn encode_hello(h: &Hello) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.put_u32_le(MAGIC);
    out.put_u16_le(h.version);
    match h.now_unix {
        Some(now) => {
            out.put_u8(1);
            out.put_i64_le(now);
        }
        None => out.put_u8(0),
    }
    out
}

pub fn decode_hello(mut buf: &[u8]) -> DbResult<Hello> {
    need(&buf, 7, "HELLO")?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(malformed(format!("bad magic {magic:#010x}")));
    }
    let version = buf.get_u16_le();
    let now_unix = match buf.get_u8() {
        0 => None,
        1 => {
            need(&buf, 8, "HELLO now override")?;
            Some(buf.get_i64_le())
        }
        f => return Err(malformed(format!("bad HELLO now flag {f}"))),
    };
    expect_empty(buf, "HELLO")?;
    Ok(Hello { version, now_unix })
}

pub fn encode_hello_ok(version: u16, banner: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + banner.len());
    out.put_u16_le(version);
    put_str(&mut out, banner);
    out
}

pub fn decode_hello_ok(mut buf: &[u8]) -> DbResult<(u16, String)> {
    need(&buf, 2, "HELLO_OK")?;
    let version = buf.get_u16_le();
    let banner = get_str(&mut buf, "HELLO_OK")?;
    expect_empty(buf, "HELLO_OK")?;
    Ok((version, banner))
}

// ---------------------------------------------------------------------
// SET_NOW
// ---------------------------------------------------------------------

pub fn encode_set_now(now_unix: Option<i64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    match now_unix {
        Some(now) => {
            out.put_u8(1);
            out.put_i64_le(now);
        }
        None => out.put_u8(0),
    }
    out
}

pub fn decode_set_now(mut buf: &[u8]) -> DbResult<Option<i64>> {
    need(&buf, 1, "SET_NOW")?;
    let now = match buf.get_u8() {
        0 => None,
        1 => {
            need(&buf, 8, "SET_NOW")?;
            Some(buf.get_i64_le())
        }
        f => return Err(malformed(format!("bad SET_NOW flag {f}"))),
    };
    expect_empty(buf, "SET_NOW")?;
    Ok(now)
}

// ---------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------

/// Encodes one value by kind byte. `display` renders UDTs the protocol
/// has no native codec for (server side: the catalog's text-output
/// function).
pub fn encode_value(v: &Value, display: &dyn Fn(&Value) -> String, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.put_u8(kind::NULL),
        Value::Bool(b) => {
            out.put_u8(kind::BOOL);
            binary::encode_bool(*b, out);
        }
        Value::Int(i) => {
            out.put_u8(kind::INT);
            binary::encode_i64(*i, out);
        }
        Value::Float(f) => {
            out.put_u8(kind::FLOAT);
            binary::encode_f64(*f, out);
        }
        Value::Str(s) => {
            out.put_u8(kind::STR);
            put_str(out, s);
        }
        Value::Udt(_) => {
            if let Some(c) = as_chronon(v) {
                out.put_u8(kind::CHRONON);
                binary::encode_chronon(c, out);
            } else if let Some(s) = as_span(v) {
                out.put_u8(kind::SPAN);
                binary::encode_span(s, out);
            } else if let Some(i) = as_instant(v) {
                out.put_u8(kind::INSTANT);
                binary::encode_instant(i, out);
            } else if let Some(p) = as_period(v) {
                out.put_u8(kind::PERIOD);
                binary::encode_period(p, out);
            } else if let Some(e) = as_element(v) {
                out.put_u8(kind::ELEMENT);
                binary::encode_element(e, out);
            } else {
                out.put_u8(kind::OTHER);
                put_str(out, &display(v));
            }
        }
    }
}

/// Decodes one value, rebuilding TIP UDTs against the receiver's own
/// type registry (`types`); [`kind::OTHER`] arrives as its text form.
pub fn decode_value(buf: &mut &[u8], types: &TipTypes) -> DbResult<Value> {
    need(buf, 1, "value")?;
    let k = buf.get_u8();
    let codec = |e: tip_core::TemporalError| malformed(format!("bad value payload: {e}"));
    Ok(match k {
        kind::NULL => Value::Null,
        kind::BOOL => Value::Bool(binary::decode_bool(buf).map_err(codec)?),
        kind::INT => Value::Int(binary::decode_i64(buf).map_err(codec)?),
        kind::FLOAT => Value::Float(binary::decode_f64(buf).map_err(codec)?),
        kind::STR => Value::Str(get_str(buf, "value")?),
        kind::CHRONON => types.chronon(binary::decode_chronon(buf).map_err(codec)?),
        kind::SPAN => types.span(binary::decode_span(buf).map_err(codec)?),
        kind::INSTANT => types.instant(binary::decode_instant(buf).map_err(codec)?),
        kind::PERIOD => types.period(binary::decode_period(buf).map_err(codec)?),
        kind::ELEMENT => types.element(binary::decode_element(buf).map_err(codec)?),
        kind::OTHER => Value::Str(get_str(buf, "value")?),
        other => return Err(malformed(format!("unknown value kind {other}"))),
    })
}

/// The kind byte a column of `dt` travels as.
pub fn kind_of_type(dt: DataType, types: &TipTypes) -> u8 {
    match dt {
        DataType::Null => kind::NULL,
        DataType::Bool => kind::BOOL,
        DataType::Int => kind::INT,
        DataType::Float => kind::FLOAT,
        DataType::Str => kind::STR,
        DataType::Udt(id) if id == types.chronon => kind::CHRONON,
        DataType::Udt(id) if id == types.span => kind::SPAN,
        DataType::Udt(id) if id == types.instant => kind::INSTANT,
        DataType::Udt(id) if id == types.period => kind::PERIOD,
        DataType::Udt(id) if id == types.element => kind::ELEMENT,
        DataType::Udt(_) => kind::OTHER,
    }
}

/// The receiver-local column type for a kind byte. [`kind::OTHER`]
/// becomes `Str` — those cells arrive as display text.
pub fn type_of_kind(k: u8, types: &TipTypes) -> DbResult<DataType> {
    Ok(match k {
        kind::NULL => DataType::Null,
        kind::BOOL => DataType::Bool,
        kind::INT => DataType::Int,
        kind::FLOAT => DataType::Float,
        kind::STR | kind::OTHER => DataType::Str,
        kind::CHRONON => DataType::Udt(types.chronon),
        kind::SPAN => DataType::Udt(types.span),
        kind::INSTANT => DataType::Udt(types.instant),
        kind::PERIOD => DataType::Udt(types.period),
        kind::ELEMENT => DataType::Udt(types.element),
        other => return Err(malformed(format!("unknown column kind {other}"))),
    })
}

// ---------------------------------------------------------------------
// STMT
// ---------------------------------------------------------------------

/// A decoded statement request.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub sql: String,
    pub params: Vec<(String, Value)>,
}

pub fn encode_stmt(
    sql: &str,
    params: &[(&str, Value)],
    display: &dyn Fn(&Value) -> String,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + sql.len());
    put_str(&mut out, sql);
    out.put_u16_le(params.len() as u16);
    for (name, value) in params {
        put_str(&mut out, name);
        encode_value(value, display, &mut out);
    }
    out
}

pub fn decode_stmt(mut buf: &[u8], types: &TipTypes) -> DbResult<Stmt> {
    let sql = get_str(&mut buf, "STMT")?;
    need(&buf, 2, "STMT param count")?;
    let n = buf.get_u16_le() as usize;
    let mut params = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let name = get_str(&mut buf, "STMT param name")?;
        let value = decode_value(&mut buf, types)?;
        params.push((name, value));
    }
    expect_empty(buf, "STMT")?;
    Ok(Stmt { sql, params })
}

// ---------------------------------------------------------------------
// Prepared statements (v3)
// ---------------------------------------------------------------------

/// Body of a PREPARE request: the statement text to validate and pin.
pub fn encode_prepare(sql: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + sql.len());
    put_str(&mut out, sql);
    out
}

pub fn decode_prepare(mut buf: &[u8]) -> DbResult<String> {
    let sql = get_str(&mut buf, "PREPARE")?;
    expect_empty(buf, "PREPARE")?;
    Ok(sql)
}

/// Body of a PREPARED_OK reply: the server-assigned statement id.
pub fn encode_prepared_ok(id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.put_u64_le(id);
    out
}

pub fn decode_prepared_ok(mut buf: &[u8]) -> DbResult<u64> {
    need(&buf, 8, "PREPARED_OK")?;
    let id = buf.get_u64_le();
    expect_empty(buf, "PREPARED_OK")?;
    Ok(id)
}

/// Body of an EXECUTE_PREPARED request: statement id plus the same
/// parameter list shape STMT uses.
pub fn encode_execute_prepared(
    id: u64,
    params: &[(&str, Value)],
    display: &dyn Fn(&Value) -> String,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.put_u64_le(id);
    out.put_u16_le(params.len() as u16);
    for (name, value) in params {
        put_str(&mut out, name);
        encode_value(value, display, &mut out);
    }
    out
}

pub fn decode_execute_prepared(
    mut buf: &[u8],
    types: &TipTypes,
) -> DbResult<(u64, Vec<(String, Value)>)> {
    need(&buf, 8, "EXECUTE_PREPARED")?;
    let id = buf.get_u64_le();
    need(&buf, 2, "EXECUTE_PREPARED param count")?;
    let n = buf.get_u16_le() as usize;
    let mut params = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let name = get_str(&mut buf, "EXECUTE_PREPARED param name")?;
        let value = decode_value(&mut buf, types)?;
        params.push((name, value));
    }
    expect_empty(buf, "EXECUTE_PREPARED")?;
    Ok((id, params))
}

/// Body of a CLOSE_PREPARED request: the statement id to forget.
pub fn encode_close_prepared(id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.put_u64_le(id);
    out
}

pub fn decode_close_prepared(mut buf: &[u8]) -> DbResult<u64> {
    need(&buf, 8, "CLOSE_PREPARED")?;
    let id = buf.get_u64_le();
    expect_empty(buf, "CLOSE_PREPARED")?;
    Ok(id)
}

// ---------------------------------------------------------------------
// Result sets
// ---------------------------------------------------------------------

pub fn encode_rows_header(columns: &[(String, DataType)], types: &TipTypes) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + columns.len() * 16);
    out.put_u16_le(columns.len() as u16);
    for (name, dt) in columns {
        put_str(&mut out, name);
        out.put_u8(kind_of_type(*dt, types));
    }
    out
}

pub fn decode_rows_header(mut buf: &[u8], types: &TipTypes) -> DbResult<Vec<(String, DataType)>> {
    need(&buf, 2, "ROWS_HEADER")?;
    let n = buf.get_u16_le() as usize;
    let mut columns = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        let name = get_str(&mut buf, "ROWS_HEADER column")?;
        need(&buf, 1, "ROWS_HEADER kind")?;
        columns.push((name, type_of_kind(buf.get_u8(), types)?));
    }
    expect_empty(buf, "ROWS_HEADER")?;
    Ok(columns)
}

pub fn encode_row_batch(
    rows: &[minidb::Row],
    display: &dyn Fn(&Value) -> String,
    types: &TipTypes,
) -> Vec<u8> {
    let _ = types; // row cells carry their own kind bytes
    let mut out = Vec::with_capacity(4 + rows.len() * 32);
    out.put_u16_le(rows.len() as u16);
    for row in rows {
        for cell in row {
            encode_value(cell, display, &mut out);
        }
    }
    out
}

/// Outcome of [`RowBatchBuilder::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowPush {
    /// The row was appended to the batch.
    Added,
    /// Appending would exceed the byte budget; the batch is unchanged.
    /// Flush it and push the row into a fresh builder.
    BatchFull,
    /// The encoded row alone exceeds the budget: it cannot travel in
    /// any frame. The batch is unchanged; the carried size is the row's
    /// encoded length in bytes.
    RowTooBig(usize),
}

/// Incrementally assembles a ROW_BATCH body under a byte budget, so a
/// sender can split arbitrarily large result sets across frames instead
/// of overrunning [`MAX_FRAME`]. The leading `u16` row count is
/// reserved up front and patched when the batch is finished.
pub struct RowBatchBuilder {
    buf: Vec<u8>,
    rows: u16,
    budget: usize,
}

impl RowBatchBuilder {
    /// `budget` caps the finished body length in bytes. The caller is
    /// responsible for leaving slack below [`MAX_FRAME`] for the frame
    /// length prefix and tag.
    pub fn new(budget: usize) -> RowBatchBuilder {
        let mut buf = Vec::with_capacity(1024);
        buf.put_u16_le(0); // row count, patched in finish()
        RowBatchBuilder {
            buf,
            rows: 0,
            budget,
        }
    }

    /// Rows currently in the batch.
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// `true` when no row has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Tries to append one row, leaving the batch untouched when it
    /// doesn't fit (see [`RowPush`]).
    pub fn push(&mut self, row: &[Value], display: &dyn Fn(&Value) -> String) -> RowPush {
        let mark = self.buf.len();
        for cell in row {
            encode_value(cell, display, &mut self.buf);
        }
        let encoded = self.buf.len() - mark;
        if self.buf.len() > self.budget || self.rows == u16::MAX {
            self.buf.truncate(mark);
            return if self.rows == 0 {
                RowPush::RowTooBig(encoded)
            } else {
                RowPush::BatchFull
            };
        }
        self.rows += 1;
        RowPush::Added
    }

    /// Seals the batch into a ROW_BATCH body.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[..2].copy_from_slice(&self.rows.to_le_bytes());
        self.buf
    }
}

pub fn decode_row_batch(
    mut buf: &[u8],
    ncols: usize,
    types: &TipTypes,
) -> DbResult<Vec<minidb::Row>> {
    need(&buf, 2, "ROW_BATCH")?;
    let n = buf.get_u16_le() as usize;
    let mut rows = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(decode_value(&mut buf, types)?);
        }
        rows.push(row);
    }
    expect_empty(buf, "ROW_BATCH")?;
    Ok(rows)
}

pub fn encode_affected(n: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.put_u64_le(n);
    out
}

pub fn decode_affected(mut buf: &[u8]) -> DbResult<u64> {
    need(&buf, 8, "AFFECTED")?;
    let n = buf.get_u64_le();
    expect_empty(buf, "AFFECTED")?;
    Ok(n)
}

// ---------------------------------------------------------------------
// Replication (v6)
// ---------------------------------------------------------------------

/// Body of a SUBSCRIBE request: the log position the replica wants to
/// resume from. A generation the primary no longer has (including the
/// fresh replica's `0`) makes the primary re-seed the subscriber with
/// SNAPSHOT_CHUNK frames first.
pub fn encode_subscribe(generation: u64, offset: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.put_u64_le(generation);
    out.put_u64_le(offset);
    out
}

pub fn decode_subscribe(mut buf: &[u8]) -> DbResult<(u64, u64)> {
    need(&buf, 16, "SUBSCRIBE")?;
    let generation = buf.get_u64_le();
    let offset = buf.get_u64_le();
    expect_empty(buf, "SUBSCRIBE")?;
    Ok((generation, offset))
}

/// Body of a REPL_ACK: the position the replica has fully applied plus
/// the newest primary commit sequence that position covers (the
/// watermark the primary's lag gauge and semi-sync waits key on).
pub fn encode_repl_ack(generation: u64, offset: u64, watermark: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    out.put_u64_le(generation);
    out.put_u64_le(offset);
    out.put_u64_le(watermark);
    out
}

pub fn decode_repl_ack(mut buf: &[u8]) -> DbResult<(u64, u64, u64)> {
    need(&buf, 24, "REPL_ACK")?;
    let generation = buf.get_u64_le();
    let offset = buf.get_u64_le();
    let watermark = buf.get_u64_le();
    expect_empty(buf, "REPL_ACK")?;
    Ok((generation, offset, watermark))
}

/// Body of a SNAPSHOT_CHUNK: `generation`, a last-chunk flag, and a
/// piece of the checkpoint payload. The receiver concatenates pieces in
/// order and loads the whole snapshot when `is_last` arrives.
pub fn encode_snapshot_chunk(generation: u64, is_last: bool, bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + bytes.len());
    out.put_u64_le(generation);
    out.put_u8(is_last as u8);
    out.put_slice(bytes);
    out
}

pub fn decode_snapshot_chunk(mut buf: &[u8]) -> DbResult<(u64, bool, Vec<u8>)> {
    need(&buf, 9, "SNAPSHOT_CHUNK")?;
    let generation = buf.get_u64_le();
    let is_last = match buf.get_u8() {
        0 => false,
        1 => true,
        f => return Err(malformed(format!("bad SNAPSHOT_CHUNK last flag {f}"))),
    };
    Ok((generation, is_last, buf.to_vec()))
}

/// Body of a WAL_CHUNK: the log position the bytes start at, the
/// durable-commit watermark the chunk reaches (`0` when the cut landed
/// short of the durable frontier — the receiver must not ack a sequence
/// for it), and the raw framed record bytes. Empty bytes are a
/// heartbeat: the subscriber is caught up at `watermark`.
pub fn encode_wal_chunk(generation: u64, offset: u64, watermark: u64, bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + bytes.len());
    out.put_u64_le(generation);
    out.put_u64_le(offset);
    out.put_u64_le(watermark);
    out.put_slice(bytes);
    out
}

pub fn decode_wal_chunk(mut buf: &[u8]) -> DbResult<(u64, u64, u64, Vec<u8>)> {
    need(&buf, 24, "WAL_CHUNK")?;
    let generation = buf.get_u64_le();
    let offset = buf.get_u64_le();
    let watermark = buf.get_u64_le();
    Ok((generation, offset, watermark, buf.to_vec()))
}

// ---------------------------------------------------------------------
// BUSY
// ---------------------------------------------------------------------

/// Body of a BUSY reject: one human-readable reason string.
pub fn encode_busy(message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + message.len());
    put_str(&mut out, message);
    out
}

pub fn decode_busy(mut buf: &[u8]) -> DbResult<String> {
    let message = get_str(&mut buf, "BUSY")?;
    expect_empty(buf, "BUSY")?;
    Ok(message)
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Catalog-object kinds that survive the wire with their identity; any
/// other string decodes as `"object"`. (`DbError::NotFound` carries a
/// `&'static str`, so the decoder interns against this table.)
const KNOWN_KINDS: &[&str] = &[
    "table",
    "table or view",
    "column",
    "view",
    "index",
    "type",
    "function",
    "function overload",
    "aggregate",
    "aggregate overload",
    "operator",
    "operator overload",
    "cast",
    "parameter",
    "blade",
    "prepared statement",
];

fn intern_kind(s: &str) -> &'static str {
    KNOWN_KINDS
        .iter()
        .find(|k| **k == s)
        .copied()
        .unwrap_or("object")
}

/// Encodes a typed error frame: `u8 code, u64 aux, str a, str b`.
pub fn encode_error(e: &DbError) -> Vec<u8> {
    let (code, aux, a, b): (u8, u64, &str, &str) = match e {
        DbError::Syntax { pos, message } => (1, *pos as u64, message, ""),
        DbError::NotFound { kind, name } => (2, 0, kind, name),
        DbError::AlreadyExists { kind, name } => (3, 0, kind, name),
        DbError::Binding { message } => (4, 0, message, ""),
        DbError::NoOverload { what } => (5, 0, what, ""),
        DbError::AmbiguousOverload { what } => (6, 0, what, ""),
        DbError::Type { message } => (7, 0, message, ""),
        DbError::Execution { message } => (8, 0, message, ""),
        DbError::MissingParam { name } => (9, 0, name, ""),
        DbError::Constraint { message } => (10, 0, message, ""),
        DbError::Persist { message } => (11, 0, message, ""),
        DbError::Unavailable { message } => (12, 0, message, ""),
        DbError::ReadOnly { primary } => (13, 0, primary, ""),
    };
    let mut out = Vec::with_capacity(16 + a.len() + b.len());
    out.put_u8(code);
    out.put_u64_le(aux);
    put_str(&mut out, a);
    put_str(&mut out, b);
    out
}

/// Encodes an error for a peer at `version`. Code 13 (`ReadOnly`) is a
/// v6 addition: older peers would reject the frame outright, so for
/// them it degrades to `Unavailable` with the same routing hint in the
/// message text.
pub fn encode_error_for(e: &DbError, version: u16) -> Vec<u8> {
    if version < 6 {
        if let DbError::ReadOnly { .. } = e {
            return encode_error(&DbError::unavailable(e.to_string()));
        }
    }
    encode_error(e)
}

/// Decodes an error frame back into the same [`DbError`] variant.
pub fn decode_error(mut buf: &[u8]) -> DbResult<DbError> {
    need(&buf, 9, "ERROR")?;
    let code = buf.get_u8();
    let aux = buf.get_u64_le();
    let a = get_str(&mut buf, "ERROR")?;
    let b = get_str(&mut buf, "ERROR")?;
    expect_empty(buf, "ERROR")?;
    Ok(match code {
        1 => DbError::Syntax {
            pos: aux as usize,
            message: a,
        },
        2 => DbError::NotFound {
            kind: intern_kind(&a),
            name: b,
        },
        3 => DbError::AlreadyExists {
            kind: intern_kind(&a),
            name: b,
        },
        4 => DbError::Binding { message: a },
        5 => DbError::NoOverload { what: a },
        6 => DbError::AmbiguousOverload { what: a },
        7 => DbError::Type { message: a },
        8 => DbError::Execution { message: a },
        9 => DbError::MissingParam { name: a },
        10 => DbError::Constraint { message: a },
        11 => DbError::Persist { message: a },
        12 => DbError::Unavailable { message: a },
        13 => DbError::ReadOnly { primary: a },
        other => return Err(malformed(format!("unknown error code {other}"))),
    })
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// Counter fields carried by a METRICS frame at `version`: v2 stopped
/// after `tables_pinned`; v3 appended the four plan-cache counters; v4
/// appended the six WAL counters; v5 appended the two MVCC gauges and
/// three transaction counters; v6 appended the five replication fields;
/// v7 appended the five buffer-pool fields.
fn metric_field_count(version: u16) -> usize {
    if version >= 7 {
        44
    } else if version >= 6 {
        39
    } else if version >= 5 {
        34
    } else if version >= 4 {
        29
    } else if version >= 3 {
        23
    } else {
        19
    }
}

pub fn encode_metrics(m: &MetricsSnapshot) -> Vec<u8> {
    encode_metrics_for(m, VERSION)
}

/// Encodes a METRICS body in the layout `version` peers expect (a v2
/// peer rejects trailing bytes, so the frame must shrink with it).
pub fn encode_metrics_for(m: &MetricsSnapshot, version: u16) -> Vec<u8> {
    let fields = [
        m.selects,
        m.inserts,
        m.updates,
        m.deletes,
        m.ddl,
        m.explains,
        m.errors,
        m.full_scans,
        m.index_eq_scans,
        m.index_range_scans,
        m.index_overlap_scans,
        m.rows_scanned,
        m.rows_returned,
        m.rows_affected,
        m.select_nanos,
        m.dml_nanos,
        m.slow_queries,
        m.lock_wait_nanos,
        m.tables_pinned,
        m.plan_cache_hits,
        m.plan_cache_misses,
        m.plan_cache_invalidations,
        m.plan_cache_entries,
        m.wal_appends,
        m.wal_bytes,
        m.wal_fsyncs,
        m.wal_group_commit_batch,
        m.wal_replayed,
        m.wal_checkpoints,
        m.mvcc_versions,
        m.mvcc_snapshots_pinned,
        m.txn_begun,
        m.txn_committed,
        m.txn_rolled_back,
        m.repl_chunks_shipped,
        m.repl_bytes_shipped,
        m.repl_apply_lag_seq,
        m.repl_reconnects,
        m.repl_last_seq,
        m.bufpool_hits,
        m.bufpool_misses,
        m.bufpool_evictions,
        m.bufpool_writebacks,
        m.bufpool_pages,
    ];
    let n = metric_field_count(version);
    let mut out = Vec::with_capacity((n + 1) * 8 + LATENCY_BUCKETS * 8);
    for v in &fields[..n] {
        out.put_u64_le(*v);
    }
    out.put_u32_le(LATENCY_BUCKETS as u32);
    for b in &m.latency_buckets {
        out.put_u64_le(*b);
    }
    out
}

pub fn decode_metrics(buf: &[u8]) -> DbResult<MetricsSnapshot> {
    decode_metrics_for(buf, VERSION)
}

/// Decodes a METRICS body in the layout `version` peers send; missing
/// (pre-v3) plan-cache counters stay zero.
pub fn decode_metrics_for(mut buf: &[u8], version: u16) -> DbResult<MetricsSnapshot> {
    let n = metric_field_count(version);
    need(&buf, n * 8 + 4, "METRICS")?;
    let mut m = MetricsSnapshot::default();
    let mut fields = [
        &mut m.selects,
        &mut m.inserts,
        &mut m.updates,
        &mut m.deletes,
        &mut m.ddl,
        &mut m.explains,
        &mut m.errors,
        &mut m.full_scans,
        &mut m.index_eq_scans,
        &mut m.index_range_scans,
        &mut m.index_overlap_scans,
        &mut m.rows_scanned,
        &mut m.rows_returned,
        &mut m.rows_affected,
        &mut m.select_nanos,
        &mut m.dml_nanos,
        &mut m.slow_queries,
        &mut m.lock_wait_nanos,
        &mut m.tables_pinned,
        &mut m.plan_cache_hits,
        &mut m.plan_cache_misses,
        &mut m.plan_cache_invalidations,
        &mut m.plan_cache_entries,
        &mut m.wal_appends,
        &mut m.wal_bytes,
        &mut m.wal_fsyncs,
        &mut m.wal_group_commit_batch,
        &mut m.wal_replayed,
        &mut m.wal_checkpoints,
        &mut m.mvcc_versions,
        &mut m.mvcc_snapshots_pinned,
        &mut m.txn_begun,
        &mut m.txn_committed,
        &mut m.txn_rolled_back,
        &mut m.repl_chunks_shipped,
        &mut m.repl_bytes_shipped,
        &mut m.repl_apply_lag_seq,
        &mut m.repl_reconnects,
        &mut m.repl_last_seq,
        &mut m.bufpool_hits,
        &mut m.bufpool_misses,
        &mut m.bufpool_evictions,
        &mut m.bufpool_writebacks,
        &mut m.bufpool_pages,
    ];
    for field in &mut fields[..n] {
        **field = buf.get_u64_le();
    }
    let nbuckets = buf.get_u32_le() as usize;
    if nbuckets != LATENCY_BUCKETS {
        return Err(malformed(format!(
            "peer reports {nbuckets} latency buckets, this build has {LATENCY_BUCKETS}"
        )));
    }
    need(&buf, nbuckets * 8, "METRICS buckets")?;
    for b in m.latency_buckets.iter_mut() {
        *b = buf.get_u64_le();
    }
    expect_empty(buf, "METRICS")?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::Database;
    use tip_blade::TipBlade;
    use tip_core::{Chronon, Element, Instant, Period, Span};

    fn registry() -> (std::sync::Arc<Database>, TipTypes) {
        let db = Database::new();
        db.install_blade(&TipBlade).unwrap();
        let types = db.with_catalog(TipTypes::from_catalog).unwrap();
        (db, types)
    }

    fn no_display(_: &Value) -> String {
        panic!("display should not be needed for native kinds")
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, req::STMT, b"hello").unwrap();
        let (tag, body) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(tag, req::STMT);
        assert_eq!(body, b"hello");
    }

    #[test]
    fn frame_rejects_bad_lengths() {
        // Zero length.
        let z = 0u32.to_le_bytes().to_vec();
        assert_eq!(
            read_frame(&mut z.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Oversized length.
        let big = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        assert_eq!(
            read_frame(&mut big.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Clean close at a frame boundary.
        assert_eq!(
            read_frame(&mut [].as_slice()).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    /// Three frames of varying sizes for reassembly tests.
    fn sample_frames() -> (Vec<u8>, Vec<(u8, Vec<u8>)>) {
        let frames = vec![
            (req::HELLO, b"h".to_vec()),
            (req::STMT, vec![0xAB; 300]),
            (req::BYE, Vec::new()),
        ];
        let mut wire = Vec::new();
        for (tag, body) in &frames {
            write_frame(&mut wire, *tag, body).unwrap();
        }
        (wire, frames)
    }

    #[test]
    fn accumulator_reassembles_at_every_byte_boundary() {
        let (wire, frames) = sample_frames();
        // Every split point: bytes [0, split) then [split, len).
        for split in 0..=wire.len() {
            let mut acc = FrameAccumulator::new();
            acc.extend(&wire[..split]);
            let mut got = Vec::new();
            while let Some(f) = acc.next_frame().unwrap() {
                got.push(f);
            }
            acc.extend(&wire[split..]);
            while let Some(f) = acc.next_frame().unwrap() {
                got.push(f);
            }
            assert_eq!(got, frames, "split at byte {split}");
            assert!(!acc.has_partial());
        }
    }

    #[test]
    fn accumulator_handles_byte_at_a_time_and_coalesced() {
        let (wire, frames) = sample_frames();
        // One byte per extend.
        let mut acc = FrameAccumulator::new();
        let mut got = Vec::new();
        for b in &wire {
            acc.extend(std::slice::from_ref(b));
            while let Some(f) = acc.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        // All frames coalesced into one extend.
        let mut acc = FrameAccumulator::new();
        acc.extend(&wire);
        let mut got = Vec::new();
        while let Some(f) = acc.next_frame().unwrap() {
            got.push(f);
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn accumulator_poisons_on_bad_length() {
        for bad in [0u32, (MAX_FRAME + 1) as u32] {
            let mut acc = FrameAccumulator::new();
            acc.extend(&bad.to_le_bytes());
            assert!(acc.next_frame().is_err());
            // Sticky: even appending a valid frame cannot revive it.
            let mut good = Vec::new();
            write_frame(&mut good, req::BYE, &[]).unwrap();
            acc.extend(&good);
            assert!(acc.next_frame().is_err());
        }
    }

    #[test]
    fn accumulator_residual_carries_unparsed_tail() {
        let (wire, _) = sample_frames();
        let mut acc = FrameAccumulator::new();
        acc.extend(&wire[..7]);
        let first = acc.next_frame().unwrap().unwrap();
        assert_eq!(first.0, req::HELLO);
        assert_eq!(acc.into_residual(), wire[6..7].to_vec());
    }

    #[test]
    fn hello_round_trip() {
        for now in [None, Some(946_684_800i64), Some(-5)] {
            let h = Hello {
                version: VERSION,
                now_unix: now,
            };
            assert_eq!(decode_hello(&encode_hello(&h)).unwrap(), h);
        }
        assert!(decode_hello(b"nope").is_err());
        let mut bad = encode_hello(&Hello {
            version: 1,
            now_unix: None,
        });
        bad[0] ^= 0xff; // corrupt the magic
        assert!(decode_hello(&bad).is_err());
    }

    #[test]
    fn value_round_trips_every_kind() {
        let (_db, types) = registry();
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Str("Mr.Showbiz".into()),
            types.chronon(Chronon::from_ymd(1999, 10, 1).unwrap()),
            types.span(Span::from_hours(8)),
            types.instant(Instant::NowRelative(Span::from_days(-7))),
            types.period(Period::fixed(
                Chronon::from_ymd(1999, 1, 1).unwrap(),
                Chronon::from_ymd(1999, 12, 31).unwrap(),
            )),
            types.element(Element::from_periods(vec![])),
        ];
        for v in &vals {
            let mut buf = Vec::new();
            encode_value(v, &no_display, &mut buf);
            let back = decode_value(&mut buf.as_slice(), &types).unwrap();
            // Compare through the engine's display-independent accessors.
            match v {
                Value::Udt(_) => {
                    assert_eq!(as_chronon(v), as_chronon(&back));
                    assert_eq!(as_span(v), as_span(&back));
                    assert_eq!(as_instant(v), as_instant(&back));
                    assert_eq!(as_period(v), as_period(&back));
                    assert_eq!(as_element(v), as_element(&back));
                }
                _ => assert_eq!(v, &back),
            }
        }
    }

    #[test]
    fn stmt_round_trip() {
        let (_db, types) = registry();
        let params: Vec<(&str, Value)> = vec![
            ("w", types.span(Span::from_days(14))),
            ("who", Value::Str("Mr.Showbiz".into())),
        ];
        let body = encode_stmt("SELECT * FROM rx WHERE f > :w", &params, &no_display);
        let stmt = decode_stmt(&body, &types).unwrap();
        assert_eq!(stmt.sql, "SELECT * FROM rx WHERE f > :w");
        assert_eq!(stmt.params.len(), 2);
        assert_eq!(as_span(&stmt.params[0].1), Some(Span::from_days(14)));
        // Truncation anywhere must error, never panic.
        for cut in 0..body.len() {
            assert!(decode_stmt(&body[..cut], &types).is_err());
        }
    }

    #[test]
    fn error_codes_round_trip() {
        let errors = vec![
            DbError::Syntax {
                pos: 7,
                message: "unexpected ')'".into(),
            },
            DbError::NotFound {
                kind: "table",
                name: "rx".into(),
            },
            DbError::AlreadyExists {
                kind: "index",
                name: "i".into(),
            },
            DbError::binding("x"),
            DbError::NoOverload {
                what: "f(Int)".into(),
            },
            DbError::AmbiguousOverload { what: "g".into() },
            DbError::type_err("t"),
            DbError::exec("e"),
            DbError::MissingParam { name: "w".into() },
            DbError::Constraint {
                message: "c".into(),
            },
            DbError::Persist {
                message: "p".into(),
            },
            DbError::unavailable("shutting down"),
            DbError::read_only("127.0.0.1:5432"),
        ];
        for e in &errors {
            assert_eq!(&decode_error(&encode_error(e)).unwrap(), e);
        }
        // Unknown kinds intern to "object" rather than leaking memory.
        let body = encode_error(&DbError::NotFound {
            kind: "table",
            name: "t".into(),
        });
        // Patch the kind string ("table" at offset 9+4) to something unknown.
        let mut patched = body.clone();
        patched[13..18].copy_from_slice(b"gizmo");
        match decode_error(&patched).unwrap() {
            DbError::NotFound { kind, .. } => assert_eq!(kind, "object"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn metrics_round_trip() {
        let mut m = MetricsSnapshot {
            selects: 3,
            rows_returned: 99,
            rows_affected: 12,
            dml_nanos: 4_000,
            lock_wait_nanos: 2_500,
            tables_pinned: 6,
            plan_cache_hits: 41,
            plan_cache_misses: 5,
            plan_cache_invalidations: 2,
            plan_cache_entries: 3,
            ..Default::default()
        };
        m.latency_buckets[0] = 1;
        m.latency_buckets[LATENCY_BUCKETS - 1] = 7;
        let back = decode_metrics(&encode_metrics(&m)).unwrap();
        assert_eq!(back, m);
        let body = encode_metrics(&m);
        for cut in 0..body.len() {
            assert!(decode_metrics(&body[..cut]).is_err());
        }
    }

    #[test]
    fn v2_metrics_layout_omits_plan_cache_fields() {
        let m = MetricsSnapshot {
            selects: 9,
            tables_pinned: 4,
            plan_cache_hits: 100,
            plan_cache_entries: 7,
            ..Default::default()
        };
        let v2 = encode_metrics_for(&m, 2);
        let v3 = encode_metrics_for(&m, 3);
        assert_eq!(v3.len() - v2.len(), 4 * 8, "v3 appends four u64s");
        // A v2 peer's decode accepts the narrow frame and leaves the
        // plan-cache counters zero...
        let back = decode_metrics_for(&v2, 2).unwrap();
        assert_eq!(back.selects, 9);
        assert_eq!(back.tables_pinned, 4);
        assert_eq!(back.plan_cache_hits, 0);
        // ...and rejects the wide one (trailing bytes), which is why the
        // server must shrink the frame to the negotiated version.
        assert!(decode_metrics_for(&v3, 2).is_err());
        assert!(decode_metrics_for(&v2, 3).is_err());
    }

    #[test]
    fn v3_metrics_layout_omits_wal_fields() {
        let m = MetricsSnapshot {
            selects: 9,
            plan_cache_hits: 100,
            wal_appends: 12,
            wal_fsyncs: 3,
            wal_checkpoints: 1,
            ..Default::default()
        };
        let v3 = encode_metrics_for(&m, 3);
        let v4 = encode_metrics_for(&m, 4);
        assert_eq!(v4.len() - v3.len(), 6 * 8, "v4 appends six u64s");
        // A v3 peer's decode accepts the narrow frame and leaves the WAL
        // counters zero...
        let back = decode_metrics_for(&v3, 3).unwrap();
        assert_eq!(back.plan_cache_hits, 100);
        assert_eq!(back.wal_appends, 0);
        // ...while a v4 round trip carries them whole.
        let back = decode_metrics_for(&v4, 4).unwrap();
        assert_eq!(back, m);
        // Cross-version frames are rejected in both directions.
        assert!(decode_metrics_for(&v4, 3).is_err());
        assert!(decode_metrics_for(&v3, 4).is_err());
    }

    #[test]
    fn v4_metrics_layout_omits_mvcc_and_txn_fields() {
        let m = MetricsSnapshot {
            selects: 9,
            wal_appends: 12,
            mvcc_versions: 5,
            mvcc_snapshots_pinned: 2,
            txn_begun: 7,
            txn_committed: 6,
            txn_rolled_back: 1,
            ..Default::default()
        };
        let v4 = encode_metrics_for(&m, 4);
        let v5 = encode_metrics_for(&m, 5);
        assert_eq!(v5.len() - v4.len(), 5 * 8, "v5 appends five u64s");
        // A v4 peer's decode accepts the narrow frame and leaves the
        // MVCC gauges and transaction counters zero...
        let back = decode_metrics_for(&v4, 4).unwrap();
        assert_eq!(back.wal_appends, 12);
        assert_eq!(back.mvcc_versions, 0);
        assert_eq!(back.txn_begun, 0);
        // ...while a v5 round trip carries them whole.
        let back = decode_metrics_for(&v5, 5).unwrap();
        assert_eq!(back, m);
        // Cross-version frames are rejected in both directions.
        assert!(decode_metrics_for(&v5, 4).is_err());
        assert!(decode_metrics_for(&v4, 5).is_err());
    }

    #[test]
    fn v5_metrics_layout_omits_repl_fields() {
        let m = MetricsSnapshot {
            selects: 9,
            txn_begun: 7,
            repl_chunks_shipped: 4,
            repl_bytes_shipped: 4096,
            repl_apply_lag_seq: 2,
            repl_reconnects: 1,
            repl_last_seq: 55,
            ..Default::default()
        };
        let v5 = encode_metrics_for(&m, 5);
        let v6 = encode_metrics_for(&m, 6);
        assert_eq!(v6.len() - v5.len(), 5 * 8, "v6 appends five u64s");
        // A v5 peer's decode accepts the narrow frame and leaves the
        // replication fields zero...
        let back = decode_metrics_for(&v5, 5).unwrap();
        assert_eq!(back.txn_begun, 7);
        assert_eq!(back.repl_chunks_shipped, 0);
        assert_eq!(back.repl_last_seq, 0);
        // ...while a v6 round trip carries them whole.
        let back = decode_metrics_for(&v6, 6).unwrap();
        assert_eq!(back, m);
        // Cross-version frames are rejected in both directions.
        assert!(decode_metrics_for(&v6, 5).is_err());
        assert!(decode_metrics_for(&v5, 6).is_err());
    }

    #[test]
    fn v6_metrics_layout_omits_bufpool_fields() {
        let m = MetricsSnapshot {
            selects: 3,
            repl_last_seq: 12,
            bufpool_hits: 100,
            bufpool_misses: 20,
            bufpool_evictions: 8,
            bufpool_writebacks: 5,
            bufpool_pages: 64,
            ..Default::default()
        };
        let v6 = encode_metrics_for(&m, 6);
        let v7 = encode_metrics_for(&m, 7);
        assert_eq!(v7.len() - v6.len(), 5 * 8, "v7 appends five u64s");
        // A v6 peer's decode accepts the narrow frame and leaves the
        // buffer-pool fields zero...
        let back = decode_metrics_for(&v6, 6).unwrap();
        assert_eq!(back.repl_last_seq, 12);
        assert_eq!(back.bufpool_hits, 0);
        assert_eq!(back.bufpool_pages, 0);
        // ...while a v7 round trip carries them whole.
        let back = decode_metrics_for(&v7, 7).unwrap();
        assert_eq!(back, m);
        // Cross-version frames are rejected in both directions.
        assert!(decode_metrics_for(&v7, 6).is_err());
        assert!(decode_metrics_for(&v6, 7).is_err());
    }

    #[test]
    fn read_only_error_degrades_for_old_peers() {
        let e = DbError::read_only("10.0.0.1:4000");
        // A v6 peer gets the typed variant back.
        match decode_error(&encode_error_for(&e, 6)).unwrap() {
            DbError::ReadOnly { primary } => assert_eq!(primary, "10.0.0.1:4000"),
            other => panic!("unexpected {other:?}"),
        }
        // A v5 peer gets Unavailable with the routing hint in the text.
        match decode_error(&encode_error_for(&e, 5)).unwrap() {
            DbError::Unavailable { message } => {
                assert!(message.contains("10.0.0.1:4000"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Non-ReadOnly errors pass through unchanged at any version.
        let plain = DbError::exec("boom");
        assert_eq!(decode_error(&encode_error_for(&plain, 2)).unwrap(), plain);
    }

    #[test]
    fn replication_frames_round_trip() {
        assert_eq!(
            decode_subscribe(&encode_subscribe(3, 4096)).unwrap(),
            (3, 4096)
        );
        assert_eq!(
            decode_repl_ack(&encode_repl_ack(3, 4096, 77)).unwrap(),
            (3, 4096, 77)
        );
        assert_eq!(
            decode_snapshot_chunk(&encode_snapshot_chunk(2, false, b"abc")).unwrap(),
            (2, false, b"abc".to_vec())
        );
        assert_eq!(
            decode_snapshot_chunk(&encode_snapshot_chunk(2, true, b"")).unwrap(),
            (2, true, Vec::new())
        );
        assert_eq!(
            decode_wal_chunk(&encode_wal_chunk(2, 16, 9, b"\x01\x02")).unwrap(),
            (2, 16, 9, vec![1, 2])
        );
        // Heartbeat: caught up, no bytes, live watermark.
        assert_eq!(
            decode_wal_chunk(&encode_wal_chunk(2, 160, 12, b"")).unwrap(),
            (2, 160, 12, Vec::new())
        );
        // Truncations are typed errors, never panics.
        let body = encode_wal_chunk(1, 2, 3, b"xyz");
        for cut in 0..24 {
            assert!(decode_wal_chunk(&body[..cut]).is_err());
        }
        assert!(decode_subscribe(&encode_subscribe(1, 2)[..7]).is_err());
        assert!(decode_repl_ack(&encode_repl_ack(1, 2, 3)[..23]).is_err());
        assert!(decode_snapshot_chunk(&[0; 8]).is_err());
    }

    #[test]
    fn row_batch_builder_splits_on_byte_budget() {
        let (_db, types) = registry();
        let row = |s: &str| vec![Value::Int(1), Value::Str(s.into())];
        // Each encoded row: 1+8 (int) + 1+4+len (str) = 14+len bytes.
        let mut b = RowBatchBuilder::new(2 + 2 * (14 + 10));
        assert_eq!(b.push(&row(&"x".repeat(10)), &no_display), RowPush::Added);
        assert_eq!(b.push(&row(&"y".repeat(10)), &no_display), RowPush::Added);
        assert_eq!(
            b.push(&row(&"z".repeat(10)), &no_display),
            RowPush::BatchFull,
            "third row exceeds the budget"
        );
        assert_eq!(b.rows(), 2, "the rejected row left the batch intact");
        let body = b.finish();
        let back = decode_row_batch(&body, 2, &types).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0][1], Value::Str("x".repeat(10)));
        assert_eq!(back[1][1], Value::Str("y".repeat(10)));

        // A row that alone busts the budget is reported, not split.
        let mut b = RowBatchBuilder::new(16);
        match b.push(&row(&"w".repeat(64)), &no_display) {
            RowPush::RowTooBig(bytes) => assert_eq!(bytes, 14 + 64),
            other => panic!("unexpected {other:?}"),
        }
        assert!(b.is_empty());
        // An empty finished batch is still a valid (zero-row) body.
        let back = decode_row_batch(&b.finish(), 2, &types).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn prepare_frames_round_trip() {
        let sql = "SELECT * FROM t WHERE id = :id";
        assert_eq!(decode_prepare(&encode_prepare(sql)).unwrap(), sql);
        assert_eq!(decode_prepared_ok(&encode_prepared_ok(7)).unwrap(), 7);
        assert_eq!(
            decode_close_prepared(&encode_close_prepared(u64::MAX)).unwrap(),
            u64::MAX
        );

        let (_db, types) = registry();
        let params: Vec<(&str, Value)> =
            vec![("id", Value::Int(42)), ("who", Value::Str("ada".into()))];
        let body = encode_execute_prepared(9, &params, &no_display);
        let (id, back) = decode_execute_prepared(&body, &types).unwrap();
        assert_eq!(id, 9);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], ("id".to_string(), Value::Int(42)));
        assert_eq!(back[1], ("who".to_string(), Value::Str("ada".into())));
        // Every truncation is a typed decode error, never a panic.
        for cut in 0..body.len() {
            assert!(decode_execute_prepared(&body[..cut], &types).is_err());
        }
        // Trailing garbage is rejected too.
        let mut long = body.clone();
        long.push(0);
        assert!(decode_execute_prepared(&long, &types).is_err());
    }

    #[test]
    fn prepared_statement_kind_survives_the_wire() {
        let body = encode_error(&DbError::NotFound {
            kind: "prepared statement",
            name: "42".into(),
        });
        match decode_error(&body).unwrap() {
            DbError::NotFound { kind, name } => {
                assert_eq!(kind, "prepared statement");
                assert_eq!(name, "42");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rows_header_and_batch_round_trip() {
        let (_db, types) = registry();
        let columns = vec![
            ("patient".to_string(), DataType::Str),
            ("dob".to_string(), DataType::Udt(types.chronon)),
            ("n".to_string(), DataType::Int),
        ];
        let header = encode_rows_header(&columns, &types);
        assert_eq!(decode_rows_header(&header, &types).unwrap(), columns);

        let rows: Vec<minidb::Row> = vec![
            vec![
                Value::Str("a".into()),
                types.chronon(Chronon::from_ymd(1965, 4, 2).unwrap()),
                Value::Int(1),
            ],
            vec![Value::Str("b".into()), Value::Null, Value::Int(2)],
        ];
        let batch = encode_row_batch(&rows, &no_display, &types);
        let back = decode_row_batch(&batch, columns.len(), &types).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(as_chronon(&back[0][1]), Chronon::from_ymd(1965, 4, 2).ok());
        assert_eq!(back[1][1], Value::Null);
    }
}
