//! # tip-client — the TIP client libraries
//!
//! The paper's Figure 1 shows client applications reaching a TIP-enabled
//! database through standard APIs, manipulating TIP datatypes via the
//! *TIP C library* and *TIP Java library*; the Java side uses JDBC 2.0's
//! *customized type mapping* to turn database UDT values into rich host
//! objects. This crate is the Rust analogue:
//!
//! * [`Connection`] — connect to (and optionally bootstrap) a
//!   TIP-enabled database;
//! * [`PreparedStatement`] — SQL with named parameters (`:w`), bound from
//!   host values including `tip-core` objects;
//! * [`Rows`] — a cursor with typed accessors (`get_chronon`,
//!   `get_element`, …);
//! * [`TypeMap`] / [`HostValue`] — customized type mapping: UDT values
//!   convert to first-class host objects, unknown (or unmapped) UDTs
//!   degrade to their text rendering, exactly like an unmapped JDBC
//!   STRUCT.
//!
//! ```
//! use tip_client::Connection;
//! use tip_core::Chronon;
//!
//! let conn = Connection::open_tip_enabled();
//! conn.execute("CREATE TABLE visits (patient CHAR(20), at Chronon)", &[]).unwrap();
//! conn.execute("INSERT INTO visits VALUES ('Mr.Showbiz', '1999-10-01')", &[]).unwrap();
//! let mut rows = conn.query("SELECT at FROM visits", &[]).unwrap();
//! assert!(rows.next());
//! assert_eq!(rows.get_chronon(0).unwrap(), Chronon::from_ymd(1999, 10, 1).unwrap());
//! ```

pub mod bitemporal;
pub mod protocol;
pub mod transport;

use minidb::{
    Database, DbError, DbResult, MetricsSnapshot, QueryMetrics, QueryResult, SlowQuery,
    StatementOutcome, Value,
};
use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Duration;
use tip_blade::{as_chronon, as_element, as_instant, as_period, as_span, TipBlade, TipTypes};
use tip_core::{Chronon, Element, Instant, Period, Span};
use transport::{
    BatchStatement, ConnectOptions, InProcessTransport, RemoteTransport, ReplicatedOptions,
    ReplicatedTransport, Transport,
};

pub use transport::promote_replica;

/// A host-language view of one SQL value — the result of customized type
/// mapping (JDBC 2.0 style): TIP UDTs arrive as first-class objects.
#[derive(Debug, Clone, PartialEq)]
pub enum HostValue {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Chronon(Chronon),
    Span(Span),
    Instant(Instant),
    Period(Period),
    Element(Element),
    /// An unmapped UDT, rendered through its text-output function.
    OtherUdt(String),
}

/// The customized type map. The default maps the five TIP types to host
/// objects; [`TypeMap::unmapped`] disables that, so every UDT arrives as
/// text (like removing the entries from a JDBC type map).
#[derive(Debug, Clone)]
pub struct TypeMap {
    map_tip_types: bool,
}

impl Default for TypeMap {
    fn default() -> TypeMap {
        TypeMap {
            map_tip_types: true,
        }
    }
}

impl TypeMap {
    /// A map with no custom entries.
    pub fn unmapped() -> TypeMap {
        TypeMap {
            map_tip_types: false,
        }
    }
}

type DisplayFn = Arc<dyn Fn(&Value) -> String + Send + Sync>;

/// A connection to a TIP-enabled database — embedded in this process or
/// reached over TCP via [`Connection::connect`]. Everything above the
/// [`Transport`] (prepared statements, cursors, type mapping) behaves
/// identically on both paths.
pub struct Connection {
    /// In-process: the actual database. Remote: a client-side registry
    /// database (fresh + TIP blade) used for type ids and display.
    db: Arc<Database>,
    transport: Box<dyn Transport>,
    types: TipTypes,
    type_map: TypeMap,
}

impl Connection {
    /// Creates a fresh in-process database, installs the TIP DataBlade,
    /// and connects — the one-call bootstrap used by examples and tests.
    pub fn open_tip_enabled() -> Connection {
        let db = Database::new();
        db.install_blade(&TipBlade)
            .expect("fresh database accepts the blade");
        Connection::attach(&db).expect("blade just installed")
    }

    /// Connects to an existing database; errors if the TIP blade is not
    /// installed (clients require the TIP types server-side).
    pub fn attach(db: &Arc<Database>) -> DbResult<Connection> {
        let types = db.with_catalog(TipTypes::from_catalog)?;
        Ok(Connection {
            db: Arc::clone(db),
            transport: Box::new(InProcessTransport::new(db.session())),
            types,
            type_map: TypeMap::default(),
        })
    }

    /// Connects to a `tip-server` over TCP with default options.
    pub fn connect(addr: impl ToSocketAddrs) -> DbResult<Connection> {
        Connection::connect_with(addr, &ConnectOptions::default())
    }

    /// Connects to a `tip-server` with explicit handshake options
    /// (initial NOW override, socket timeouts).
    pub fn connect_with(addr: impl ToSocketAddrs, opts: &ConnectOptions) -> DbResult<Connection> {
        // The registry database never stores rows: it exists so the
        // remote path has deterministic TIP type ids to rebuild UDT
        // cells with, and a catalog to render them through.
        let registry = Database::new();
        registry
            .install_blade(&TipBlade)
            .expect("fresh database accepts the blade");
        let types = registry.with_catalog(TipTypes::from_catalog)?;
        let remote = RemoteTransport::connect(addr, Arc::clone(&registry), types, opts)?;
        Ok(Connection {
            db: registry,
            transport: Box::new(remote),
            types,
            type_map: TypeMap::default(),
        })
    }

    /// Connects to a replicated deployment: writes, transactions and
    /// DDL go to `primary`; plain SELECT / AS OF / EXPLAIN / SHOW fan
    /// out across `replicas` (round-robin, bounded jittered retries,
    /// read-your-writes floor). With an empty replica list everything
    /// goes to the primary.
    pub fn connect_replicated(primary: &str, replicas: &[&str]) -> DbResult<Connection> {
        Connection::connect_replicated_with(primary, replicas, ReplicatedOptions::default())
    }

    /// [`Connection::connect_replicated`] with explicit retry/backoff
    /// and handshake options.
    pub fn connect_replicated_with(
        primary: &str,
        replicas: &[&str],
        opts: ReplicatedOptions,
    ) -> DbResult<Connection> {
        let registry = Database::new();
        registry
            .install_blade(&TipBlade)
            .expect("fresh database accepts the blade");
        let types = registry.with_catalog(TipTypes::from_catalog)?;
        let transport =
            ReplicatedTransport::new(primary, replicas, Arc::clone(&registry), types, opts);
        Ok(Connection {
            db: registry,
            transport: Box::new(transport),
            types,
            type_map: TypeMap::default(),
        })
    }

    /// Replaces the customized type map.
    pub fn set_type_map(&mut self, map: TypeMap) {
        self.type_map = map;
    }

    /// The underlying database handle. For remote connections this is
    /// the client-side *type registry* (it holds the TIP catalog, not
    /// the server's data).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Where this connection's statements run ("in-process" or the
    /// server's address).
    pub fn endpoint(&self) -> String {
        self.transport.endpoint()
    }

    /// The TIP type ids of this database (for constructing UDT parameter
    /// values manually).
    pub fn tip_types(&self) -> TipTypes {
        self.types
    }

    /// Overrides `NOW` for subsequent statements (what-if analysis);
    /// `None` restores the wall clock. On remote connections the value
    /// is synced to the server just before the next statement runs.
    pub fn set_now(&self, now: Option<Chronon>) {
        self.transport
            .set_now_unix(now.map(tip_blade::chronon_to_unix));
    }

    /// The current NOW override.
    pub fn now_override(&self) -> Option<Chronon> {
        self.transport
            .now_override_unix()
            .map(tip_blade::now_chronon)
    }

    /// Converts host parameter values to engine values.
    fn lower_param(&self, p: &HostValue) -> Value {
        match p {
            HostValue::Null => Value::Null,
            HostValue::Bool(b) => Value::Bool(*b),
            HostValue::Int(i) => Value::Int(*i),
            HostValue::Float(f) => Value::Float(*f),
            HostValue::Str(s) => Value::Str(s.clone()),
            HostValue::Chronon(c) => self.types.chronon(*c),
            HostValue::Span(s) => self.types.span(*s),
            HostValue::Instant(i) => self.types.instant(*i),
            HostValue::Period(p) => self.types.period(*p),
            HostValue::Element(e) => self.types.element(e.clone()),
            HostValue::OtherUdt(s) => Value::Str(s.clone()),
        }
    }

    /// Executes a non-query statement with named parameters; returns the
    /// affected-row count (0 for DDL).
    pub fn execute(&self, sql: &str, params: &[(&str, HostValue)]) -> DbResult<usize> {
        let lowered: Vec<(&str, Value)> = params
            .iter()
            .map(|(k, v)| (*k, self.lower_param(v)))
            .collect();
        match self.transport.execute(sql, &lowered)? {
            StatementOutcome::Affected(n) => Ok(n),
            StatementOutcome::Done => Ok(0),
            StatementOutcome::Rows(_) => Err(DbError::exec("statement returned rows; use query()")),
        }
    }

    /// Runs a query with named parameters.
    pub fn query(&self, sql: &str, params: &[(&str, HostValue)]) -> DbResult<Rows> {
        let lowered: Vec<(&str, Value)> = params
            .iter()
            .map(|(k, v)| (*k, self.lower_param(v)))
            .collect();
        let result = match self.transport.execute(sql, &lowered)? {
            StatementOutcome::Rows(r) => r,
            StatementOutcome::Affected(_) | StatementOutcome::Done => {
                return Err(DbError::exec("statement returned no rows; use execute()"))
            }
        };
        Ok(self.rows_from(result))
    }

    /// Wraps a raw result set in a cursor with this connection's type
    /// map and display catalog.
    fn rows_from(&self, result: QueryResult) -> Rows {
        let db = Arc::clone(&self.db);
        let display: DisplayFn = Arc::new(move |v| db.with_catalog(|c| c.display_value(v)));
        Rows {
            result,
            cursor: None,
            type_map: self.type_map.clone(),
            display,
        }
    }

    /// Prepares a statement for repeated execution. Over a protocol-v3
    /// remote connection the statement is also registered server-side,
    /// so later executions ship only an id and the parameter values; on
    /// older servers and in-process connections this transparently
    /// falls back to resending the text (the engine's plan cache still
    /// removes the re-parse/re-plan cost either way).
    pub fn prepare(&self, sql: &str) -> PreparedStatement<'_> {
        // Best-effort: a statement the server rejects here surfaces the
        // same typed error at execute time via the text path.
        let remote_id = self.transport.prepare(sql).unwrap_or(None);
        PreparedStatement {
            conn: self,
            sql: sql.to_owned(),
            params: Vec::new(),
            remote_id,
        }
    }

    /// Handle to the underlying session's query-metrics registry (also
    /// readable in SQL via `SHOW STATS`). In-process only — remote
    /// connections use [`Connection::metrics_snapshot`].
    pub fn metrics(&self) -> DbResult<Arc<QueryMetrics>> {
        self.transport.metrics()
    }

    /// A point-in-time copy of this session's metrics (works on both
    /// transports; remote connections fetch it over the wire).
    pub fn metrics_snapshot(&self) -> DbResult<MetricsSnapshot> {
        self.transport.metrics_snapshot()
    }

    /// Metrics aggregated across every session of the server this
    /// connection talks to. In-process, that is just this session.
    pub fn server_metrics(&self) -> DbResult<MetricsSnapshot> {
        self.transport.server_metrics()
    }

    /// Installs a slow-query log hook: `logger` runs for every statement
    /// at or over `threshold`. In-process only (closures cannot cross
    /// the wire), hence the `DbResult`.
    pub fn set_slow_query_log(
        &self,
        threshold: Duration,
        logger: impl Fn(&SlowQuery) + Send + Sync + 'static,
    ) -> DbResult<()> {
        self.transport
            .set_slow_query_log(threshold, Box::new(logger))
    }

    /// Removes the slow-query log hook.
    pub fn clear_slow_query_log(&self) -> DbResult<()> {
        self.transport.clear_slow_query_log()
    }

    /// Renders one value as SQL text via the catalog.
    pub fn display_value(&self, v: &Value) -> String {
        self.db.with_catalog(|c| c.display_value(v))
    }

    /// Renders a whole result set as an ASCII table.
    pub fn format(&self, rows: &Rows) -> String {
        self.db.format_result(&rows.result)
    }

    /// Starts a statement pipeline: queue several statements with
    /// [`Pipeline::add`] / [`Pipeline::add_prepared`], then ship them in
    /// one batch with [`Pipeline::run`]. Over a remote transport all
    /// queued statements go out in a single write and the responses are
    /// drained afterwards, so a round of N point queries costs one
    /// network round trip instead of N. In-process (and on servers that
    /// predate pipelining) the statements simply run back-to-back —
    /// same results, no batching win.
    ///
    /// Statements execute in submission order on the same session;
    /// statement `i+1` runs after statement `i` finished, exactly as if
    /// issued one at a time.
    pub fn pipeline(&self) -> Pipeline<'_> {
        Pipeline {
            conn: self,
            batch: Vec::new(),
        }
    }
}

/// A prepared statement with named-parameter binding.
pub struct PreparedStatement<'a> {
    conn: &'a Connection,
    sql: String,
    params: Vec<(String, HostValue)>,
    /// Server-side statement id when the transport negotiated protocol
    /// v3; `None` means executions resend the statement text.
    remote_id: Option<u64>,
}

impl PreparedStatement<'_> {
    /// Binds a named parameter (the paper's `:w`); rebinding replaces.
    pub fn bind(mut self, name: &str, value: HostValue) -> Self {
        self.params.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.params.push((name.to_owned(), value));
        self
    }

    /// `true` when the statement is registered server-side (remote
    /// protocol v3); `false` on the text-resend fallback path.
    pub fn is_server_prepared(&self) -> bool {
        self.remote_id.is_some()
    }

    /// Runs the statement through the fastest path the transport offers.
    fn run(&self) -> DbResult<StatementOutcome> {
        let lowered: Vec<(&str, Value)> = self
            .params
            .iter()
            .map(|(n, v)| (n.as_str(), self.conn.lower_param(v)))
            .collect();
        match self.remote_id {
            Some(id) => self
                .conn
                .transport
                .execute_prepared(id, &self.sql, &lowered),
            None => self.conn.transport.execute(&self.sql, &lowered),
        }
    }

    /// Executes as a query.
    pub fn query(&self) -> DbResult<Rows> {
        match self.run()? {
            StatementOutcome::Rows(r) => Ok(self.conn.rows_from(r)),
            StatementOutcome::Affected(_) | StatementOutcome::Done => {
                Err(DbError::exec("statement returned no rows; use execute()"))
            }
        }
    }

    /// Executes as a non-query statement.
    pub fn execute(&self) -> DbResult<usize> {
        match self.run()? {
            StatementOutcome::Affected(n) => Ok(n),
            StatementOutcome::Done => Ok(0),
            StatementOutcome::Rows(_) => Err(DbError::exec("statement returned rows; use query()")),
        }
    }
}

impl Drop for PreparedStatement<'_> {
    fn drop(&mut self) {
        // Release the server-side slot; best effort, and a no-op on
        // fallback paths.
        if let Some(id) = self.remote_id.take() {
            let _ = self.conn.transport.close_prepared(id);
        }
    }
}

/// A batch of statements submitted together; see [`Connection::pipeline`].
pub struct Pipeline<'a> {
    conn: &'a Connection,
    batch: Vec<BatchStatement>,
}

impl Pipeline<'_> {
    /// Queues a statement with named parameters.
    pub fn add(&mut self, sql: &str, params: &[(&str, HostValue)]) -> &mut Self {
        self.batch.push(BatchStatement {
            sql: sql.to_owned(),
            params: params
                .iter()
                .map(|(k, v)| ((*k).to_owned(), self.conn.lower_param(v)))
                .collect(),
            prepared_id: None,
        });
        self
    }

    /// Queues an execution of a prepared statement, snapshotting its
    /// current bindings. The statement may be re-bound and queued again
    /// in the same batch; each queued execution keeps the values it was
    /// added with.
    pub fn add_prepared(&mut self, stmt: &PreparedStatement<'_>) -> &mut Self {
        self.batch.push(BatchStatement {
            sql: stmt.sql.clone(),
            params: stmt
                .params
                .iter()
                .map(|(n, v)| (n.clone(), self.conn.lower_param(v)))
                .collect(),
            prepared_id: stmt.remote_id,
        });
        self
    }

    /// Number of statements queued so far.
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// `true` when nothing has been queued.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Ships the batch and drains one result per queued statement, in
    /// submission order. The outer `Err` means the connection itself
    /// failed (broken socket — remaining results unrecoverable); a
    /// per-slot `Err` is an ordinary statement error (the server keeps
    /// the connection and later slots still ran).
    pub fn run(&mut self) -> DbResult<Vec<DbResult<PipelineOutcome>>> {
        let batch = std::mem::take(&mut self.batch);
        let outcomes = self.conn.transport.execute_batch(&batch)?;
        Ok(outcomes
            .into_iter()
            .map(|slot| {
                slot.map(|outcome| match outcome {
                    StatementOutcome::Rows(r) => PipelineOutcome::Rows(self.conn.rows_from(r)),
                    StatementOutcome::Affected(n) => PipelineOutcome::Affected(n),
                    StatementOutcome::Done => PipelineOutcome::Done,
                })
            })
            .collect())
    }
}

/// The result of one pipelined statement.
pub enum PipelineOutcome {
    /// The statement returned rows.
    Rows(Rows),
    /// A DML statement reporting its affected-row count.
    Affected(usize),
    /// A statement with no result (DDL and friends).
    Done,
}

impl PipelineOutcome {
    /// Unwraps a row set, erroring on non-query outcomes.
    pub fn into_rows(self) -> DbResult<Rows> {
        match self {
            PipelineOutcome::Rows(r) => Ok(r),
            _ => Err(DbError::exec("statement returned no rows; use affected()")),
        }
    }

    /// The affected-row count (0 for `Done`), erroring if rows came back.
    pub fn affected(self) -> DbResult<usize> {
        match self {
            PipelineOutcome::Affected(n) => Ok(n),
            PipelineOutcome::Done => Ok(0),
            PipelineOutcome::Rows(_) => Err(DbError::exec("statement returned rows; use query()")),
        }
    }
}

/// A forward-only cursor over a query result with typed accessors.
pub struct Rows {
    result: QueryResult,
    cursor: Option<usize>,
    type_map: TypeMap,
    display: DisplayFn,
}

impl Rows {
    /// Advances to the next row; `false` at the end.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> bool {
        let next = self.cursor.map_or(0, |c| c + 1);
        if next < self.result.rows.len() {
            self.cursor = Some(next);
            true
        } else {
            self.cursor = Some(self.result.rows.len());
            false
        }
    }

    /// Number of rows in the result.
    pub fn len(&self) -> usize {
        self.result.rows.len()
    }

    /// `true` when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.result.rows.is_empty()
    }

    /// Output column names.
    pub fn column_names(&self) -> Vec<&str> {
        self.result
            .columns
            .iter()
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Column index by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.result.col_index(name)
    }

    fn current(&self) -> DbResult<&minidb::Row> {
        let i = self
            .cursor
            .ok_or_else(|| DbError::exec("call next() before accessors"))?;
        self.result
            .rows
            .get(i)
            .ok_or_else(|| DbError::exec("cursor is past the last row"))
    }

    fn cell(&self, col: usize) -> DbResult<&Value> {
        self.current()?
            .get(col)
            .ok_or_else(|| DbError::exec(format!("column index {col} out of range")))
    }

    /// The raw engine value.
    pub fn get_raw(&self, col: usize) -> DbResult<Value> {
        self.cell(col).cloned()
    }

    /// The customized-type-mapped host value (`getObject` in JDBC terms).
    pub fn get_object(&self, col: usize) -> DbResult<HostValue> {
        let v = self.cell(col)?;
        Ok(match v {
            Value::Null => HostValue::Null,
            Value::Bool(b) => HostValue::Bool(*b),
            Value::Int(i) => HostValue::Int(*i),
            Value::Float(f) => HostValue::Float(*f),
            Value::Str(s) => HostValue::Str(s.clone()),
            Value::Udt(_) => {
                if self.type_map.map_tip_types {
                    if let Some(c) = as_chronon(v) {
                        return Ok(HostValue::Chronon(c));
                    }
                    if let Some(s) = as_span(v) {
                        return Ok(HostValue::Span(s));
                    }
                    if let Some(i) = as_instant(v) {
                        return Ok(HostValue::Instant(i));
                    }
                    if let Some(p) = as_period(v) {
                        return Ok(HostValue::Period(p));
                    }
                    if let Some(e) = as_element(v) {
                        return Ok(HostValue::Element(e.clone()));
                    }
                }
                HostValue::OtherUdt((self.display)(v))
            }
        })
    }

    /// `true` when the cell is SQL NULL.
    pub fn is_null(&self, col: usize) -> DbResult<bool> {
        Ok(self.cell(col)?.is_null())
    }

    /// Typed accessor: INT.
    pub fn get_int(&self, col: usize) -> DbResult<i64> {
        self.cell(col)?
            .as_int()
            .ok_or_else(|| DbError::exec("column is not INT"))
    }

    /// Typed accessor: FLOAT.
    pub fn get_float(&self, col: usize) -> DbResult<f64> {
        self.cell(col)?
            .as_float()
            .ok_or_else(|| DbError::exec("column is not FLOAT"))
    }

    /// Typed accessor: BOOLEAN.
    pub fn get_bool(&self, col: usize) -> DbResult<bool> {
        self.cell(col)?
            .as_bool()
            .ok_or_else(|| DbError::exec("column is not BOOLEAN"))
    }

    /// Typed accessor: string.
    pub fn get_string(&self, col: usize) -> DbResult<String> {
        self.cell(col)?
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DbError::exec("column is not CHAR"))
    }

    /// Typed accessor: Chronon.
    pub fn get_chronon(&self, col: usize) -> DbResult<Chronon> {
        as_chronon(self.cell(col)?).ok_or_else(|| DbError::exec("column is not Chronon"))
    }

    /// Typed accessor: Span.
    pub fn get_span(&self, col: usize) -> DbResult<Span> {
        as_span(self.cell(col)?).ok_or_else(|| DbError::exec("column is not Span"))
    }

    /// Typed accessor: Instant.
    pub fn get_instant(&self, col: usize) -> DbResult<Instant> {
        as_instant(self.cell(col)?).ok_or_else(|| DbError::exec("column is not Instant"))
    }

    /// Typed accessor: Period.
    pub fn get_period(&self, col: usize) -> DbResult<Period> {
        as_period(self.cell(col)?).ok_or_else(|| DbError::exec("column is not Period"))
    }

    /// Typed accessor: Element.
    pub fn get_element(&self, col: usize) -> DbResult<Element> {
        as_element(self.cell(col)?)
            .cloned()
            .ok_or_else(|| DbError::exec("column is not Element"))
    }

    /// The underlying result set (for interop with the browser).
    pub fn into_result(self) -> QueryResult {
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn_with_demo() -> Connection {
        let conn = Connection::open_tip_enabled();
        conn.set_now(Some(Chronon::from_ymd(1999, 12, 1).unwrap()));
        conn.execute(
            "CREATE TABLE rx (patient CHAR(20), dob Chronon, freq Span, valid Element)",
            &[],
        )
        .unwrap();
        conn.execute(
            "INSERT INTO rx VALUES ('Mr.Showbiz', '1965-04-02', '0 08:00:00', \
             '{[1999-10-01, NOW]}')",
            &[],
        )
        .unwrap();
        conn
    }

    #[test]
    fn typed_accessors() {
        let conn = conn_with_demo();
        let mut rows = conn
            .query("SELECT patient, dob, freq, valid FROM rx", &[])
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows.next());
        assert_eq!(rows.get_string(0).unwrap(), "Mr.Showbiz");
        assert_eq!(
            rows.get_chronon(1).unwrap(),
            Chronon::from_ymd(1965, 4, 2).unwrap()
        );
        assert_eq!(rows.get_span(2).unwrap(), Span::from_hours(8));
        assert_eq!(
            rows.get_element(3).unwrap().to_string(),
            "{[1999-10-01, NOW]}"
        );
        assert!(!rows.next());
    }

    #[test]
    fn accessor_type_mismatch_errors() {
        let conn = conn_with_demo();
        let mut rows = conn.query("SELECT patient FROM rx", &[]).unwrap();
        rows.next();
        assert!(rows.get_chronon(0).is_err());
        assert!(rows.get_int(0).is_err());
        assert!(rows.get_int(5).is_err(), "out-of-range column");
    }

    #[test]
    fn cursor_discipline() {
        let conn = conn_with_demo();
        let rows = conn.query("SELECT patient FROM rx", &[]).unwrap();
        // Accessing before next() is an error.
        assert!(rows.get_string(0).is_err());
    }

    #[test]
    fn customized_type_mapping() {
        let conn = conn_with_demo();
        let mut rows = conn.query("SELECT valid FROM rx", &[]).unwrap();
        rows.next();
        match rows.get_object(0).unwrap() {
            HostValue::Element(e) => assert!(e.is_now_relative()),
            other => panic!("expected mapped Element, got {other:?}"),
        }
    }

    #[test]
    fn unmapped_types_degrade_to_text() {
        let mut conn = conn_with_demo();
        conn.set_type_map(TypeMap::unmapped());
        let mut rows = conn.query("SELECT valid FROM rx", &[]).unwrap();
        rows.next();
        match rows.get_object(0).unwrap() {
            HostValue::OtherUdt(s) => assert_eq!(s, "{[1999-10-01, NOW]}"),
            other => panic!("expected text fallback, got {other:?}"),
        }
    }

    #[test]
    fn prepared_statement_binding() {
        let conn = conn_with_demo();
        let stmt = conn
            .prepare("SELECT patient FROM rx WHERE length(valid) > :minlen")
            .bind("minlen", HostValue::Span(Span::from_days(30)));
        let rows = stmt.query().unwrap();
        assert_eq!(rows.len(), 1);
        // Rebinding replaces the old value.
        let stmt = stmt.bind("minlen", HostValue::Span(Span::from_days(300)));
        assert!(stmt.query().unwrap().is_empty());
    }

    #[test]
    fn tip_object_parameters() {
        let conn = conn_with_demo();
        let rows = conn
            .query(
                "SELECT patient FROM rx WHERE contains(valid, :day)",
                &[(
                    "day",
                    HostValue::Chronon(Chronon::from_ymd(1999, 11, 11).unwrap()),
                )],
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn what_if_now_through_connection() {
        let conn = conn_with_demo();
        let q = "SELECT total_seconds(length(valid)) FROM rx";
        let mut r1 = conn.query(q, &[]).unwrap();
        r1.next();
        let len_dec = r1.get_int(0).unwrap();
        conn.set_now(Some(Chronon::from_ymd(2000, 6, 1).unwrap()));
        assert_eq!(
            conn.now_override(),
            Some(Chronon::from_ymd(2000, 6, 1).unwrap())
        );
        let mut r2 = conn.query(q, &[]).unwrap();
        r2.next();
        assert!(r2.get_int(0).unwrap() > len_dec);
    }

    #[test]
    fn attach_requires_blade() {
        let db = Database::new();
        assert!(Connection::attach(&db).is_err());
        db.install_blade(&TipBlade).unwrap();
        assert!(Connection::attach(&db).is_ok());
    }

    #[test]
    fn execute_rejects_queries_and_vice_versa() {
        let conn = conn_with_demo();
        assert!(conn.execute("SELECT * FROM rx", &[]).is_err());
        assert!(conn.query("DELETE FROM rx", &[]).is_err());
    }

    #[test]
    fn null_handling() {
        let conn = Connection::open_tip_enabled();
        conn.execute("CREATE TABLE t (a INT, c Chronon)", &[])
            .unwrap();
        conn.execute("INSERT INTO t VALUES (NULL, NULL)", &[])
            .unwrap();
        let mut rows = conn.query("SELECT a, c FROM t", &[]).unwrap();
        rows.next();
        assert!(rows.is_null(0).unwrap());
        assert!(rows.is_null(1).unwrap());
        assert_eq!(rows.get_object(1).unwrap(), HostValue::Null);
    }
}
