//! # tip-layered — a TimeDB-style layered temporal stratum (baseline)
//!
//! The paper's §5 contrasts TIP's integrated DataBlade design with
//! systems like TimeDB and Tiger, which "use a layered approach: temporal
//! queries are translated by an external module into standard SQL
//! queries, which are then executed in the backend DBMS", warning that
//! "generated queries may become very complex and potentially difficult
//! to optimize" and that "all client requests must first go through the
//! external module". This crate is that baseline, built so the comparison
//! can actually be run:
//!
//! * temporal tables are encoded in first normal form on a **blade-less**
//!   `minidb` — one row per validity period, with `vstart`/`vend` INT
//!   columns holding raw chronon seconds (no temporal types exist in the
//!   backend at all);
//! * temporal operations are **translated to standard SQL** — overlap
//!   selection and temporal join (period intersection via
//!   `greatest`/`least`) run entirely in the backend;
//! * **coalescing** (TIP's `group_union`) cannot be pushed into this
//!   SQL dialect at all: the stratum must pull every period row out of
//!   the DBMS, merge them client-side, and (optionally) write the result
//!   back — paying the boundary-crossing cost the paper describes;
//! * every call records [`Stats`] — statements issued, generated SQL
//!   size, and rows shipped across the DBMS boundary — the "query
//!   complexity" measures used by experiments E5/E7.
//!
//! `NOW` handling is deliberately primitive, as in the layered systems
//! the paper cites: NOW-relative endpoints must be resolved to fixed
//! chronons when rows are inserted, so stored data cannot "move" as time
//! advances. (TIP stores `NOW` symbolically; see `tip-blade`.)

use minidb::{Database, DbError, DbResult, QueryResult, Session, StatementOutcome, Value};
use std::sync::Arc;
use tip_core::{Chronon, ResolvedElement, ResolvedPeriod, Span};

/// Column types available to layered temporal tables (standard SQL only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LType {
    Int,
    Float,
    Str,
}

impl LType {
    fn sql(self) -> &'static str {
        match self {
            LType::Int => "INT",
            LType::Float => "FLOAT",
            LType::Str => "CHAR(40)",
        }
    }
}

/// Cost counters for the stratum — the measurable face of the paper's
/// "layered approach" critique.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// SQL statements sent to the backend.
    pub statements: usize,
    /// Total characters of generated SQL.
    pub sql_chars: usize,
    /// Rows shipped across the DBMS boundary into the stratum.
    pub rows_shipped: usize,
}

/// The external translation module sitting between clients and a plain
/// relational backend.
pub struct LayeredStratum {
    db: Arc<Database>,
    session: Session,
    stats: Stats,
}

impl Default for LayeredStratum {
    fn default() -> Self {
        Self::new()
    }
}

impl LayeredStratum {
    /// Creates a stratum over a fresh blade-less database.
    pub fn new() -> LayeredStratum {
        let db = Database::new();
        let session = db.session();
        LayeredStratum {
            db,
            session,
            stats: Stats::default(),
        }
    }

    /// The backend database (plain relational, no TIP types).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Accumulated cost counters.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Resets the cost counters.
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
    }

    fn run(&mut self, sql: &str) -> DbResult<StatementOutcome> {
        self.stats.statements += 1;
        self.stats.sql_chars += sql.len();
        self.session.execute(sql)
    }

    fn run_query(&mut self, sql: &str) -> DbResult<QueryResult> {
        match self.run(sql)? {
            StatementOutcome::Rows(r) => {
                self.stats.rows_shipped += r.rows.len();
                Ok(r)
            }
            other => Err(DbError::exec(format!("expected rows, got {other:?}"))),
        }
    }

    /// Creates the 1NF encoding of a temporal table: the data columns
    /// plus `vstart`/`vend` INT columns, one row per validity period.
    pub fn create_temporal_table(&mut self, name: &str, cols: &[(&str, LType)]) -> DbResult<()> {
        let mut ddl = format!("CREATE TABLE {name} (");
        for (cname, ty) in cols {
            ddl.push_str(&format!("{cname} {}, ", ty.sql()));
        }
        ddl.push_str("vstart INT, vend INT)");
        self.run(&ddl).map(|_| ())
    }

    /// Inserts one logical temporal tuple: its element is decomposed into
    /// one physical row per period. NOW-relative data must be resolved by
    /// the caller first (the layered encoding cannot represent `NOW`).
    pub fn insert_temporal(
        &mut self,
        table: &str,
        values: &[Value],
        valid: &ResolvedElement,
    ) -> DbResult<usize> {
        if valid.is_empty() {
            return Ok(0);
        }
        let mut sql = format!("INSERT INTO {table} VALUES ");
        for (i, p) in valid.periods().iter().enumerate() {
            if i > 0 {
                sql.push_str(", ");
            }
            sql.push('(');
            for v in values {
                sql.push_str(&literal(v)?);
                sql.push_str(", ");
            }
            sql.push_str(&format!("{}, {})", p.start().raw(), p.end().raw()));
        }
        match self.run(&sql)? {
            StatementOutcome::Affected(n) => Ok(n),
            other => Err(DbError::exec(format!("INSERT produced {other:?}"))),
        }
    }

    /// Generated SQL for a temporal overlap selection: rows whose
    /// validity intersects `window`, with the intersection clipped into
    /// the output (the layered equivalent of `restrict(valid, window)`).
    pub fn overlap_selection_sql(
        &self,
        table: &str,
        cols: &[&str],
        window: ResolvedPeriod,
    ) -> String {
        let collist = cols.iter().map(|c| format!("{c}, ")).collect::<String>();
        let (ws, we) = (window.start().raw(), window.end().raw());
        format!(
            "SELECT {collist}greatest(vstart, {ws}) AS vstart, least(vend, {we}) AS vend \
             FROM {table} WHERE vstart <= {we} AND vend >= {ws}"
        )
    }

    /// Runs an overlap selection.
    pub fn overlap_selection(
        &mut self,
        table: &str,
        cols: &[&str],
        window: ResolvedPeriod,
    ) -> DbResult<QueryResult> {
        let sql = self.overlap_selection_sql(table, cols, window);
        self.run_query(&sql)
    }

    /// Generated SQL for a temporal equi-join of two 1NF tables: rows
    /// joined on `join_pred`, keeping period pairs that intersect and
    /// projecting the intersection — the layered translation of the
    /// paper's Diabeta/Aspirin self-join.
    pub fn temporal_join_sql(&self, t1: &str, t2: &str, cols: &[&str], join_pred: &str) -> String {
        let collist = cols.iter().map(|c| format!("{c}, ")).collect::<String>();
        format!(
            "SELECT {collist}greatest(a.vstart, b.vstart) AS vstart, \
             least(a.vend, b.vend) AS vend \
             FROM {t1} a, {t2} b \
             WHERE {join_pred} AND a.vstart <= b.vend AND b.vstart <= a.vend"
        )
    }

    /// Runs a temporal join.
    pub fn temporal_join(
        &mut self,
        t1: &str,
        t2: &str,
        cols: &[&str],
        join_pred: &str,
    ) -> DbResult<QueryResult> {
        let sql = self.temporal_join_sql(t1, t2, cols, join_pred);
        self.run_query(&sql)
    }

    /// Temporal coalescing per group — the layered counterpart of TIP's
    /// `group_union` aggregate. The SQL dialect cannot express it, so the
    /// stratum pulls *every* period row ordered by `(group, vstart)` and
    /// merges client-side; the stats show the boundary cost.
    pub fn coalesce(
        &mut self,
        table: &str,
        group_col: &str,
    ) -> DbResult<Vec<(Value, ResolvedElement)>> {
        let sql =
            format!("SELECT {group_col}, vstart, vend FROM {table} ORDER BY {group_col}, vstart");
        let rows = self.run_query(&sql)?;
        let mut out: Vec<(Value, Vec<ResolvedPeriod>)> = Vec::new();
        for row in &rows.rows {
            let g = row[0].clone();
            let s = row[1]
                .as_int()
                .ok_or_else(|| DbError::exec("vstart not INT"))?;
            let e = row[2]
                .as_int()
                .ok_or_else(|| DbError::exec("vend not INT"))?;
            let p = period_from_raw(s, e)?;
            match out.last_mut() {
                Some((last_g, ps)) if last_g.eq_grouping(&g) => ps.push(p),
                _ => out.push((g, vec![p])),
            }
        }
        Ok(out
            .into_iter()
            .map(|(g, ps)| (g, ResolvedElement::normalize(ps)))
            .collect())
    }

    /// Coalesced total length per group (the layered version of the
    /// paper's `length(group_union(valid))` query).
    pub fn coalesced_length(
        &mut self,
        table: &str,
        group_col: &str,
    ) -> DbResult<Vec<(Value, Span)>> {
        Ok(self
            .coalesce(table, group_col)?
            .into_iter()
            .map(|(g, e)| (g, e.length()))
            .collect())
    }

    /// Writes a coalesced result back as a new 1NF table (the layered
    /// systems' materialization step, costing further statements).
    pub fn materialize_coalesced(
        &mut self,
        source: &str,
        group_col: &str,
        target: &str,
    ) -> DbResult<usize> {
        let groups = self.coalesce(source, group_col)?;
        self.run(&format!(
            "CREATE TABLE {target} ({group_col} CHAR(40), vstart INT, vend INT)"
        ))?;
        let mut n = 0;
        for (g, e) in groups {
            let gl = literal(&g)?;
            if e.is_empty() {
                continue;
            }
            let mut sql = format!("INSERT INTO {target} VALUES ");
            for (i, p) in e.periods().iter().enumerate() {
                if i > 0 {
                    sql.push_str(", ");
                }
                sql.push_str(&format!("({gl}, {}, {})", p.start().raw(), p.end().raw()));
            }
            match self.run(&sql)? {
                StatementOutcome::Affected(k) => n += k,
                other => return Err(DbError::exec(format!("INSERT produced {other:?}"))),
            }
        }
        Ok(n)
    }

    /// Direct SQL passthrough (used by tests to inspect backend state).
    pub fn raw_query(&mut self, sql: &str) -> DbResult<QueryResult> {
        self.run_query(sql)
    }
}

/// Renders a value as a SQL literal for generated statements. The
/// layered store is the paper's plain-SQL strawman: it has no extension
/// types, so a UDT reaching this layer is a caller error reported as a
/// typed [`DbError`], never a panic.
fn literal(v: &Value) -> DbResult<String> {
    Ok(match v {
        Value::Null => "NULL".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Udt(_) => {
            return Err(DbError::type_err(
                "layered backend has no UDTs; lower temporal values to scalars first",
            ))
        }
    })
}

/// Reconstructs a period from raw chronon seconds.
pub fn period_from_raw(start: i64, end: i64) -> DbResult<ResolvedPeriod> {
    let s = Chronon::from_raw(start).map_err(|e| DbError::exec(e.to_string()))?;
    let e = Chronon::from_raw(end).map_err(|e| DbError::exec(e.to_string()))?;
    ResolvedPeriod::new(s, e).map_err(|e| DbError::exec(e.to_string()))
}

/// Converts a query-result row set carrying `vstart`/`vend` columns into
/// a [`ResolvedElement`] (coalescing the pieces).
pub fn rows_to_element(result: &QueryResult) -> DbResult<ResolvedElement> {
    let vs = result
        .col_index("vstart")
        .ok_or_else(|| DbError::exec("missing vstart column"))?;
    let ve = result
        .col_index("vend")
        .ok_or_else(|| DbError::exec("missing vend column"))?;
    let mut periods = Vec::with_capacity(result.rows.len());
    for row in &result.rows {
        let s = row[vs]
            .as_int()
            .ok_or_else(|| DbError::exec("vstart not INT"))?;
        let e = row[ve]
            .as_int()
            .ok_or_else(|| DbError::exec("vend not INT"))?;
        periods.push(period_from_raw(s, e)?);
    }
    Ok(ResolvedElement::normalize(periods))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Chronon {
        s.parse().unwrap()
    }

    fn rp(a: &str, b: &str) -> ResolvedPeriod {
        ResolvedPeriod::new(c(a), c(b)).unwrap()
    }

    fn el(pairs: &[(&str, &str)]) -> ResolvedElement {
        ResolvedElement::normalize(pairs.iter().map(|&(a, b)| rp(a, b)).collect())
    }

    fn demo_stratum() -> LayeredStratum {
        let mut s = LayeredStratum::new();
        s.create_temporal_table("rx", &[("patient", LType::Str), ("drug", LType::Str)])
            .unwrap();
        s.insert_temporal(
            "rx",
            &[Value::Str("showbiz".into()), Value::Str("diabeta".into())],
            &el(&[("1999-10-01", "1999-12-01")]),
        )
        .unwrap();
        s.insert_temporal(
            "rx",
            &[Value::Str("showbiz".into()), Value::Str("aspirin".into())],
            &el(&[("1999-09-15", "1999-10-20")]),
        )
        .unwrap();
        s.insert_temporal(
            "rx",
            &[Value::Str("medley".into()), Value::Str("diabeta".into())],
            &el(&[("1999-01-01", "1999-04-30"), ("1999-07-01", "1999-10-31")]),
        )
        .unwrap();
        s
    }

    #[test]
    fn element_decomposes_into_period_rows() {
        let mut s = demo_stratum();
        let r = s.raw_query("SELECT COUNT(*) FROM rx").unwrap();
        // 1 + 1 + 2 physical rows for 3 logical tuples.
        assert_eq!(r.rows[0][0].as_int(), Some(4));
    }

    #[test]
    fn overlap_selection_matches_tip_semantics() {
        let mut s = demo_stratum();
        let w = rp("1999-10-01", "1999-10-31");
        let r = s.overlap_selection("rx", &["patient", "drug"], w).unwrap();
        assert_eq!(r.rows.len(), 3);
        let e = rows_to_element(&r).unwrap();
        assert_eq!(e.periods(), &[rp("1999-10-01", "1999-10-31")]);
    }

    #[test]
    fn temporal_join_intersects_periods() {
        let mut s = demo_stratum();
        let r = s
            .temporal_join(
                "rx",
                "rx",
                &["a.patient"],
                "a.patient = b.patient AND a.drug = 'diabeta' AND b.drug = 'aspirin'",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let e = rows_to_element(&r).unwrap();
        assert_eq!(e.periods(), &[rp("1999-10-01", "1999-10-20")]);
    }

    #[test]
    fn coalesce_merges_overlaps_across_rows() {
        let mut s = demo_stratum();
        let groups = s.coalesce("rx", "patient").unwrap();
        assert_eq!(groups.len(), 2);
        let showbiz = groups
            .iter()
            .find(|(g, _)| g.as_str() == Some("showbiz"))
            .unwrap();
        // Aspirin + Diabeta overlap -> single period.
        assert_eq!(showbiz.1.periods(), &[rp("1999-09-15", "1999-12-01")]);
        let medley = groups
            .iter()
            .find(|(g, _)| g.as_str() == Some("medley"))
            .unwrap();
        assert_eq!(medley.1.period_count(), 2);
    }

    #[test]
    fn coalesced_length_is_not_sum_of_lengths() {
        let mut s = demo_stratum();
        let lens = s.coalesced_length("rx", "patient").unwrap();
        let showbiz = lens
            .iter()
            .find(|(g, _)| g.as_str() == Some("showbiz"))
            .unwrap()
            .1;
        let expected = c("1999-12-01") - c("1999-09-15") + Span::SECOND;
        assert_eq!(showbiz, expected);
    }

    #[test]
    fn stats_count_boundary_crossings() {
        let mut s = demo_stratum();
        s.reset_stats();
        s.coalesce("rx", "patient").unwrap();
        let st = s.stats();
        assert_eq!(st.statements, 1);
        assert_eq!(st.rows_shipped, 4, "every period row crosses the boundary");
        assert!(st.sql_chars > 0);
    }

    #[test]
    fn materialize_writes_back() {
        let mut s = demo_stratum();
        let n = s
            .materialize_coalesced("rx", "patient", "rx_coalesced")
            .unwrap();
        assert_eq!(n, 3); // showbiz: 1 period, medley: 2 periods
        let r = s.raw_query("SELECT COUNT(*) FROM rx_coalesced").unwrap();
        assert_eq!(r.rows[0][0].as_int(), Some(3));
    }

    #[test]
    fn generated_sql_is_complex() {
        let s = LayeredStratum::new();
        let sql = s.temporal_join_sql("rx", "rx", &["a.patient"], "a.patient = b.patient");
        assert!(sql.contains("greatest"));
        assert!(sql.contains("least"));
        assert!(sql.contains("a.vstart <= b.vend"));
    }

    #[test]
    fn empty_element_inserts_nothing() {
        let mut s = LayeredStratum::new();
        s.create_temporal_table("t", &[("k", LType::Int)]).unwrap();
        let n = s
            .insert_temporal("t", &[Value::Int(1)], &ResolvedElement::empty())
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn udt_values_are_a_typed_error_not_a_panic() {
        let mut s = LayeredStratum::new();
        s.create_temporal_table("t", &[("k", LType::Str)]).unwrap();
        let udt = minidb::Value::Udt(minidb::UdtValue::new(
            minidb::UdtId(999),
            std::sync::Arc::new(tip_blade::TipSpan(tip_core::Span::from_days(1))),
        ));
        match s.insert_temporal("t", &[udt], &el(&[("1999-01-01", "1999-01-02")])) {
            Err(DbError::Type { message }) => assert!(message.contains("no UDTs")),
            other => panic!("expected a Type error, got {other:?}"),
        }
    }

    #[test]
    fn string_literals_escaped() {
        let mut s = LayeredStratum::new();
        s.create_temporal_table("t", &[("k", LType::Str)]).unwrap();
        s.insert_temporal(
            "t",
            &[Value::Str("it's".into())],
            &el(&[("1999-01-01", "1999-01-02")]),
        )
        .unwrap();
        let r = s.raw_query("SELECT k FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_str(), Some("it's"));
    }
}
