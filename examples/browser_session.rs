//! A scripted TIP Browser session reproducing the Figure-2 interaction:
//! run a query, browse by a temporal attribute, move the window with the
//! slider, and override NOW for what-if analysis.
//!
//! ```text
//! cargo run --example browser_session
//! ```
//! (For the interactive version: `cargo run -p tip-browser --bin tip-browser-cli`.)

use tip::browser::Browser;
use tip::client::Connection;
use tip::core::{Chronon, ResolvedPeriod, Span};
use tip::workload::{generate, populate_tip, MedicalConfig};

fn main() {
    let conn = Connection::open_tip_enabled();
    let now = Chronon::from_ymd(1999, 12, 1).expect("valid date");
    conn.set_now(Some(now));
    {
        let session = conn.database().session();
        populate_tip(
            &session,
            conn.tip_types(),
            &generate(&MedicalConfig::default()),
        )
        .expect("populate");
    }

    // Run a query and hand the result to the browser, browsing by the
    // Element-valued attribute `valid`.
    let rows = conn
        .query(
            "SELECT patient, drug, valid FROM Prescription \
             WHERE drug IN ('Diabeta', 'Aspirin') ORDER BY patient LIMIT 8",
            &[],
        )
        .expect("query");
    let result = rows.into_result();
    let db = conn.database().clone();
    let mut browser = Browser::new(
        &result,
        |v| db.with_catalog(|c| c.display_value(v)),
        "valid",
        now,
    )
    .expect("browsable attribute");
    browser.set_timeline_width(40);

    println!(">>> initial view (window spans all validity):\n");
    println!("{}", browser.render());

    println!(">>> zoom into 1998 and slide the window forward a quarter at a time:\n");
    browser.set_window(
        ResolvedPeriod::new(
            Chronon::from_ymd(1998, 1, 1).expect("valid"),
            Chronon::from_ymd(1998, 3, 31).expect("valid"),
        )
        .expect("window"),
    );
    for step in 0..3 {
        println!("--- window position {step} ---");
        println!("{}", browser.render());
        browser.slide(Span::from_days(91));
    }

    println!(">>> what-if: re-evaluate under NOW = 1997-01-01:\n");
    browser.set_now(Chronon::from_ymd(1997, 1, 1).expect("valid"));
    println!("{}", browser.render());
}
