//! Temporal analytics over the medical database, combining the extended
//! machinery: temporal aggregation (how many prescriptions are active
//! *per point in time*), granularities (monthly reports), gaps (treatment
//! interruptions), and subqueries.
//!
//! ```text
//! cargo run --example temporal_analytics
//! ```

use tip::client::Connection;
use tip::core::{tagg, Chronon, Granularity};
use tip::workload::{generate, populate_tip, MedicalConfig};

fn main() {
    let conn = Connection::open_tip_enabled();
    let now = Chronon::from_ymd(1999, 12, 1).expect("valid date");
    conn.set_now(Some(now));
    {
        let session = conn.database().session();
        populate_tip(
            &session,
            conn.tip_types(),
            &generate(&MedicalConfig::default()),
        )
        .expect("populate");
    }

    // ---- polypharmacy: max simultaneous prescriptions per patient ------
    println!("Patients with the heaviest simultaneous medication load:");
    let rows = conn
        .query(
            "SELECT patient, group_max_overlap(valid) AS max_simultaneous, COUNT(*) AS rx \
             FROM Prescription GROUP BY patient \
             ORDER BY max_simultaneous DESC, patient LIMIT 5",
            &[],
        )
        .expect("max overlap");
    print!("{}", conn.format(&rows));

    // ---- the same computation through the tip-core sweep ---------------
    // Pull all validity periods and build the hospital-wide load curve.
    let mut rows = conn
        .query("SELECT valid FROM Prescription", &[])
        .expect("periods");
    let mut periods = Vec::new();
    while rows.next() {
        let e = rows
            .get_element(0)
            .expect("element")
            .resolve(now)
            .expect("resolve");
        periods.extend_from_slice(e.periods());
    }
    let (peak, when) = tagg::max_overlap(&periods).expect("nonempty");
    println!("\nHospital-wide peak load: {peak} concurrent prescriptions during {when}");
    let busy = tagg::at_least(&periods, peak / 2);
    println!(
        "At least {} concurrent prescriptions for a total of {} days.",
        peak / 2,
        busy.length().whole_days()
    );

    // ---- monthly active-prescription report via granularities ----------
    println!("\nActive prescriptions by month (1999, via granule()/overlaps()):");
    for month in 1..=11u32 {
        let probe = Chronon::from_ymd(1999, month, 15).expect("valid date");
        let mut r = conn
            .query(
                "SELECT COUNT(*) FROM Prescription \
                 WHERE overlaps(valid, granule(:probe, 'month')::Element)",
                &[("probe", tip::client::HostValue::Chronon(probe))],
            )
            .expect("monthly");
        r.next();
        let n = r.get_int(0).expect("int");
        let month_start = tip::core::granularity::truncate(probe, Granularity::Month);
        println!("  {}  {}", month_start, "#".repeat((n as usize).min(70)));
    }

    // ---- treatment interruptions via gaps() -----------------------------
    println!("\nLongest treatment interruptions (gaps inside a prescription element):");
    let rows = conn
        .query(
            "SELECT patient, drug, length(gaps(valid)) AS interrupted \
             FROM Prescription WHERE period_count(valid) >= 2 \
             ORDER BY interrupted DESC, patient LIMIT 5",
            &[],
        )
        .expect("gaps");
    print!("{}", conn.format(&rows));

    // ---- subquery: who exceeds the average coalesced medication time ----
    println!("\nPatients on medication longer than the average patient (subquery):");
    let rows = conn
        .query(
            "SELECT patient, total_seconds(length(group_union(valid))) / 86400 AS days \
             FROM Prescription GROUP BY patient \
             HAVING total_seconds(length(group_union(valid))) > \
                    (SELECT AVG(total_seconds(length(valid))) FROM Prescription) \
             ORDER BY days DESC LIMIT 5",
            &[],
        )
        .expect("subquery");
    print!("{}", conn.format(&rows));
}
