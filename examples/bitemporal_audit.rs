//! Bitemporal prescriptions: valid time (when the patient took the drug)
//! *and* transaction time (when the database believed it) — the classic
//! two-axis model behind the paper's reference [2], provided by
//! `tip_client::bitemporal`. Logical updates never destroy history, so
//! any past database state can be reconstructed: an audit log for free.
//!
//! ```text
//! cargo run --example bitemporal_audit
//! ```

use tip::client::bitemporal::BitemporalTable;
use tip::client::{Connection, HostValue};
use tip::core::{Chronon, Element};

fn c(s: &str) -> Chronon {
    s.parse().unwrap()
}

fn el(s: &str) -> Element {
    s.parse().unwrap()
}

fn show(conn: &Connection, label: &str, rows: tip::client::Rows) {
    println!("--- {label} ---");
    print!("{}", conn.format(&rows));
    println!();
}

fn main() {
    let conn = Connection::open_tip_enabled();
    let rx = BitemporalTable::create(
        &conn,
        "rx",
        &[
            ("patient", "CHAR(20)"),
            ("drug", "CHAR(20)"),
            ("dose", "INT"),
        ],
    )
    .expect("create bitemporal table");

    // January 1999: the clinic records a prescription.
    conn.set_now(Some(c("1999-01-10")));
    rx.insert(
        &[
            ("patient", HostValue::Str("Mr.Showbiz".into())),
            ("drug", HostValue::Str("Diabeta".into())),
            ("dose", HostValue::Int(1)),
        ],
        el("{[1999-01-10, NOW]}"),
    )
    .expect("insert");

    // March: the dose is corrected — a *logical* update: the old belief
    // is closed, the new one appended.
    conn.set_now(Some(c("1999-03-15")));
    rx.update_where(
        "patient = 'Mr.Showbiz' AND drug = 'Diabeta'",
        &[
            ("patient", HostValue::Str("Mr.Showbiz".into())),
            ("drug", HostValue::Str("Diabeta".into())),
            ("dose", HostValue::Int(2)),
        ],
        el("{[1999-01-10, NOW]}"),
    )
    .expect("update");

    // June: a data-entry error from the past is discovered and recorded:
    // the patient also took Aspirin back in February (valid time in the
    // past, transaction time now — the bitemporal distinction).
    conn.set_now(Some(c("1999-06-20")));
    rx.insert(
        &[
            ("patient", HostValue::Str("Mr.Showbiz".into())),
            ("drug", HostValue::Str("Aspirin".into())),
            ("dose", HostValue::Int(3)),
        ],
        el("{[1999-02-01, 1999-02-28]}"),
    )
    .expect("late entry");

    // September: the Diabeta prescription ends.
    conn.set_now(Some(c("1999-09-30")));
    rx.delete_where("drug = 'Diabeta'").expect("retract");

    // ---- audit queries ---------------------------------------------------
    conn.set_now(Some(c("1999-12-01")));
    show(
        &conn,
        "current beliefs (December 1999)",
        rx.current().expect("current"),
    );
    show(
        &conn,
        "what the database believed in February 1999 (before the dose fix, \
         before the Aspirin entry)",
        rx.as_of(c("1999-02-01")).expect("as-of"),
    );
    show(
        &conn,
        "what it believed in July 1999 (dose fixed, Aspirin known)",
        rx.as_of(c("1999-07-01")).expect("as-of"),
    );
    show(
        &conn,
        "full version history of the Diabeta prescription",
        rx.history_where("drug = 'Diabeta'").expect("history"),
    );
    println!(
        "{} physical version(s) stored; nothing was ever overwritten.",
        rx.version_count().expect("count")
    );
    rx.check_invariant().expect("bitemporal invariant");
}
