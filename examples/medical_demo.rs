//! The paper's full §2/§4 demonstration on the synthetic medical
//! database: schema, inserts, the four example queries, and the
//! aggregates — exactly the workload the TIP demo ran in October 1999.
//!
//! ```text
//! cargo run --example medical_demo
//! ```

use minidb::Value;
use tip::blade::TipTypes;
use tip::core::Chronon;
use tip::workload::{generate, populate_tip, MedicalConfig};
use tip_blade::TipBlade;

fn main() {
    let db = minidb::Database::new();
    db.install_blade(&TipBlade)
        .expect("install the TIP DataBlade");
    let mut session = db.session();
    let now = Chronon::from_ymd(1999, 12, 1).expect("valid date");
    session.set_now_unix(Some(tip::blade::chronon_to_unix(now)));

    // Load the seeded synthetic medical database (paper §4).
    let types = db
        .with_catalog(TipTypes::from_catalog)
        .expect("types registered");
    let med = generate(&MedicalConfig::default());
    let n = populate_tip(&session, types, &med).expect("populate");
    println!(
        "Loaded {n} prescriptions for {} patients.\n",
        med.patients.len()
    );

    // --- Q2: the Tylenol query with an input parameter ------------------
    println!("[Q2] Patients prescribed Tylenol when less than :w weeks old (w = 520):");
    let r = session
        .query_with_params(
            "SELECT patient, patientDOB, start(valid) AS started FROM Prescription \
             WHERE drug = 'Tylenol' \
               AND start(valid) - patientDOB < '7 00:00:00'::Span * :w \
               AND start(valid) - patientDOB >= '0'::Span \
             ORDER BY patient",
            &[("w", Value::Int(520))],
        )
        .expect("Q2");
    println!("{}", session.format_result(&r));

    // --- Q3: the temporal self-join --------------------------------------
    println!("[Q3] Who has taken Diabeta and Aspirin simultaneously, and exactly when:");
    let r = session
        .query(
            "SELECT p1.patient, p1.dosage, p2.dosage, intersect(p1.valid, p2.valid) \
             FROM Prescription p1, Prescription p2 \
             WHERE p1.drug = 'Diabeta' AND p2.drug = 'Aspirin' \
               AND p1.patient = p2.patient AND overlaps(p1.valid, p2.valid)",
        )
        .expect("Q3");
    println!("{}", session.format_result(&r));

    // --- Q4: coalescing via group_union ----------------------------------
    println!("[Q4] How long each patient has been on prescription medication");
    println!("     (coalesced — overlapping prescriptions counted once):");
    let r = session
        .query(
            "SELECT patient, length(group_union(valid)) AS on_medication \
             FROM Prescription GROUP BY patient ORDER BY patient LIMIT 10",
        )
        .expect("Q4");
    println!("{}", session.format_result(&r));

    // --- The SUM pitfall the paper calls out ------------------------------
    println!("Why not SUM(length(valid))? Overlaps get double-counted:");
    let r = session
        .query(
            "SELECT patient, \
                    total_seconds(length(group_union(valid))) AS coalesced_secs, \
                    SUM(total_seconds(length(valid))) AS naive_secs \
             FROM Prescription GROUP BY patient ORDER BY patient LIMIT 5",
        )
        .expect("comparison");
    println!("{}", session.format_result(&r));

    // --- Allen's operators over the same data -----------------------------
    println!("[extra] Allen relations between each patient's first two Diabeta periods:");
    let r = session
        .query(
            "SELECT patient, allen(first(valid), last(valid)) AS relation \
             FROM Prescription \
             WHERE drug = 'Diabeta' AND period_count(valid) >= 2 LIMIT 5",
        )
        .expect("allen");
    println!("{}", session.format_result(&r));
}
