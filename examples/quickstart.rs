//! Quickstart: a TIP-enabled database in five minutes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tip::client::{Connection, HostValue};
use tip::core::{Chronon, Span};

fn main() {
    // One call: fresh in-process DBMS + the TIP DataBlade installed.
    let conn = Connection::open_tip_enabled();

    // Pin NOW so the output is reproducible (normally it's the clock).
    let now = Chronon::from_ymd(1999, 12, 1).expect("valid date");
    conn.set_now(Some(now));

    // The paper's schema: TIP types are first-class column types.
    conn.execute(
        "CREATE TABLE Prescription (doctor CHAR(20), patient CHAR(20), \
         patientDOB Chronon, drug CHAR(20), dosage INT, frequency Span, valid Element)",
        &[],
    )
    .expect("create table");

    // The paper's INSERT — string literals are implicitly cast to the
    // TIP types, including the open-ended element {[1999-10-01, NOW]}.
    conn.execute(
        "INSERT INTO Prescription VALUES ('Dr.Pepper', 'Mr.Showbiz', '1965-04-02', \
         'Diabeta', 1, '0 08:00:00', '{[1999-10-01, NOW]}')",
        &[],
    )
    .expect("insert");
    conn.execute(
        "INSERT INTO Prescription VALUES ('Dr.No', 'Mr.Showbiz', '1965-04-02', \
         'Aspirin', 2, '1', '{[1999-09-15, 1999-10-20]}')",
        &[],
    )
    .expect("insert");

    // Temporal queries are plain SQL over TIP routines.
    println!("Who took Diabeta and Aspirin simultaneously, and when?");
    let rows = conn
        .query(
            "SELECT p1.patient, intersect(p1.valid, p2.valid) AS together \
             FROM Prescription p1, Prescription p2 \
             WHERE p1.drug = 'Diabeta' AND p2.drug = 'Aspirin' \
               AND p1.patient = p2.patient AND overlaps(p1.valid, p2.valid)",
            &[],
        )
        .expect("self join");
    println!("{}", conn.format(&rows));

    // Typed access through the client library (customized type mapping).
    let mut rows = conn
        .query(
            "SELECT length(group_union(valid)) FROM Prescription GROUP BY patient",
            &[],
        )
        .expect("coalesce");
    while rows.next() {
        let total: Span = rows.get_span(0).expect("a Span");
        println!("total (coalesced) medication time: {total} (days hh:mm:ss)");
    }

    // Named parameters, bound from host objects — the paper's ':w'.
    let rows = conn
        .prepare("SELECT patient FROM Prescription WHERE contains(valid, :day)")
        .bind(
            "day",
            HostValue::Chronon(Chronon::from_ymd(1999, 11, 11).expect("valid")),
        )
        .query()
        .expect("parameterized query");
    println!(
        "on medication on 1999-11-11: {} patient-prescription(s)",
        rows.len()
    );
}
