//! What-if analysis with an overridden NOW (paper §4): "a temporal query
//! may return different results when asked at different times, even if
//! the underlying data remains unchanged. The TIP Browser lets the user
//! enter a different value for NOW … which provides what-if analysis by
//! allowing queries to be evaluated in a temporal context different from
//! the present."
//!
//! ```text
//! cargo run --example what_if_now
//! ```

use tip::client::Connection;
use tip::core::Chronon;

fn main() {
    let conn = Connection::open_tip_enabled();
    conn.execute(
        "CREATE TABLE Prescription (patient CHAR(20), drug CHAR(20), valid Element)",
        &[],
    )
    .expect("create");
    // One open-ended prescription ("since October 1999") and one closed.
    conn.execute(
        "INSERT INTO Prescription VALUES \
         ('Mr.Showbiz', 'Diabeta', '{[1999-10-01, NOW]}'), \
         ('Mr.Showbiz', 'Aspirin', '{[1999-09-15, 1999-10-20]}'), \
         ('Ms.Medley', 'Tylenol', '{[NOW-30, NOW]}')",
        &[],
    )
    .expect("insert");

    let question = "SELECT patient, drug, total_seconds(length(valid)) / 86400 AS days \
                    FROM Prescription WHERE is_empty(valid) = FALSE \
                    ORDER BY patient, drug";

    println!("The stored data never changes; only the interpretation of NOW does.\n");
    for (label, when) in [
        ("before the Diabeta prescription began", (1999, 9, 1)),
        ("during the paper's demo", (1999, 12, 1)),
        ("years later", (2003, 6, 15)),
    ] {
        let now = Chronon::from_ymd(when.0, when.1, when.2).expect("valid date");
        conn.set_now(Some(now));
        println!("NOW = {now}  ({label})");
        let rows = conn.query(question, &[]).expect("query");
        print!("{}", conn.format(&rows));
        println!();
    }

    // NOW-relative comparisons flip as time advances (paper §2).
    println!("Comparing the fixed chronon 1999-09-23 against NOW-7:");
    for when in [(1999, 9, 1), (1999, 9, 30), (1999, 12, 1)] {
        let now = Chronon::from_ymd(when.0, when.1, when.2).expect("valid date");
        conn.set_now(Some(now));
        let mut rows = conn
            .query(
                "SELECT to_chronon('NOW-7'::Instant), \
                        '1999-09-23'::Chronon < 'NOW-7'::Instant",
                &[],
            )
            .expect("compare");
        rows.next();
        println!(
            "  at NOW={now}: NOW-7 = {}, (1999-09-23 < NOW-7) = {}",
            rows.get_chronon(0).expect("chronon"),
            rows.get_bool(1).expect("bool"),
        );
    }
}
