//! The application that motivated TIP (paper §1): temporal data
//! warehousing — the authors built TIP "in order to experiment with our
//! temporal view-maintenance techniques" over warehouses of temporal
//! data.
//!
//! This example maintains a *materialized temporal view* — each patient's
//! coalesced medication element — incrementally as new prescriptions
//! arrive, and verifies every refresh against full recomputation. The
//! view delta uses the TIP algebra (`union` on the stored element)
//! instead of recomputing the aggregate, the core trick of incremental
//! temporal view maintenance.
//!
//! ```text
//! cargo run --example temporal_warehouse
//! ```

use tip::client::{Connection, HostValue};
use tip::core::{Chronon, Element};
use tip::workload::{generate, MedicalConfig};

fn main() {
    let conn = Connection::open_tip_enabled();
    let now = Chronon::from_ymd(1999, 12, 1).expect("valid date");
    conn.set_now(Some(now));

    // Base table and the materialized view.
    conn.execute(
        "CREATE TABLE Prescription (patient CHAR(20), drug CHAR(20), valid Element)",
        &[],
    )
    .expect("base table");
    conn.execute(
        "CREATE TABLE MedicationView (patient CHAR(20), on_medication Element)",
        &[],
    )
    .expect("view table");
    conn.execute(
        "CREATE INDEX ix_view_patient ON MedicationView(patient)",
        &[],
    )
    .expect("view index");

    // Stream prescriptions into the warehouse, maintaining the view
    // incrementally: view(patient) := union(view(patient), new element).
    let med = generate(&MedicalConfig {
        n_prescriptions: 60,
        n_patients: 12,
        ..MedicalConfig::default()
    });
    let mut maintained = 0usize;
    for p in &med.prescriptions {
        conn.execute(
            "INSERT INTO Prescription VALUES (:p, :d, :v)",
            &[
                ("p", HostValue::Str(p.patient.clone())),
                ("d", HostValue::Str(p.drug.clone())),
                ("v", HostValue::Element(p.valid.clone())),
            ],
        )
        .expect("insert base");

        // Incremental refresh of the affected view row only.
        let existing = conn
            .query(
                "SELECT on_medication FROM MedicationView WHERE patient = :p",
                &[("p", HostValue::Str(p.patient.clone()))],
            )
            .expect("probe view");
        if existing.is_empty() {
            conn.execute(
                "INSERT INTO MedicationView VALUES (:p, :v)",
                &[
                    ("p", HostValue::Str(p.patient.clone())),
                    ("v", HostValue::Element(p.valid.clone())),
                ],
            )
            .expect("install view row");
        } else {
            conn.execute(
                "UPDATE MedicationView SET on_medication = union(on_medication, :v) \
                 WHERE patient = :p",
                &[
                    ("p", HostValue::Str(p.patient.clone())),
                    ("v", HostValue::Element(p.valid.clone())),
                ],
            )
            .expect("refresh view row");
        }
        maintained += 1;
    }
    println!("Streamed {maintained} prescriptions with incremental view maintenance.\n");

    // Verify: the maintained view equals the from-scratch aggregate.
    let fresh = conn
        .query(
            "SELECT patient, group_union(valid) AS on_medication \
             FROM Prescription GROUP BY patient ORDER BY patient",
            &[],
        )
        .expect("recompute");
    let kept = conn
        .query(
            "SELECT patient, on_medication FROM MedicationView ORDER BY patient",
            &[],
        )
        .expect("view");
    assert_eq!(fresh.len(), kept.len(), "same number of patients");

    let mut fresh_rows = fresh;
    let mut kept_rows = kept;
    let mut checked = 0;
    while fresh_rows.next() && kept_rows.next() {
        assert_eq!(
            fresh_rows.get_string(0).unwrap(),
            kept_rows.get_string(0).unwrap()
        );
        let a: Element = fresh_rows.get_element(1).unwrap();
        let b: Element = kept_rows.get_element(1).unwrap();
        assert_eq!(
            a.resolve(now).unwrap(),
            b.resolve(now).unwrap(),
            "patient {}",
            fresh_rows.get_string(0).unwrap()
        );
        checked += 1;
    }
    println!("Verified: maintained view == recomputed view for all {checked} patients.");

    // The view answers the paper's Q4 instantly, without re-aggregating.
    let rows = conn
        .query(
            "SELECT patient, length(on_medication) AS total FROM MedicationView \
             ORDER BY patient LIMIT 6",
            &[],
        )
        .expect("query view");
    println!("\nPer-patient coalesced medication time, straight from the view:");
    print!("{}", conn.format(&rows));
}
