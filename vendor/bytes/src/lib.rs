//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the (small) subset of the `bytes` API the
//! workspace actually uses: the [`Buf`] and [`BufMut`] traits with
//! little-endian integer accessors, implemented for `&[u8]` and
//! `Vec<u8>`. Semantics match the real crate for the implemented
//! surface, including the panic-on-underflow behavior of the `get_*`
//! methods (callers are expected to check [`Buf::remaining`] first,
//! which all codecs in this workspace do).

/// Read access to a contiguous buffer of bytes.
pub trait Buf {
    /// Number of bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The bytes left, starting at the cursor.
    fn chunk(&self) -> &[u8];

    /// Moves the cursor forward `cnt` bytes.
    ///
    /// # Panics
    /// Panics when `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// `true` while any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes into `dst`, advancing the cursor.
    ///
    /// # Panics
    /// Panics when `dst.len() > self.remaining()`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "buffer underflow: advance {cnt} past {} remaining",
            self.len()
        );
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer of bytes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_i64_le(-42);
        out.put_f64_le(1.5);
        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_i64_le(), -42);
        assert_eq!(buf.get_f64_le(), 1.5);
        assert!(!buf.has_remaining());
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut buf = &data[..];
        buf.advance(2);
        assert_eq!(buf.remaining(), 2);
        assert_eq!(buf.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let data = [1u8];
        let mut buf = &data[..];
        let _ = buf.get_u32_le();
    }
}
