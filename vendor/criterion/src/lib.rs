//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the small criterion API the workspace's benches use —
//! `Criterion::benchmark_group`, `bench_with_input` / `bench_function`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of rigorous
//! statistics it warms up briefly, runs a fixed-duration measurement
//! loop, and prints the mean per-iteration wall time. Good enough to
//! keep `cargo bench` compiling and producing indicative numbers;
//! not a substitute for real criterion when precision matters.

use std::fmt;
use std::time::{Duration, Instant};

/// Label for one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<P: fmt::Display>(function_id: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Units processed per iteration; used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs closures under timing.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine` over a warm-up pass and a measurement loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few unmeasured runs so lazy init and caches settle.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let deadline = Instant::now() + self.measurement_time;
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            // Check the clock in batches to keep timing overhead low for
            // nanosecond-scale routines.
            if iters.is_multiple_of(16) && Instant::now() >= deadline {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; this
    /// stand-in sizes runs by wall time instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement time.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.criterion.measurement_time = dur;
        self
    }

    /// Declares units processed per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            measurement_time: self.criterion.measurement_time,
        };
        routine(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    /// Benchmarks a routine with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            measurement_time: self.criterion.measurement_time,
        };
        routine(&mut bencher);
        self.report(&id.id, &bencher);
        self
    }

    /// Ends the group (prints a separating newline).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        if bencher.iters_done == 0 {
            println!("{}/{id:<40} (no iterations run)", self.name);
            return;
        }
        let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters_done as f64;
        let mut line = format!(
            "{}/{id:<40} {:>12}  ({} iters)",
            self.name,
            format_ns(per_iter),
            bencher.iters_done
        );
        if let Some(tp) = self.throughput {
            let (units, label) = match tp {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let rate = units as f64 * 1e9 / per_iter;
            line.push_str(&format!("  {:.3e} {label}", rate));
        }
        println!("{line}");
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Short by default: benches here are smoke-level, and `cargo
        // bench` also runs in CI-ish contexts where minutes matter.
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            measurement_time: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, routine);
        self
    }
}

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
