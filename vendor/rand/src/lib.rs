//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic, seedable RNG ([`rngs::StdRng`], built on
//! xoshiro256** seeded via SplitMix64) and the small [`Rng`] surface the
//! workspace uses: `gen_range` over integer ranges, `gen_bool`, and
//! `gen` for a few primitive types. Streams are *not* bit-compatible
//! with the real `rand` crate, but are stable across runs and platforms
//! for a given seed, which is what the seeded workload generator needs.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling support for range types, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // 53 random mantissa bits, as the real crate does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws a value of a primitive type uniformly from its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types drawable uniformly from their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn draw(rng: &mut impl RngCore) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn draw(rng: &mut impl RngCore) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(i64, u64, i32, u32, usize, u16, i16, u8, i8);

/// Uniform draw from `0..span` (`span > 0`), rejection-sampled to avoid
/// modulo bias.
fn uniform_u64(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256** with SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 stream expands the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
