//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! API: `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. A panic while a lock is held does not poison it for later
//! users — matching `parking_lot` semantics — because poisoned std
//! locks are recovered via `into_inner`.

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still usable.
        *l.write() = 5;
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
