//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map`, strategies
//! for integer ranges, tuples, `Vec`s, boolean, sampling from a list,
//! and a small regex-shaped string generator; plus the `proptest!`,
//! `prop_assert!`, and `prop_assert_eq!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   in the assertion message; generation is fully deterministic per
//!   test name, so failures reproduce exactly;
//! * **regex strategies** support the subset actually used in tests:
//!   character classes (with ranges), `\PC` (any printable char), and
//!   `{m,n}` repetition;
//! * case count defaults to 128 and can be overridden per-block with
//!   `ProptestConfig::with_cases` or globally with the `PROPTEST_CASES`
//!   environment variable.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(&mut rng.0, self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(&mut rng.0, self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(i64, u64, i32, u32, i16, u16, i8, u8, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// String strategies from regex-shaped patterns: a `&str` is a
    /// strategy producing matching `String`s (subset: char classes,
    /// `\PC`, literal chars, `{m,n}` / `{n}` repetition).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// Deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) rand::rngs::StdRng);

    impl TestRng {
        /// An RNG seeded from a test's name, so each property test has a
        /// stable, reproducible stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(rand::rngs::StdRng::seed_from_u64(h))
        }
    }
}

/// Per-block configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (overridable via `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }.env_override()
    }

    fn env_override(mut self) -> ProptestConfig {
        if let Some(n) = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            self.cases = n;
        }
        self
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }.env_override()
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(&mut rng.0, <$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    arb_int!(i64, u64, i32, u32, i16, u16, i8, u8, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rand::Rng::gen_bool(&mut rng.0, 0.5)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for a type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rand::Rng::gen_range(&mut rng.0, self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy generating vectors of `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select() requires a non-empty list");
            let i = rand::Rng::gen_range(&mut rng.0, 0..self.0.len());
            self.0[i].clone()
        }
    }

    /// A strategy drawing one element of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen_bool(&mut rng.0, 0.5)
        }
    }

    /// Uniform boolean strategy.
    pub const ANY: BoolAny = BoolAny;
}

pub mod string {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Sample pool for `\PC` (any printable char): mixes 1-, 2-, 3-, and
    /// 4-byte UTF-8 so multi-byte boundary bugs get exercised.
    const PRINTABLE_EXOTIC: &[char] = &['é', 'ß', 'Ω', '中', '文', 'サ', '€', '∀', '😀', '🦀', '𝕏'];

    enum Atom {
        /// One char drawn from an explicit set.
        Class(Vec<(char, char)>),
        /// `\PC`: any printable character.
        Printable,
        /// A literal character.
        Lit(char),
    }

    /// Generates one string matching the supported regex subset.
    ///
    /// # Panics
    /// Panics on constructs outside the subset, so unsupported patterns
    /// fail loudly instead of silently generating wrong data.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut set: Vec<(char, char)> = Vec::new();
                    loop {
                        let a = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                        if a == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            let mut ahead = chars.clone();
                            ahead.next(); // the '-'
                            match ahead.peek() {
                                Some(&b) if b != ']' => {
                                    chars.next();
                                    chars.next();
                                    set.push((a, b));
                                    continue;
                                }
                                _ => {}
                            }
                        }
                        set.push((a, a));
                    }
                    assert!(!set.is_empty(), "empty class in {pattern:?}");
                    Atom::Class(set)
                }
                '\\' => match chars.next() {
                    Some('P') => {
                        assert_eq!(
                            chars.next(),
                            Some('C'),
                            "only \\PC is supported in {pattern:?}"
                        );
                        Atom::Printable
                    }
                    Some(esc) => Atom::Lit(esc),
                    None => panic!("dangling escape in {pattern:?}"),
                },
                other => Atom::Lit(other),
            };
            // Optional {m,n} / {n} repetition.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut body = String::new();
                for r in chars.by_ref() {
                    if r == '}' {
                        break;
                    }
                    body.push(r);
                }
                let parse = |s: &str| -> usize {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat {body:?} in {pattern:?}"))
                };
                match body.split_once(',') {
                    Some((m, n)) => (parse(m), parse(n)),
                    None => (parse(&body), parse(&body)),
                }
            } else {
                (1, 1)
            };
            let n = rng.0.gen_range(lo..=hi);
            for _ in 0..n {
                out.push(match &atom {
                    Atom::Lit(c) => *c,
                    Atom::Printable => {
                        // 70% printable ASCII, 30% exotic multi-byte.
                        if rng.0.gen_bool(0.7) {
                            char::from(rng.0.gen_range(0x20u8..0x7F))
                        } else {
                            PRINTABLE_EXOTIC[rng.0.gen_range(0..PRINTABLE_EXOTIC.len())]
                        }
                    }
                    Atom::Class(set) => {
                        let (a, b) = set[rng.0.gen_range(0..set.len())];
                        char::from_u32(rng.0.gen_range(a as u32..=b as u32)).unwrap_or(a)
                    }
                });
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_stay_in_bounds(a in 0i64..10, b in 5usize..=9, c in any::<u8>()) {
            prop_assert!((0..10).contains(&a));
            prop_assert!((5..=9).contains(&b));
            let _ = c;
        }

        #[test]
        fn tuples_and_map(p in (0i64..100, 0i64..10).prop_map(|(s, l)| (s, s + l))) {
            prop_assert!(p.1 >= p.0);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn select_picks_members(s in crate::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&s));
        }

        #[test]
        fn class_regex(s in "[ab%_c]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| "ab%_c".contains(c)));
        }

        #[test]
        fn range_class_regex(s in "[ -~]{0,20}") {
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn printable_regex(s in "\\PC{0,16}") {
            prop_assert!(s.chars().count() <= 16);
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = || {
            let mut rng = TestRng::deterministic("x");
            Strategy::generate(&(0i64..1_000_000), &mut rng)
        };
        assert_eq!(gen(), gen());
    }
}
